//! Pet Store page behaviours: the 14 measured pages of Tables 2/3/6.
//!
//! Each page is a logical call tree. Two variants exist, matching the
//! paper's code evolution:
//!
//! * **original** (§4.1's baseline): the web tier retrieves catalog data
//!   directly via JDBC (BMP-style finders with their n+1 round trips) — the
//!   shape that collapses once the web tier moves across a WAN;
//! * **façade** (§4.2 onwards): every page reaches shared state through the
//!   `Catalog`/`Customer` session façades in at most one RMI (two for
//!   *Verify Sign-in*), with entity access behind the façade.
//!
//! CPU demands are calibrated so that local response times land in the
//! paper's Table 6 range; see `DESIGN.md` §2 and `EXPERIMENTS.md`.

use mutsvc_desim::time::SimDuration;
use mutsvc_middleware::{Call, DbAccess, PageRequest};
use mutsvc_relstore::{Mutation, Query, RowId, Value};
use serde::{Deserialize, Serialize};

use super::components::PsComponents;
use super::schema::{PsShape, PsTables};

/// Cacheable query tag: products of a category (§4.4).
pub const TAG_PRODUCTS_BY_CATEGORY: &str = "ps:products-by-category";
/// Cacheable query tag: items of a product (§4.4).
pub const TAG_ITEMS_BY_PRODUCT: &str = "ps:items-by-product";

/// The Pet Store pages measured in Table 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PsPage {
    /// Application entry point.
    Main,
    /// Product list of a category.
    Category,
    /// Item list of a product.
    Product,
    /// Item details including stock.
    Item,
    /// Keyword search.
    Search,
    /// Sign-in form.
    SignIn,
    /// Credential verification (the 2-RMI page).
    VerifySignIn,
    /// Add an item to the shopping cart (POST + redirect).
    Cart,
    /// Start checkout.
    Checkout,
    /// Confirm the order (POST + redirect).
    PlaceOrder,
    /// Confirm billing/shipping.
    Billing,
    /// Commit the order: all database updates happen here (POST + redirect).
    Commit,
    /// Sign out.
    SignOut,
}

impl PsPage {
    /// The reporting label used in Table 6.
    pub fn name(self) -> &'static str {
        match self {
            PsPage::Main => "Main",
            PsPage::Category => "Category",
            PsPage::Product => "Product",
            PsPage::Item => "Item",
            PsPage::Search => "Search",
            PsPage::SignIn => "SignIn",
            PsPage::VerifySignIn => "VerifySignIn",
            PsPage::Cart => "Cart",
            PsPage::Checkout => "Checkout",
            PsPage::PlaceOrder => "PlaceOrder",
            PsPage::Billing => "Billing",
            PsPage::Commit => "Commit",
            PsPage::SignOut => "SignOut",
        }
    }

    /// Pages in Table 6 column order (browser five, then buyer nine; `Main`
    /// appears in both session mixes but is a single page).
    pub fn all() -> [PsPage; 13] {
        [
            PsPage::Main,
            PsPage::Category,
            PsPage::Product,
            PsPage::Item,
            PsPage::Search,
            PsPage::SignIn,
            PsPage::VerifySignIn,
            PsPage::Cart,
            PsPage::Checkout,
            PsPage::PlaceOrder,
            PsPage::Billing,
            PsPage::Commit,
            PsPage::SignOut,
        ]
    }
}

/// Sampled parameters for one page request.
///
/// Deliberately `Copy`: the hot request path stores drawn parameters in a
/// [`PageSpec`](crate::PageSpec) without allocating. The search keyword is
/// an index into [`PsShape::keywords`], resolved at build time.
#[derive(Debug, Clone, Copy)]
pub struct PsParams {
    /// Category being browsed.
    pub category: RowId,
    /// Product being browsed (belongs to `category`).
    pub product: RowId,
    /// Item being viewed/bought (belongs to `product`).
    pub item: RowId,
    /// Search keyword, as an index into [`PsShape::keywords`].
    pub keyword: usize,
    /// Signed-in account.
    pub account: RowId,
}

/// CPU and size calibration for Pet Store pages.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PsCosts {
    /// Web-tier render demand per page (ms); heavier than RUBiS by design.
    pub render_ms: f64,
    /// Fixed non-CPU serving overhead per page (ms).
    pub overhead_ms: f64,
    /// `ShoppingClientController` event-processing demand (ms).
    pub controller_ms: f64,
    /// Session-façade method demand (ms).
    pub facade_ms: f64,
    /// Entity bean method demand (ms).
    pub entity_ms: f64,
    /// `ShoppingCart` manipulation demand (ms).
    pub cart_ms: f64,
}

impl Default for PsCosts {
    fn default() -> Self {
        PsCosts {
            render_ms: 20.0,
            overhead_ms: 26.0,
            controller_ms: 3.0,
            facade_ms: 4.0,
            entity_ms: 1.5,
            cart_ms: 2.5,
        }
    }
}

impl PsCosts {
    fn render(&self, factor: f64) -> SimDuration {
        SimDuration::from_millis_f64(self.render_ms * factor)
    }
    fn controller(&self) -> SimDuration {
        SimDuration::from_millis_f64(self.controller_ms)
    }
    fn facade(&self) -> SimDuration {
        SimDuration::from_millis_f64(self.facade_ms)
    }
    fn entity(&self) -> SimDuration {
        SimDuration::from_millis_f64(self.entity_ms)
    }
    fn cart(&self) -> SimDuration {
        SimDuration::from_millis_f64(self.cart_ms)
    }
    fn overhead(&self) -> SimDuration {
        SimDuration::from_millis_f64(self.overhead_ms)
    }
}

/// Builds the call tree of `page` with parameters `params`.
///
/// `facade` selects the application variant (see module docs). `shape`
/// resolves the keyword index of [`PsParams::keyword`] for search pages.
pub fn build_page(
    components: &PsComponents,
    tables: &PsTables,
    shape: &PsShape,
    costs: &PsCosts,
    page: PsPage,
    params: &PsParams,
    facade: bool,
) -> PageRequest {
    let c = components;
    let t = tables;
    let products_q = Query::Eq {
        table: t.product,
        column: 1,
        value: params.category.into(),
    };
    let items_q = Query::Eq {
        table: t.item,
        column: 1,
        value: params.product.into(),
    };
    let item_q = Query::ByPk {
        table: t.item,
        id: params.item,
    };
    let inventory_q = Query::ByPk {
        table: t.inventory,
        id: params.item,
    };
    let signon_q = Query::Eq {
        table: t.signon,
        column: 0,
        value: username(params.account),
    };
    let account_q = Query::ByPk {
        table: t.account,
        id: params.account,
    };
    let access = if facade {
        DbAccess::Single
    } else {
        DbAccess::BmpFinder
    };

    let request = match page {
        PsPage::Main => {
            let root = Call::new(c.web, "main", costs.render(1.3)).invoke(
                Call::new(c.controller, "initSession", costs.controller()),
                100,
                200,
            );
            PageRequest::new(page.name(), root, 12_000)
        }
        PsPage::Category => {
            let root = if facade {
                let cat = Call::new(c.catalog, "getProducts", costs.facade()).tagged_query(
                    products_q,
                    TAG_PRODUCTS_BY_CATEGORY,
                    access,
                );
                web_via_controller(c, costs, "category", 1.0, cat, 200, 4_000)
            } else {
                Call::new(c.web, "category", costs.render(1.0))
                    .invoke(
                        Call::new(c.controller, "event", costs.controller()),
                        100,
                        100,
                    )
                    .query(products_q, access)
            };
            PageRequest::new(page.name(), root, 15_000)
        }
        PsPage::Product => {
            let root = if facade {
                let cat = Call::new(c.catalog, "getItems", costs.facade()).tagged_query(
                    items_q,
                    TAG_ITEMS_BY_PRODUCT,
                    access,
                );
                web_via_controller(c, costs, "product", 1.0, cat, 200, 3_500)
            } else {
                Call::new(c.web, "product", costs.render(1.0))
                    .invoke(
                        Call::new(c.controller, "event", costs.controller()),
                        100,
                        100,
                    )
                    .query(items_q, access)
            };
            PageRequest::new(page.name(), root, 14_000)
        }
        PsPage::Item => {
            let root = if facade {
                let cat = Call::new(c.catalog, "getItem", costs.facade())
                    .invoke(
                        Call::new(c.item, "load", costs.entity()).query(item_q, DbAccess::Single),
                        60,
                        400,
                    )
                    .invoke(
                        Call::new(c.inventory, "load", costs.entity())
                            .query(inventory_q, DbAccess::Single),
                        60,
                        120,
                    );
                web_via_controller(c, costs, "item", 0.95, cat, 150, 900)
            } else {
                Call::new(c.web, "item", costs.render(0.95))
                    .invoke(
                        Call::new(c.controller, "event", costs.controller()),
                        100,
                        100,
                    )
                    .query(item_q, DbAccess::Single)
                    .query(inventory_q, DbAccess::Single)
            };
            PageRequest::new(page.name(), root, 10_000)
        }
        PsPage::Search => {
            let search_q = Query::Like {
                table: t.item,
                column: 0,
                needle: shape.keywords[params.keyword].clone(),
            };
            let root = if facade {
                let cat = Call::new(c.catalog, "search", costs.facade()).query(search_q, access);
                web_via_controller(c, costs, "search", 1.1, cat, 300, 4_500)
            } else {
                Call::new(c.web, "search", costs.render(1.1))
                    .invoke(
                        Call::new(c.controller, "event", costs.controller()),
                        100,
                        100,
                    )
                    .query(search_q, access)
            };
            PageRequest::new(page.name(), root, 15_000)
        }
        PsPage::SignIn => {
            let root = Call::new(c.web, "signin-form", costs.render(0.85));
            PageRequest::new(page.name(), root, 6_000)
        }
        PsPage::VerifySignIn => {
            // Two wide-area calls (the paper's documented exception): one to
            // authenticate, one to create the customer session and fetch the
            // profile.
            let auth = Call::new(c.signon, "authenticate", costs.entity())
                .query(signon_q.clone(), DbAccess::Single);
            let profile = Call::new(c.customer, "createAndGetProfile", costs.facade()).invoke(
                Call::new(c.account, "load", costs.entity())
                    .query(account_q.clone(), DbAccess::Single),
                80,
                600,
            );
            let root = if facade {
                Call::new(c.web, "verify", costs.render(0.8)).invoke(
                    Call::new(c.controller, "signinEvent", costs.controller())
                        .invoke(auth, 150, 100)
                        .invoke(profile, 150, 700),
                    200,
                    400,
                )
            } else {
                Call::new(c.web, "verify", costs.render(0.8))
                    .invoke(
                        Call::new(c.controller, "signinEvent", costs.controller()),
                        150,
                        100,
                    )
                    .query(signon_q, DbAccess::Single)
                    .query(account_q, DbAccess::Single)
            };
            PageRequest::new(page.name(), root, 8_000)
        }
        PsPage::Cart => {
            // Adding an item needs its details (price): one catalog access.
            let item_fetch = Call::new(c.catalog, "getItem", costs.facade()).invoke(
                Call::new(c.item, "load", costs.entity()).query(item_q.clone(), DbAccess::Single),
                60,
                400,
            );
            let root = if facade {
                Call::new(c.web, "cart-add", costs.render(0.9)).invoke(
                    Call::new(c.controller, "cartEvent", costs.controller()).invoke(
                        Call::new(c.cart, "addItem", costs.cart()).invoke(item_fetch, 80, 450),
                        120,
                        300,
                    ),
                    200,
                    400,
                )
            } else {
                Call::new(c.web, "cart-add", costs.render(0.9))
                    .invoke(
                        Call::new(c.controller, "cartEvent", costs.controller()).invoke(
                            Call::new(c.cart, "addItem", costs.cart()),
                            120,
                            300,
                        ),
                        200,
                        400,
                    )
                    .query(item_q, DbAccess::Single)
            };
            PageRequest::new(page.name(), root, 9_000).with_redirect()
        }
        PsPage::Checkout => {
            let root = Call::new(c.web, "checkout", costs.render(0.85)).invoke(
                Call::new(c.controller, "checkoutEvent", costs.controller()).invoke(
                    Call::new(c.cart, "getContents", costs.cart()),
                    80,
                    800,
                ),
                150,
                900,
            );
            PageRequest::new(page.name(), root, 8_000)
        }
        PsPage::PlaceOrder => {
            let root = Call::new(c.web, "place-order", costs.render(0.8)).invoke(
                Call::new(c.controller, "orderEvent", costs.controller()),
                150,
                300,
            );
            PageRequest::new(page.name(), root, 8_000).with_redirect()
        }
        PsPage::Billing => {
            let root = Call::new(c.web, "billing", costs.render(0.8)).invoke(
                Call::new(c.controller, "billingEvent", costs.controller()),
                150,
                300,
            );
            PageRequest::new(page.name(), root, 7_000)
        }
        PsPage::Commit => {
            let writes = commit_writes(t, params);
            let root = if facade {
                let mut customer = Call::new(c.customer, "commitOrder", costs.facade() * 2);
                customer = customer.invoke(
                    Call::new(c.account, "load", costs.entity()).query(account_q, DbAccess::Single),
                    60,
                    300,
                );
                for w in writes.clone() {
                    match w {
                        CommitWrite::Order(m) => {
                            customer = customer.invoke(
                                Call::new(c.order, "create", costs.entity()).mutate(m),
                                120,
                                80,
                            );
                        }
                        CommitWrite::Inventory(m) => {
                            customer = customer.invoke(
                                Call::new(c.inventory, "decrement", costs.entity()).mutate(m),
                                80,
                                60,
                            );
                        }
                        CommitWrite::Direct(m) => {
                            customer = customer.mutate(m);
                        }
                    }
                }
                Call::new(c.web, "commit", costs.render(0.9)).invoke(
                    Call::new(c.controller, "commitEvent", costs.controller())
                        .invoke(customer, 400, 300),
                    400,
                    400,
                )
            } else {
                let mut root = Call::new(c.web, "commit", costs.render(0.9))
                    .invoke(
                        Call::new(c.controller, "commitEvent", costs.controller()),
                        400,
                        300,
                    )
                    .query(account_q, DbAccess::Single);
                for w in writes {
                    root = root.mutate(w.into_mutation());
                }
                root
            };
            PageRequest::new(page.name(), root, 9_000).with_redirect()
        }
        PsPage::SignOut => {
            let root = Call::new(c.web, "signout", costs.render(0.8)).invoke(
                Call::new(c.controller, "destroySession", costs.controller()),
                100,
                100,
            );
            PageRequest::new(page.name(), root, 6_000)
        }
    };
    request.with_overhead(costs.overhead())
}

fn web_via_controller(
    c: &PsComponents,
    costs: &PsCosts,
    op: &str,
    render_factor: f64,
    inner: Call,
    args: u64,
    ret: u64,
) -> Call {
    Call::new(c.web, op.to_string(), costs.render(render_factor)).invoke(
        Call::new(c.controller, "event", costs.controller()).invoke(inner, args, ret),
        200,
        ret + 200,
    )
}

fn username(account: RowId) -> Value {
    Value::from(format!("customer-{}", account.0 - 1))
}

#[derive(Debug, Clone)]
enum CommitWrite {
    Order(Mutation),
    Inventory(Mutation),
    Direct(Mutation),
}

impl CommitWrite {
    fn into_mutation(self) -> Mutation {
        match self {
            CommitWrite::Order(m) | CommitWrite::Inventory(m) | CommitWrite::Direct(m) => m,
        }
    }
}

/// The database updates of a commit: order + line item + status inserts plus
/// the inventory decrement (the write that triggers wide-area propagation).
fn commit_writes(t: &PsTables, params: &PsParams) -> Vec<CommitWrite> {
    vec![
        CommitWrite::Order(Mutation::Insert {
            table: t.orders,
            values: vec![params.account.into(), Value::Int(1_500), "placed".into()],
        }),
        // Line-item and status rows reference the order created in the same
        // transaction; the order id is unknown until bind time and nothing in
        // the workload queries line items by order, so the foreign key is 0.
        CommitWrite::Direct(Mutation::Insert {
            table: t.lineitem,
            values: vec![
                Value::Int(0),
                params.item.into(),
                Value::Int(1),
                Value::Int(1_500),
            ],
        }),
        CommitWrite::Direct(Mutation::Insert {
            table: t.orderstatus,
            values: vec![Value::Int(0), "pending".into()],
        }),
        CommitWrite::Inventory(Mutation::Update {
            table: t.inventory,
            id: params.item,
            column: 1,
            value: Value::Int(9_999),
        }),
    ]
}

#[cfg(test)]
mod tests {
    use super::super::schema::build_database;
    use super::*;
    use mutsvc_middleware::ComponentRegistry;

    fn fixture() -> (PsComponents, PsTables, PsShape, PsParams) {
        let (_, tables, shape) = build_database();
        let mut reg = ComponentRegistry::new();
        let comps = PsComponents::register(&mut reg, &tables);
        let product = shape.products(0)[0];
        let params = PsParams {
            category: shape.categories[0],
            product,
            item: shape.items(product)[0],
            keyword: 0,
            account: shape.accounts[0],
        };
        (comps, tables, shape, params)
    }

    #[test]
    fn facade_pages_have_at_most_one_shared_access_chain() {
        let (c, t, shape, params) = fixture();
        let costs = PsCosts::default();
        // Every page except VerifySignIn funnels through a single façade
        // invocation chain; VerifySignIn makes two (the paper's exception).
        for page in PsPage::all() {
            let req = build_page(&c, &t, &shape, &costs, page, &params, true);
            let mut facade_children = 0;
            req.root.walk(&mut |call| {
                if call.component == c.controller {
                    facade_children += call
                        .actions
                        .iter()
                        .filter(|a| matches!(a, mutsvc_middleware::Action::Invoke(_)))
                        .count();
                }
            });
            let expected = if page == PsPage::VerifySignIn { 2 } else { 1 };
            assert!(
                facade_children <= expected,
                "{}: {} controller sub-invocations",
                page.name(),
                facade_children
            );
        }
    }

    #[test]
    fn redirect_pages_match_the_paper() {
        let (c, t, shape, params) = fixture();
        let costs = PsCosts::default();
        for page in PsPage::all() {
            let req = build_page(&c, &t, &shape, &costs, page, &params, true);
            let expected = matches!(page, PsPage::Cart | PsPage::PlaceOrder | PsPage::Commit);
            assert_eq!(req.http_exchanges == 2, expected, "{}", page.name());
        }
    }

    #[test]
    fn only_commit_writes() {
        let (c, t, shape, params) = fixture();
        let costs = PsCosts::default();
        for page in PsPage::all() {
            for facade in [false, true] {
                let req = build_page(&c, &t, &shape, &costs, page, &params, facade);
                assert_eq!(
                    req.root.has_writes(),
                    page == PsPage::Commit,
                    "{}",
                    page.name()
                );
            }
        }
    }

    #[test]
    fn original_variant_queries_from_the_web_tier() {
        let (c, t, shape, params) = fixture();
        let costs = PsCosts::default();
        let req = build_page(&c, &t, &shape, &costs, PsPage::Category, &params, false);
        // Root (web) holds the query directly.
        assert!(req
            .root
            .actions
            .iter()
            .any(|a| matches!(a, mutsvc_middleware::Action::Query(_))));
        // Facade variant does not.
        let req = build_page(&c, &t, &shape, &costs, PsPage::Category, &params, true);
        assert!(!req
            .root
            .actions
            .iter()
            .any(|a| matches!(a, mutsvc_middleware::Action::Query(_))));
    }

    #[test]
    fn tagged_queries_only_on_category_and_product() {
        let (c, t, shape, params) = fixture();
        let costs = PsCosts::default();
        for page in PsPage::all() {
            let req = build_page(&c, &t, &shape, &costs, page, &params, true);
            let mut tags = Vec::new();
            req.root.walk(&mut |call| {
                for a in &call.actions {
                    if let mutsvc_middleware::Action::Query(q) = a {
                        if let Some(tag) = &q.tag {
                            tags.push(tag.clone());
                        }
                    }
                }
            });
            match page {
                PsPage::Category => assert_eq!(tags, vec![TAG_PRODUCTS_BY_CATEGORY.to_string()]),
                PsPage::Product => assert_eq!(tags, vec![TAG_ITEMS_BY_PRODUCT.to_string()]),
                _ => assert!(tags.is_empty(), "{} unexpectedly tagged", page.name()),
            }
        }
    }

    #[test]
    fn every_page_has_positive_cpu_and_response() {
        let (c, t, shape, params) = fixture();
        let costs = PsCosts::default();
        for page in PsPage::all() {
            for facade in [false, true] {
                let req = build_page(&c, &t, &shape, &costs, page, &params, facade);
                assert!(req.response_bytes > 0);
                assert!(!req.root.cpu.is_zero());
                assert!(!req.overhead.is_zero());
            }
        }
    }
}
