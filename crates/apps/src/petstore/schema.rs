//! Java Pet Store database schema and test data.
//!
//! The paper enlarged the stock database "to allow testing a greater number
//! of concurrent users without contention for the data" (§3.4): five
//! artificial categories, 50 products and 300 items. We reproduce exactly
//! that: 5 categories × 10 products × 6 items, one inventory row per item,
//! 200 customer accounts with sign-on credentials, and empty order tables
//! that fill as buyers commit.

use mutsvc_relstore::{Database, DatabaseBuilder, RowId, TableId, Value};

/// Table handles of the Pet Store schema (Figure 1's data tier).
#[derive(Debug, Clone, Copy)]
pub struct PsTables {
    /// `category(name, description)`
    pub category: TableId,
    /// `product(name, *category, description)`
    pub product: TableId,
    /// `item(name, *product, price_cents, attribute)`
    pub item: TableId,
    /// `inventory(*item, qty)` — row *n* tracks item *n*.
    pub inventory: TableId,
    /// `account(owner, email, address)`
    pub account: TableId,
    /// `signon(*username, password)` — row ids align with `account`.
    pub signon: TableId,
    /// `orders(*account, total_cents, status)`
    pub orders: TableId,
    /// `lineitem(*order, item, qty, unit_price_cents)`
    pub lineitem: TableId,
    /// `orderstatus(*order, status)`
    pub orderstatus: TableId,
}

/// Id spaces for workload parameter sampling (which category, which item…).
#[derive(Debug, Clone)]
pub struct PsShape {
    /// All category ids.
    pub categories: Vec<RowId>,
    /// Products per category, parallel to `categories`.
    pub products_by_category: Vec<Vec<RowId>>,
    /// Items per product, keyed by dense product index (`RowId - 1`).
    pub items_by_product: Vec<Vec<RowId>>,
    /// All account ids (same id space as sign-on rows).
    pub accounts: Vec<RowId>,
    /// Search keywords with non-empty result sets.
    pub keywords: Vec<String>,
}

/// Categories in the enlarged catalog.
pub const CATEGORY_COUNT: usize = 5;
/// Products per category (5 × 10 = 50 products).
pub const PRODUCTS_PER_CATEGORY: usize = 10;
/// Items per product (50 × 6 = 300 items).
pub const ITEMS_PER_PRODUCT: usize = 6;
/// Customer accounts.
pub const ACCOUNT_COUNT: usize = 200;
/// Initial stock per item.
pub const INITIAL_STOCK: i64 = 10_000;

const SPECIES: [&str; 5] = ["fish", "dogs", "reptiles", "cats", "birds"];

/// Builds and populates the Pet Store database.
pub fn build_database() -> (Database, PsTables, PsShape) {
    let mut b = DatabaseBuilder::new();
    let tables = PsTables {
        category: b.table("category", &["name", "description"], 150),
        product: b.table("product", &["name", "*category", "description"], 180),
        item: b.table(
            "item",
            &["name", "*product", "price_cents", "attribute"],
            250,
        ),
        inventory: b.table("inventory", &["*item", "qty"], 60),
        account: b.table("account", &["owner", "email", "address"], 300),
        signon: b.table("signon", &["*username", "password"], 80),
        orders: b.table("orders", &["*account", "total_cents", "status"], 200),
        lineitem: b.table(
            "lineitem",
            &["*order", "item", "qty", "unit_price_cents"],
            100,
        ),
        orderstatus: b.table("orderstatus", &["*order", "status"], 80),
    };
    let mut db = b.build();

    let mut shape = PsShape {
        categories: Vec::new(),
        products_by_category: Vec::new(),
        items_by_product: Vec::new(),
        accounts: Vec::new(),
        keywords: SPECIES.iter().map(ToString::to_string).collect(),
    };

    for (c, species) in SPECIES.iter().enumerate() {
        let cat = db.table_mut(tables.category).insert(vec![
            Value::from(*species),
            format!("All about {species}").into(),
        ]);
        shape.categories.push(cat);
        let mut products = Vec::new();
        for p in 0..PRODUCTS_PER_CATEGORY {
            let product = db.table_mut(tables.product).insert(vec![
                format!("{species}-product-{p}").into(),
                cat.into(),
                format!("A fine specimen of {species} #{p}").into(),
            ]);
            products.push(product);
            let mut items = Vec::new();
            for i in 0..ITEMS_PER_PRODUCT {
                let item = db.table_mut(tables.item).insert(vec![
                    format!("{species}-item-{c}-{p}-{i}").into(),
                    product.into(),
                    Value::Int(1_500 + (c * 37 + p * 11 + i * 3) as i64),
                    format!("variant {i}").into(),
                ]);
                items.push(item);
                let inv = db
                    .table_mut(tables.inventory)
                    .insert(vec![item.into(), Value::Int(INITIAL_STOCK)]);
                debug_assert_eq!(inv, item, "inventory rows align with item ids");
            }
            shape.items_by_product.push(items);
        }
        shape.products_by_category.push(products);
    }

    for a in 0..ACCOUNT_COUNT {
        let account = db.table_mut(tables.account).insert(vec![
            format!("customer-{a}").into(),
            format!("customer-{a}@example.com").into(),
            format!("{a} Main Street").into(),
        ]);
        let signon = db.table_mut(tables.signon).insert(vec![
            format!("customer-{a}").into(),
            format!("pw-{a}").into(),
        ]);
        debug_assert_eq!(account, signon, "sign-on rows align with account ids");
        shape.accounts.push(account);
    }

    (db, tables, shape)
}

impl PsShape {
    /// The product ids of `category` (by dense index into `categories`).
    ///
    /// # Panics
    ///
    /// Panics if `category_idx` is out of range.
    pub fn products(&self, category_idx: usize) -> &[RowId] {
        &self.products_by_category[category_idx]
    }

    /// The item ids of `product`.
    ///
    /// # Panics
    ///
    /// Panics if the product id was not created by [`build_database`].
    pub fn items(&self, product: RowId) -> &[RowId] {
        &self.items_by_product[(product.0 - 1) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mutsvc_relstore::Query;

    #[test]
    fn catalog_matches_the_papers_sizing() {
        let (db, t, shape) = build_database();
        assert_eq!(db.table(t.category).len(), 5);
        assert_eq!(db.table(t.product).len(), 50);
        assert_eq!(db.table(t.item).len(), 300);
        assert_eq!(db.table(t.inventory).len(), 300);
        assert_eq!(db.table(t.account).len(), 200);
        assert_eq!(shape.categories.len(), 5);
        assert_eq!(
            shape
                .products_by_category
                .iter()
                .map(Vec::len)
                .sum::<usize>(),
            50
        );
        assert_eq!(
            shape.items_by_product.iter().map(Vec::len).sum::<usize>(),
            300
        );
    }

    #[test]
    fn products_by_category_query_returns_ten() {
        let (db, t, shape) = build_database();
        for &cat in &shape.categories {
            let out = db.execute(&Query::Eq {
                table: t.product,
                column: 1,
                value: cat.into(),
            });
            assert_eq!(out.row_count(), 10);
        }
    }

    #[test]
    fn items_by_product_query_returns_six() {
        let (db, t, shape) = build_database();
        let product = shape.products(2)[3];
        let out = db.execute(&Query::Eq {
            table: t.item,
            column: 1,
            value: product.into(),
        });
        assert_eq!(out.row_count(), 6);
        assert_eq!(shape.items(product).len(), 6);
    }

    #[test]
    fn inventory_aligns_with_items() {
        let (db, t, shape) = build_database();
        let item = shape.items(shape.products(0)[0])[0];
        let inv = db.execute(&Query::ByPk {
            table: t.inventory,
            id: item,
        });
        assert_eq!(inv.row_count(), 1);
    }

    #[test]
    fn keyword_searches_are_nonempty() {
        let (db, t, shape) = build_database();
        for kw in &shape.keywords {
            let out = db.execute(&Query::Like {
                table: t.item,
                column: 0,
                needle: kw.clone(),
            });
            assert!(out.row_count() >= ITEMS_PER_PRODUCT as u64, "keyword {kw}");
        }
    }

    #[test]
    fn signon_lookup_by_username() {
        let (db, t, _) = build_database();
        let out = db.execute(&Query::Eq {
            table: t.signon,
            column: 0,
            value: "customer-7".into(),
        });
        assert_eq!(out.row_count(), 1);
    }
}
