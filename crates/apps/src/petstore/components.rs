//! Pet Store component inventory (Table 1 and Figure 1 of the paper).

use mutsvc_middleware::{ComponentId, ComponentKind, ComponentRegistry};

use super::schema::PsTables;

/// Handles to the Pet Store's logical components.
#[derive(Debug, Clone, Copy)]
pub struct PsComponents {
    /// The web tier as a unit: JSPs, servlets and web-tier JavaBeans
    /// (`CatalogWebImpl`, the web half of the MVC controller).
    pub web: ComponentId,
    /// `ShoppingClientController` — stateful session bean, EJB-tier half of
    /// the MVC controller.
    pub controller: ComponentId,
    /// `ShoppingCart` — stateful session bean.
    pub cart: ComponentId,
    /// `Catalog` — stateless session façade over the product catalog.
    pub catalog: ComponentId,
    /// `Customer` — stateless session façade to `Order` and `Account`.
    pub customer: ComponentId,
    /// `Updater` — stateless session façade receiving pushed updates (§4.3).
    pub updater: ComponentId,
    /// `UpdateSubscriber` — message-driven bean applying async updates (§4.5).
    pub update_subscriber: ComponentId,
    /// `Category` entity (introduced in §4.3).
    pub category: ComponentId,
    /// `Product` entity (introduced in §4.3).
    pub product: ComponentId,
    /// `Item` entity (introduced in §4.3).
    pub item: ComponentId,
    /// `Inventory` entity.
    pub inventory: ComponentId,
    /// `SignOn` entity (userid/password).
    pub signon: ComponentId,
    /// `Order` entity.
    pub order: ComponentId,
    /// `Account` entity.
    pub account: ComponentId,
}

impl PsComponents {
    /// Registers every Pet Store component.
    pub fn register(registry: &mut ComponentRegistry, tables: &PsTables) -> Self {
        PsComponents {
            web: registry.register("web", ComponentKind::Web),
            controller: registry
                .register("ShoppingClientController", ComponentKind::StatefulSession),
            cart: registry.register("ShoppingCart", ComponentKind::StatefulSession),
            catalog: registry.register("Catalog", ComponentKind::StatelessSession),
            customer: registry.register("Customer", ComponentKind::StatelessSession),
            updater: registry.register("Updater", ComponentKind::StatelessSession),
            update_subscriber: registry.register("UpdateSubscriber", ComponentKind::MessageDriven),
            category: registry.register_entity("CategoryEJB", tables.category),
            product: registry.register_entity("ProductEJB", tables.product),
            item: registry.register_entity("ItemEJB", tables.item),
            inventory: registry.register_entity("InventoryEJB", tables.inventory),
            signon: registry.register_entity("SignOnEJB", tables.signon),
            order: registry.register_entity("OrderEJB", tables.orders),
            account: registry.register_entity("AccountEJB", tables.account),
        }
    }

    /// All components, for descriptors that place everything uniformly.
    pub fn all(&self) -> [ComponentId; 14] {
        [
            self.web,
            self.controller,
            self.cart,
            self.catalog,
            self.customer,
            self.updater,
            self.update_subscriber,
            self.category,
            self.product,
            self.item,
            self.inventory,
            self.signon,
            self.order,
            self.account,
        ]
    }

    /// The entities that §4.3 replicates read-only on the edges.
    pub fn cacheable_entities(&self) -> [ComponentId; 4] {
        [self.category, self.product, self.item, self.inventory]
    }

    /// The session-oriented components that §4.2 deploys on the edges
    /// (web tier plus stateful session beans).
    pub fn edge_session_components(&self) -> [ComponentId; 3] {
        [self.web, self.controller, self.cart]
    }

    /// The main relationships among the most-accessed components
    /// (Figure 1), as `(caller, callee)` name pairs — used by the
    /// architecture test and by placement-graph derivation.
    pub fn architecture_edges(&self) -> Vec<(ComponentId, ComponentId)> {
        vec![
            (self.web, self.controller),
            (self.controller, self.cart),
            (self.controller, self.catalog),
            (self.controller, self.customer),
            (self.controller, self.signon),
            (self.cart, self.catalog),
            (self.catalog, self.category),
            (self.catalog, self.product),
            (self.catalog, self.item),
            (self.catalog, self.inventory),
            (self.customer, self.order),
            (self.customer, self.account),
            (self.customer, self.inventory),
            (self.updater, self.category),
            (self.updater, self.product),
            (self.updater, self.item),
            (self.updater, self.inventory),
            (self.update_subscriber, self.updater),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::super::schema::build_database;
    use super::*;

    #[test]
    fn registry_matches_table_1() {
        let (_, tables, _) = build_database();
        let mut reg = ComponentRegistry::new();
        let c = PsComponents::register(&mut reg, &tables);
        assert_eq!(reg.len(), 14);
        // Table 1 kinds.
        assert_eq!(reg.spec(c.catalog).kind, ComponentKind::StatelessSession);
        assert_eq!(reg.spec(c.customer).kind, ComponentKind::StatelessSession);
        assert_eq!(reg.spec(c.cart).kind, ComponentKind::StatefulSession);
        assert_eq!(reg.spec(c.controller).kind, ComponentKind::StatefulSession);
        for e in [
            c.inventory,
            c.signon,
            c.order,
            c.account,
            c.category,
            c.product,
            c.item,
        ] {
            assert_eq!(reg.spec(e).kind, ComponentKind::Entity);
        }
        assert_eq!(reg.spec(c.inventory).table, Some(tables.inventory));
    }

    #[test]
    fn architecture_has_no_web_to_entity_shortcuts() {
        let (_, tables, _) = build_database();
        let mut reg = ComponentRegistry::new();
        let c = PsComponents::register(&mut reg, &tables);
        // §5's design-rule: entities are only reachable through façades /
        // the EJB-tier controller, never directly from the web tier.
        for (from, to) in c.architecture_edges() {
            if from == c.web {
                assert_ne!(reg.spec(to).kind, ComponentKind::Entity);
            }
        }
    }
}
