//! Sun's Java Pet Store 1.1.2, as modelled in the paper (§2.2, §3.4).
//!
//! A deliberately heavyweight "best practices" e-commerce application:
//! MVC split across web and EJB tiers, stateful session beans for
//! conversational state, entity beans over a nine-table schema.

pub mod components;
pub mod pages;
pub mod schema;
pub mod sessions;

use mutsvc_middleware::{ComponentRegistry, PageRequest};
use mutsvc_relstore::Database;

pub use components::PsComponents;
pub use pages::{PsCosts, PsPage, PsParams, TAG_ITEMS_BY_PRODUCT, TAG_PRODUCTS_BY_CATEGORY};
pub use schema::{PsShape, PsTables};
pub use sessions::{
    BrowserSession, BuyerSession, BROWSER_MIX, BROWSER_SESSION_LENGTH, BUYER_SEQUENCE,
};

/// The Pet Store application model: components, schema handles, parameter
/// spaces and page builders. The backing [`Database`] is returned separately
/// so the simulation world can own it mutably.
#[derive(Debug, Clone)]
pub struct PetStore {
    /// Component handles.
    pub components: PsComponents,
    /// Table handles.
    pub tables: PsTables,
    /// Parameter spaces for workload sampling.
    pub shape: PsShape,
    /// CPU/size calibration.
    pub costs: PsCosts,
    /// `true` for the façade-refactored variant (§4.2+), `false` for the
    /// original direct-JDBC web tier (§4.1 baseline).
    pub facade: bool,
}

impl PetStore {
    /// Builds the application (with default calibration), its component
    /// registry and its populated database.
    pub fn build(facade: bool) -> (PetStore, ComponentRegistry, Database) {
        let (db, tables, shape) = schema::build_database();
        let mut registry = ComponentRegistry::new();
        let components = PsComponents::register(&mut registry, &tables);
        (
            PetStore {
                components,
                tables,
                shape,
                costs: PsCosts::default(),
                facade,
            },
            registry,
            db,
        )
    }

    /// Builds the call tree of one page request.
    pub fn page(&self, page: PsPage, params: &PsParams) -> PageRequest {
        pages::build_page(
            &self.components,
            &self.tables,
            &self.shape,
            &self.costs,
            page,
            params,
            self.facade,
        )
    }

    /// Fixed representative page parameters (first category/product/item,
    /// first account, a keyword with results): the static analyzer walks
    /// every page once with these instead of sampling a workload.
    pub fn representative_params(&self) -> PsParams {
        let product = self.shape.products(0)[0];
        PsParams {
            category: self.shape.categories[0],
            product,
            item: self.shape.items(product)[0],
            keyword: 0,
            account: self.shape.accounts[0],
        }
    }

    /// Every measured page, built with [`Self::representative_params`].
    pub fn all_pages(&self) -> Vec<PageRequest> {
        let params = self.representative_params();
        PsPage::all()
            .into_iter()
            .map(|p| self.page(p, &params))
            .collect()
    }

    /// Every cacheable query instance the workload can issue, for eager
    /// edge-cache population (`(tag, query)` pairs).
    pub fn cacheable_query_instances(&self) -> Vec<(String, mutsvc_relstore::Query)> {
        use mutsvc_relstore::Query;
        let mut out = Vec::new();
        for &cat in &self.shape.categories {
            out.push((
                TAG_PRODUCTS_BY_CATEGORY.to_string(),
                Query::Eq {
                    table: self.tables.product,
                    column: 1,
                    value: cat.into(),
                },
            ));
        }
        for products in &self.shape.products_by_category {
            for &product in products {
                out.push((
                    TAG_ITEMS_BY_PRODUCT.to_string(),
                    Query::Eq {
                        table: self.tables.item,
                        column: 1,
                        value: product.into(),
                    },
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_produces_consistent_handles() {
        let (app, registry, db) = PetStore::build(true);
        assert_eq!(registry.len(), 14);
        assert_eq!(db.table(app.tables.item).len(), 300);
        assert!(app.facade);
    }

    #[test]
    fn page_builder_round_trips_through_the_app() {
        let (app, _, _) = PetStore::build(true);
        let product = app.shape.products(1)[2];
        let params = PsParams {
            category: app.shape.categories[1],
            product,
            item: app.shape.items(product)[0],
            keyword: 0,
            account: app.shape.accounts[3],
        };
        let req = app.page(PsPage::Item, &params);
        assert_eq!(req.page, "Item");
    }
}
