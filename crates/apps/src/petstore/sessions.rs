//! Pet Store service usage patterns: the Browser (Table 2) and Buyer
//! (Table 3) sessions.
//!
//! Browser sessions are 20 logically-ordered requests starting at *Main*,
//! with the paper's page mix; an *Item* request always refers to an item of
//! the previously requested product, a *Product* request to a product of the
//! current category. Buyer sessions are the fixed nine-page sequence
//! sign-in → buy one item → sign-out.

use mutsvc_desim::rng::SimRng;
use mutsvc_relstore::RowId;

use super::pages::{PsPage, PsParams};
use super::schema::PsShape;

/// Browser session length (Table 2: "sessions consisting of 20 requests").
pub const BROWSER_SESSION_LENGTH: usize = 20;

/// Table 2 page mix (weights in percent).
pub const BROWSER_MIX: [(PsPage, f64); 5] = [
    (PsPage::Main, 5.0),
    (PsPage::Category, 15.0),
    (PsPage::Product, 30.0),
    (PsPage::Item, 45.0),
    (PsPage::Search, 5.0),
];

/// Table 3 buyer sequence.
pub const BUYER_SEQUENCE: [PsPage; 9] = [
    PsPage::Main,
    PsPage::SignIn,
    PsPage::VerifySignIn,
    PsPage::Cart,
    PsPage::Checkout,
    PsPage::PlaceOrder,
    PsPage::Billing,
    PsPage::Commit,
    PsPage::SignOut,
];

/// A browsing session: weighted page draws over a drilling-down context.
#[derive(Debug, Clone)]
pub struct BrowserSession {
    issued: usize,
    category_idx: Option<usize>,
    product: Option<RowId>,
    item: Option<RowId>,
}

impl BrowserSession {
    /// Starts a fresh session.
    pub fn new() -> Self {
        BrowserSession {
            issued: 0,
            category_idx: None,
            product: None,
            item: None,
        }
    }

    /// Whether the session has issued all its requests.
    pub fn finished(&self) -> bool {
        self.issued >= BROWSER_SESSION_LENGTH
    }

    /// Draws the next page and its parameters, or `None` when finished.
    pub fn next(&mut self, shape: &PsShape, rng: &mut SimRng) -> Option<(PsPage, PsParams)> {
        if self.finished() {
            return None;
        }
        let page = if self.issued == 0 {
            PsPage::Main
        } else {
            let weights = BROWSER_MIX.map(|(_, w)| w);
            BROWSER_MIX[rng.weighted_index(&weights)].0
        };
        self.issued += 1;

        // Maintain the drill-down context so requests are logically ordered.
        match page {
            PsPage::Category => {
                self.category_idx = Some(rng.index(shape.categories.len()));
                self.product = None;
                self.item = None;
            }
            PsPage::Product => {
                let cat = self.ensure_category(shape, rng);
                let products = shape.products(cat);
                self.product = Some(products[rng.index(products.len())]);
                self.item = None;
            }
            PsPage::Item => {
                let product = self.ensure_product(shape, rng);
                let items = shape.items(product);
                self.item = Some(items[rng.index(items.len())]);
            }
            _ => {}
        }
        Some((page, self.params(shape, rng)))
    }

    fn ensure_category(&mut self, shape: &PsShape, rng: &mut SimRng) -> usize {
        *self
            .category_idx
            .get_or_insert_with(|| rng.index(shape.categories.len()))
    }

    fn ensure_product(&mut self, shape: &PsShape, rng: &mut SimRng) -> RowId {
        if self.product.is_none() {
            let cat = self.ensure_category(shape, rng);
            let products = shape.products(cat);
            self.product = Some(products[rng.index(products.len())]);
        }
        self.product.expect("just ensured")
    }

    fn params(&mut self, shape: &PsShape, rng: &mut SimRng) -> PsParams {
        let category_idx = self.ensure_category(shape, rng);
        let product = self.ensure_product(shape, rng);
        let item = *self.item.get_or_insert_with(|| {
            let items = shape.items(product);
            items[rng.index(items.len())]
        });
        PsParams {
            category: shape.categories[category_idx],
            product,
            item,
            keyword: rng.index(shape.keywords.len()),
            account: shape.accounts[rng.index(shape.accounts.len())],
        }
    }
}

impl Default for BrowserSession {
    fn default() -> Self {
        Self::new()
    }
}

/// A buyer session: the fixed Table 3 sequence with parameters drawn once.
#[derive(Debug, Clone)]
pub struct BuyerSession {
    step: usize,
    params: PsParams,
}

impl BuyerSession {
    /// Starts a session for a random account buying a random item.
    pub fn new(shape: &PsShape, rng: &mut SimRng) -> Self {
        let category_idx = rng.index(shape.categories.len());
        let products = shape.products(category_idx);
        let product = products[rng.index(products.len())];
        let items = shape.items(product);
        let item = items[rng.index(items.len())];
        BuyerSession {
            step: 0,
            params: PsParams {
                category: shape.categories[category_idx],
                product,
                item,
                keyword: rng.index(shape.keywords.len()),
                account: shape.accounts[rng.index(shape.accounts.len())],
            },
        }
    }

    /// Whether the sequence is exhausted.
    pub fn finished(&self) -> bool {
        self.step >= BUYER_SEQUENCE.len()
    }

    /// The next page of the sequence.
    ///
    /// Deliberately named like `Iterator::next`; the session types are not
    /// iterators because callers thread an RNG through the browser variants.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(PsPage, PsParams)> {
        if self.finished() {
            return None;
        }
        let page = BUYER_SEQUENCE[self.step];
        self.step += 1;
        Some((page, self.params))
    }
}

#[cfg(test)]
mod tests {
    use super::super::schema::build_database;
    use super::*;

    #[test]
    fn browser_sessions_start_with_main_and_have_twenty_requests() {
        let (_, _, shape) = build_database();
        let mut rng = SimRng::seed_from_u64(1);
        let mut s = BrowserSession::new();
        let mut pages = Vec::new();
        while let Some((page, _)) = s.next(&shape, &mut rng) {
            pages.push(page);
        }
        assert_eq!(pages.len(), BROWSER_SESSION_LENGTH);
        assert_eq!(pages[0], PsPage::Main);
        assert!(s.finished());
        assert!(s.next(&shape, &mut rng).is_none());
    }

    #[test]
    fn browser_mix_approximates_table_2() {
        let (_, _, shape) = build_database();
        let mut rng = SimRng::seed_from_u64(2);
        let mut counts = std::collections::HashMap::new();
        let total = 40_000usize;
        let mut issued = 0;
        while issued < total {
            let mut s = BrowserSession::new();
            // Skip the deterministic first request when counting the mix.
            let _ = s.next(&shape, &mut rng);
            issued += 1;
            while let Some((page, _)) = s.next(&shape, &mut rng) {
                *counts.entry(page).or_insert(0usize) += 1;
                issued += 1;
            }
        }
        let sampled: usize = counts.values().sum();
        for (page, pct) in BROWSER_MIX {
            let share = *counts.get(&page).unwrap_or(&0) as f64 / sampled as f64 * 100.0;
            assert!(
                (share - pct).abs() < 1.5,
                "{}: {share:.1}% vs table {pct}%",
                page.name()
            );
        }
    }

    #[test]
    fn item_requests_follow_product_context() {
        let (_, _, shape) = build_database();
        let mut rng = SimRng::seed_from_u64(3);
        let mut s = BrowserSession::new();
        for _ in 0..BROWSER_SESSION_LENGTH {
            if let Some((page, params)) = s.next(&shape, &mut rng) {
                if page == PsPage::Item {
                    // The item belongs to the current product, which belongs
                    // to the current category.
                    assert!(shape.items(params.product).contains(&params.item));
                    let cat_idx = shape
                        .categories
                        .iter()
                        .position(|&c| c == params.category)
                        .unwrap();
                    assert!(shape.products(cat_idx).contains(&params.product));
                }
            }
        }
    }

    #[test]
    fn buyer_follows_table_3_sequence() {
        let (_, _, shape) = build_database();
        let mut rng = SimRng::seed_from_u64(4);
        let mut s = BuyerSession::new(&shape, &mut rng);
        let mut pages = Vec::new();
        let mut params_seen = Vec::new();
        while let Some((page, params)) = s.next() {
            pages.push(page);
            params_seen.push(params.item);
        }
        assert_eq!(pages, BUYER_SEQUENCE);
        // Same item throughout the session.
        assert!(params_seen.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn sessions_are_deterministic_per_seed() {
        let (_, _, shape) = build_database();
        let run = |seed| {
            let mut rng = SimRng::seed_from_u64(seed);
            let mut s = BrowserSession::new();
            let mut pages = Vec::new();
            while let Some((page, params)) = s.next(&shape, &mut rng) {
                pages.push((page, params.item));
            }
            pages
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }
}
