//! # mutsvc-apps — the paper's two test applications
//!
//! Component models of **Java Pet Store 1.1.2** ([`petstore`]) and **RUBiS**
//! ([`rubis`]) as studied by the paper: their schemas (§3.4 sizing), their
//! component inventories (Table 1 / §2.2), the call trees of every measured
//! page (Tables 6/7 columns) and their service usage patterns (Tables 2–5).
//!
//! The [`App`] enum gives the workload driver a uniform way to generate
//! sessions for either application:
//!
//! ```
//! use mutsvc_apps::{App, SessionKind};
//! use mutsvc_desim::SimRng;
//!
//! let (app, _registry, _db) = App::petstore(true);
//! let mut rng = SimRng::seed_from_u64(1);
//! let mut session = app.new_session(SessionKind::Browser, &mut rng);
//! let (label, request) = app.next_page(&mut session, &mut rng).unwrap();
//! assert_eq!(label, "Main");
//! assert!(request.response_bytes > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod petstore;
pub mod rubis;

use mutsvc_desim::rng::SimRng;
use mutsvc_middleware::{ComponentRegistry, PageRequest};
use mutsvc_relstore::Database;

pub use petstore::PetStore;
pub use rubis::Rubis;

/// A fully-drawn page request specification: which page plus the sampled
/// parameters, before the call tree is materialised.
///
/// Splitting [`App::next_page`] into [`App::draw_page`] (consumes RNG,
/// returns a `Copy` spec) and [`App::build_page`] (pure, no RNG) lets the
/// workload driver key a bound-program cache on [`PageSpec::key`] and skip
/// the build entirely on a cache hit.
#[derive(Debug, Clone, Copy)]
pub enum PageSpec {
    /// A Pet Store page with its sampled parameters.
    PetStore(petstore::PsPage, petstore::PsParams),
    /// A RUBiS page with its sampled parameters.
    Rubis(rubis::RubisPage, rubis::RubisParams),
}

/// The identity of a page request's *shape*: two requests with equal keys
/// produce structurally identical call trees (same components, same queries,
/// same mutant parameters), so a bound program for one replays for the other.
///
/// `a`/`b` hold only the parameters the page actually reads — e.g. a Pet
/// Store *Category* page keys on the category row alone, so draws that
/// differ only in the (unused) account or keyword share a cache entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageKey {
    /// Application discriminant (0 = Pet Store, 1 = RUBiS).
    pub app: u8,
    /// Page discriminant within the application.
    pub page: u8,
    /// First used parameter (0 when unused).
    pub a: u64,
    /// Second used parameter (0 when unused).
    pub b: u64,
}

impl PageSpec {
    /// The page's reporting label (Table 6/7 column name).
    pub fn label(&self) -> &'static str {
        match self {
            PageSpec::PetStore(page, _) => page.name(),
            PageSpec::Rubis(page, _) => page.name(),
        }
    }

    /// The cache key of this request: page discriminant plus the projection
    /// of the parameters this page's call tree actually depends on.
    pub fn key(&self) -> PageKey {
        use petstore::PsPage as P;
        use rubis::RubisPage as R;
        match self {
            PageSpec::PetStore(page, p) => {
                let (a, b) = match page {
                    P::Main | P::SignIn | P::Checkout | P::PlaceOrder | P::Billing | P::SignOut => {
                        (0, 0)
                    }
                    P::Category => (p.category.0, 0),
                    P::Product => (p.product.0, 0),
                    P::Item | P::Cart => (p.item.0, 0),
                    P::Search => (p.keyword as u64, 0),
                    P::VerifySignIn => (p.account.0, 0),
                    P::Commit => (p.account.0, p.item.0),
                };
                PageKey {
                    app: 0,
                    page: *page as u8,
                    a,
                    b,
                }
            }
            PageSpec::Rubis(page, p) => {
                let (a, b) = match page {
                    R::Main
                    | R::Browse
                    | R::AllCategories
                    | R::AllRegions
                    | R::Region
                    | R::PutBidAuth
                    | R::PutCommentAuth => (0, 0),
                    R::Category => (p.category.0, 0),
                    R::CategoryRegion => (p.category.0, p.region.0),
                    R::Item | R::Bids => (p.item.0, 0),
                    R::UserInfo => (p.target_user.0, 0),
                    R::PutBidForm | R::StoreBid => (p.user.0, p.item.0),
                    R::PutCommentForm | R::StoreComment => (p.user.0, p.target_user.0),
                };
                PageKey {
                    app: 1,
                    page: *page as u8,
                    a,
                    b,
                }
            }
        }
    }
}

/// The two service usage pattern families of §3.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SessionKind {
    /// Read-only browsing (Pet Store *Browser*, RUBiS *Browser*).
    Browser,
    /// Read-write sessions (Pet Store *Buyer*, RUBiS *Bidder*).
    Transactional,
}

/// One of the two applications, with uniform session generation.
#[derive(Debug, Clone)]
pub enum App {
    /// Java Pet Store.
    PetStore(PetStore),
    /// RUBiS.
    Rubis(Rubis),
}

/// Generator state of one client session.
#[derive(Debug, Clone)]
pub enum SessionState {
    /// Pet Store browser.
    PsBrowser(petstore::BrowserSession),
    /// Pet Store buyer.
    PsBuyer(petstore::BuyerSession),
    /// RUBiS browser.
    RubisBrowser(rubis::BrowserSession),
    /// RUBiS bidder.
    RubisBidder(rubis::BidderSession),
}

impl App {
    /// Builds the Pet Store application (see [`PetStore::build`]).
    pub fn petstore(facade: bool) -> (App, ComponentRegistry, Database) {
        let (app, registry, db) = PetStore::build(facade);
        (App::PetStore(app), registry, db)
    }

    /// Builds the RUBiS application.
    pub fn rubis() -> (App, ComponentRegistry, Database) {
        let (app, registry, db) = Rubis::build();
        (App::Rubis(app), registry, db)
    }

    /// The application name.
    pub fn name(&self) -> &'static str {
        match self {
            App::PetStore(_) => "petstore",
            App::Rubis(_) => "rubis",
        }
    }

    /// The label of the transactional pattern ("Buyer" / "Bidder").
    pub fn transactional_label(&self) -> &'static str {
        match self {
            App::PetStore(_) => "Buyer",
            App::Rubis(_) => "Bidder",
        }
    }

    /// Starts a new session of the given kind.
    pub fn new_session(&self, kind: SessionKind, rng: &mut SimRng) -> SessionState {
        match (self, kind) {
            (App::PetStore(_), SessionKind::Browser) => {
                SessionState::PsBrowser(petstore::BrowserSession::new())
            }
            (App::PetStore(app), SessionKind::Transactional) => {
                SessionState::PsBuyer(petstore::BuyerSession::new(&app.shape, rng))
            }
            (App::Rubis(_), SessionKind::Browser) => {
                SessionState::RubisBrowser(rubis::BrowserSession::new())
            }
            (App::Rubis(app), SessionKind::Transactional) => {
                SessionState::RubisBidder(rubis::BidderSession::new(&app.shape, rng))
            }
        }
    }

    /// Draws the next page of a session as a [`PageSpec`], or `None` when
    /// the session is over. This is the only step that consumes RNG; the
    /// call tree is materialised separately by [`Self::build_page`], and a
    /// bound-program cache hit on [`PageSpec::key`] can skip it entirely.
    ///
    /// # Panics
    ///
    /// Panics if `state` belongs to the other application.
    pub fn draw_page(
        &self,
        state: &mut SessionState,
        rng: &mut SimRng,
    ) -> Option<(&'static str, PageSpec)> {
        let spec = match (self, state) {
            (App::PetStore(app), SessionState::PsBrowser(s)) => s
                .next(&app.shape, rng)
                .map(|(page, params)| PageSpec::PetStore(page, params)),
            (App::PetStore(_), SessionState::PsBuyer(s)) => s
                .next()
                .map(|(page, params)| PageSpec::PetStore(page, params)),
            (App::Rubis(app), SessionState::RubisBrowser(s)) => s
                .next(&app.shape, rng)
                .map(|(page, params)| PageSpec::Rubis(page, params)),
            (App::Rubis(_), SessionState::RubisBidder(s)) => {
                s.next().map(|(page, params)| PageSpec::Rubis(page, params))
            }
            _ => panic!("session state does not belong to this application"),
        };
        spec.map(|s| (s.label(), s))
    }

    /// Materialises the call tree of a drawn page. Pure: no RNG, and two
    /// specs with equal [`PageSpec::key`]s build structurally identical
    /// requests.
    ///
    /// # Panics
    ///
    /// Panics if `spec` belongs to the other application.
    pub fn build_page(&self, spec: &PageSpec) -> PageRequest {
        match (self, spec) {
            (App::PetStore(app), PageSpec::PetStore(page, params)) => app.page(*page, params),
            (App::Rubis(app), PageSpec::Rubis(page, params)) => app.page(*page, params),
            _ => panic!("page spec does not belong to this application"),
        }
    }

    /// Draws the next page of a session, or `None` when the session is over.
    /// Convenience wrapper: [`Self::draw_page`] followed by
    /// [`Self::build_page`].
    ///
    /// # Panics
    ///
    /// Panics if `state` belongs to the other application.
    pub fn next_page(
        &self,
        state: &mut SessionState,
        rng: &mut SimRng,
    ) -> Option<(&'static str, PageRequest)> {
        self.draw_page(state, rng)
            .map(|(label, spec)| (label, self.build_page(&spec)))
    }

    /// Every measured page, built with fixed representative parameters (the
    /// static analyzer's page inventory).
    pub fn all_pages(&self) -> Vec<PageRequest> {
        match self {
            App::PetStore(app) => app.all_pages(),
            App::Rubis(app) => app.all_pages(),
        }
    }

    /// Every cacheable query instance the workload can issue (for eager
    /// edge-cache population).
    pub fn cacheable_query_instances(&self) -> Vec<(String, mutsvc_relstore::Query)> {
        match self {
            App::PetStore(app) => app.cacheable_query_instances(),
            App::Rubis(app) => app.cacheable_query_instances(),
        }
    }

    /// Nominal session length of a pattern (number of page requests).
    pub fn session_length(&self, kind: SessionKind) -> usize {
        match (self, kind) {
            (App::PetStore(_), SessionKind::Browser) => petstore::BROWSER_SESSION_LENGTH,
            (App::PetStore(_), SessionKind::Transactional) => petstore::BUYER_SEQUENCE.len(),
            (App::Rubis(_), SessionKind::Browser) => rubis::BROWSER_SESSION_LENGTH,
            (App::Rubis(_), SessionKind::Transactional) => rubis::BIDDER_SEQUENCE.len(),
        }
    }

    /// Static page-flow graphs of the application's usage patterns, for
    /// inter-page dataflow: one [`SessionFlow`] per pattern.
    pub fn session_flows(&self) -> Vec<SessionFlow> {
        match self {
            App::PetStore(_) => vec![
                SessionFlow::mixed(
                    "Browser",
                    petstore::BROWSER_SESSION_LENGTH,
                    petstore::BROWSER_MIX
                        .iter()
                        .map(|(p, w)| (p.name(), *w))
                        .collect(),
                ),
                SessionFlow::chain(
                    "Buyer",
                    petstore::BUYER_SEQUENCE.iter().map(|p| p.name()).collect(),
                ),
            ],
            App::Rubis(_) => vec![
                SessionFlow::mixed(
                    "Browser",
                    rubis::BROWSER_SESSION_LENGTH,
                    rubis::BROWSER_MIX
                        .iter()
                        .map(|(p, w)| (p.name(), *w))
                        .collect(),
                ),
                SessionFlow::chain(
                    "Bidder",
                    rubis::BIDDER_SEQUENCE.iter().map(|p| p.name()).collect(),
                ),
            ],
        }
    }
}

/// One service usage pattern as a static page-flow graph: which pages a
/// session of the pattern can issue, the order constraints between them, and
/// the stationary per-request weight of each page.
///
/// Two shapes cover the paper's patterns: **chains** (transactional
/// sequences — page *i* is always followed by page *i+1*) and **mixed**
/// sessions (browsers — a fixed first page, then independent weighted draws,
/// so any page may follow any other).
#[derive(Debug, Clone, PartialEq)]
pub struct SessionFlow {
    /// Pattern label ("Browser", "Buyer", "Bidder").
    pub pattern: &'static str,
    /// The session kind the pattern belongs to.
    pub kind: SessionKind,
    /// Page labels; for chains, in issue order, with `pages[0]` always the
    /// first request of a session.
    pub pages: Vec<&'static str>,
    /// `true`: pages are issued strictly in `pages` order; `false`: after
    /// `pages[0]`, any page can follow any other.
    pub chain: bool,
    /// Stationary probability that a uniformly sampled request of this
    /// pattern is each page (aligned with `pages`; sums to 1).
    pub weights: Vec<f64>,
}

impl SessionFlow {
    /// A strict page sequence with uniform per-request weights.
    fn chain(pattern: &'static str, pages: Vec<&'static str>) -> SessionFlow {
        let w = 1.0 / pages.len() as f64;
        SessionFlow {
            pattern,
            kind: SessionKind::Transactional,
            weights: vec![w; pages.len()],
            pages,
            chain: true,
        }
    }

    /// A fixed first page (`mix[0]`) followed by `length − 1` independent
    /// draws from the percentage mix.
    fn mixed(pattern: &'static str, length: usize, mix: Vec<(&'static str, f64)>) -> SessionFlow {
        let first = 1.0 / length as f64;
        let rest = (length - 1) as f64 / length as f64;
        let weights = mix
            .iter()
            .enumerate()
            .map(|(i, (_, pct))| rest * pct / 100.0 + if i == 0 { first } else { 0.0 })
            .collect();
        SessionFlow {
            pattern,
            kind: SessionKind::Browser,
            pages: mix.into_iter().map(|(p, _)| p).collect(),
            chain: false,
            weights,
        }
    }

    /// The weight of a page under this pattern (0 when the pattern never
    /// issues the page).
    pub fn weight_of(&self, page: &str) -> f64 {
        self.pages
            .iter()
            .zip(&self.weights)
            .filter(|(p, _)| **p == page)
            .map(|(_, w)| w)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sessions_drain_to_none() {
        for (app, _, _) in [App::petstore(true), App::rubis()] {
            let mut rng = SimRng::seed_from_u64(5);
            for kind in [SessionKind::Browser, SessionKind::Transactional] {
                let mut s = app.new_session(kind, &mut rng);
                let mut n = 0;
                while app.next_page(&mut s, &mut rng).is_some() {
                    n += 1;
                }
                assert_eq!(n, app.session_length(kind), "{} {kind:?}", app.name());
                assert!(app.next_page(&mut s, &mut rng).is_none());
            }
        }
    }

    #[test]
    fn session_flows_cover_patterns_and_weights_sum_to_one() {
        for (app, _, _) in [App::petstore(true), App::rubis()] {
            let flows = app.session_flows();
            assert_eq!(flows.len(), 2, "{}", app.name());
            for flow in &flows {
                assert_eq!(flow.pages.len(), flow.weights.len());
                let total: f64 = flow.weights.iter().sum();
                assert!(
                    (total - 1.0).abs() < 1e-9,
                    "{} {} weights sum to {total}",
                    app.name(),
                    flow.pattern
                );
                assert!(flow.weights.iter().all(|&w| w > 0.0));
            }
            let browser = &flows[0];
            assert_eq!(browser.pages[0], "Main", "sessions open at Main");
            assert!(!browser.chain);
            let chain = &flows[1];
            assert_eq!(chain.pattern, app.transactional_label());
            assert!(chain.chain);
            // Every page of the pattern graph is a page the app can build.
            let known: Vec<String> = app.all_pages().iter().map(|p| p.page.clone()).collect();
            for flow in &flows {
                for page in &flow.pages {
                    assert!(known.iter().any(|k| k == page), "{page} unknown");
                }
            }
            // The stationary weight of every paper page is reachable via
            // weight_of, and unknown pages weigh nothing.
            assert!(browser.weight_of("Main") > 0.0);
            assert_eq!(browser.weight_of("NotAPage"), 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "does not belong")]
    fn cross_app_session_state_panics() {
        let (ps, _, _) = App::petstore(true);
        let (rubis, _, _) = App::rubis();
        let mut rng = SimRng::seed_from_u64(1);
        let mut s = rubis.new_session(SessionKind::Browser, &mut rng);
        let _ = ps.next_page(&mut s, &mut rng);
    }

    #[test]
    fn draw_then_build_matches_next_page() {
        for (app, _, _) in [App::petstore(true), App::rubis()] {
            // Identical seeds: draw_page must consume the same RNG stream as
            // next_page and build_page must add nothing.
            let mut rng_a = SimRng::seed_from_u64(7);
            let mut rng_b = SimRng::seed_from_u64(7);
            let mut sa = app.new_session(SessionKind::Browser, &mut rng_a);
            let mut sb = app.new_session(SessionKind::Browser, &mut rng_b);
            loop {
                let via_next = app.next_page(&mut sa, &mut rng_a);
                let via_split = app.draw_page(&mut sb, &mut rng_b);
                match (via_next, via_split) {
                    (None, None) => break,
                    (Some((la, ra)), Some((lb, spec))) => {
                        assert_eq!(la, lb);
                        let rb = app.build_page(&spec);
                        assert_eq!(format!("{ra:?}"), format!("{rb:?}"));
                    }
                    (a, b) => panic!("draw/build diverged: {a:?} vs {b:?}"),
                }
            }
        }
    }

    #[test]
    fn page_keys_project_only_used_parameters() {
        let (ps, _, _) = App::petstore(true);
        let App::PetStore(app) = &ps else {
            unreachable!()
        };
        let mut p1 = app.representative_params();
        let mut p2 = p1;
        // Category ignores account and item: same key.
        p2.account = app.shape.accounts[3];
        p2.item = app.shape.items(p1.product)[1];
        let k1 = PageSpec::PetStore(petstore::PsPage::Category, p1).key();
        let k2 = PageSpec::PetStore(petstore::PsPage::Category, p2).key();
        assert_eq!(k1, k2);
        // ... but a different category changes it.
        p2.category = app.shape.categories[1];
        let k3 = PageSpec::PetStore(petstore::PsPage::Category, p2).key();
        assert_ne!(k1, k3);
        // Commit keys on both account and item.
        p1.account = app.shape.accounts[0];
        p2 = p1;
        p2.item = app.shape.items(p1.product)[1];
        let c1 = PageSpec::PetStore(petstore::PsPage::Commit, p1).key();
        let c2 = PageSpec::PetStore(petstore::PsPage::Commit, p2).key();
        assert_ne!(c1, c2);
        // Keys are distinct across apps and pages.
        let (rb, _, _) = App::rubis();
        let App::Rubis(rubis_app) = &rb else {
            unreachable!()
        };
        let rk = PageSpec::Rubis(rubis::RubisPage::Main, rubis_app.representative_params()).key();
        let pk = PageSpec::PetStore(petstore::PsPage::Main, p1).key();
        assert_ne!(rk, pk);
    }

    #[test]
    fn equal_keys_build_identical_trees() {
        // Two draws that differ only in unused parameters must build
        // byte-identical call trees — the soundness condition for keying a
        // bound-program cache on PageKey.
        let (ps, _, _) = App::petstore(true);
        let App::PetStore(app) = &ps else {
            unreachable!()
        };
        let p1 = app.representative_params();
        let mut p2 = p1;
        p2.account = app.shape.accounts[5];
        p2.keyword = 2;
        let s1 = PageSpec::PetStore(petstore::PsPage::Category, p1);
        let s2 = PageSpec::PetStore(petstore::PsPage::Category, p2);
        assert_eq!(s1.key(), s2.key());
        let r1 = ps.build_page(&s1);
        let r2 = ps.build_page(&s2);
        assert_eq!(format!("{:?}", r1), format!("{:?}", r2));
    }

    #[test]
    fn labels() {
        let (ps, _, _) = App::petstore(true);
        let (rubis, _, _) = App::rubis();
        assert_eq!(ps.name(), "petstore");
        assert_eq!(ps.transactional_label(), "Buyer");
        assert_eq!(rubis.transactional_label(), "Bidder");
    }
}
