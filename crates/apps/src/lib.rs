//! # mutsvc-apps — the paper's two test applications
//!
//! Component models of **Java Pet Store 1.1.2** ([`petstore`]) and **RUBiS**
//! ([`rubis`]) as studied by the paper: their schemas (§3.4 sizing), their
//! component inventories (Table 1 / §2.2), the call trees of every measured
//! page (Tables 6/7 columns) and their service usage patterns (Tables 2–5).
//!
//! The [`App`] enum gives the workload driver a uniform way to generate
//! sessions for either application:
//!
//! ```
//! use mutsvc_apps::{App, SessionKind};
//! use mutsvc_desim::SimRng;
//!
//! let (app, _registry, _db) = App::petstore(true);
//! let mut rng = SimRng::seed_from_u64(1);
//! let mut session = app.new_session(SessionKind::Browser, &mut rng);
//! let (label, request) = app.next_page(&mut session, &mut rng).unwrap();
//! assert_eq!(label, "Main");
//! assert!(request.response_bytes > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod petstore;
pub mod rubis;

use mutsvc_desim::rng::SimRng;
use mutsvc_middleware::{ComponentRegistry, PageRequest};
use mutsvc_relstore::Database;

pub use petstore::PetStore;
pub use rubis::Rubis;

/// The two service usage pattern families of §3.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SessionKind {
    /// Read-only browsing (Pet Store *Browser*, RUBiS *Browser*).
    Browser,
    /// Read-write sessions (Pet Store *Buyer*, RUBiS *Bidder*).
    Transactional,
}

/// One of the two applications, with uniform session generation.
#[derive(Debug, Clone)]
pub enum App {
    /// Java Pet Store.
    PetStore(PetStore),
    /// RUBiS.
    Rubis(Rubis),
}

/// Generator state of one client session.
#[derive(Debug, Clone)]
pub enum SessionState {
    /// Pet Store browser.
    PsBrowser(petstore::BrowserSession),
    /// Pet Store buyer.
    PsBuyer(petstore::BuyerSession),
    /// RUBiS browser.
    RubisBrowser(rubis::BrowserSession),
    /// RUBiS bidder.
    RubisBidder(rubis::BidderSession),
}

impl App {
    /// Builds the Pet Store application (see [`PetStore::build`]).
    pub fn petstore(facade: bool) -> (App, ComponentRegistry, Database) {
        let (app, registry, db) = PetStore::build(facade);
        (App::PetStore(app), registry, db)
    }

    /// Builds the RUBiS application.
    pub fn rubis() -> (App, ComponentRegistry, Database) {
        let (app, registry, db) = Rubis::build();
        (App::Rubis(app), registry, db)
    }

    /// The application name.
    pub fn name(&self) -> &'static str {
        match self {
            App::PetStore(_) => "petstore",
            App::Rubis(_) => "rubis",
        }
    }

    /// The label of the transactional pattern ("Buyer" / "Bidder").
    pub fn transactional_label(&self) -> &'static str {
        match self {
            App::PetStore(_) => "Buyer",
            App::Rubis(_) => "Bidder",
        }
    }

    /// Starts a new session of the given kind.
    pub fn new_session(&self, kind: SessionKind, rng: &mut SimRng) -> SessionState {
        match (self, kind) {
            (App::PetStore(_), SessionKind::Browser) => {
                SessionState::PsBrowser(petstore::BrowserSession::new())
            }
            (App::PetStore(app), SessionKind::Transactional) => {
                SessionState::PsBuyer(petstore::BuyerSession::new(&app.shape, rng))
            }
            (App::Rubis(_), SessionKind::Browser) => {
                SessionState::RubisBrowser(rubis::BrowserSession::new())
            }
            (App::Rubis(app), SessionKind::Transactional) => {
                SessionState::RubisBidder(rubis::BidderSession::new(&app.shape, rng))
            }
        }
    }

    /// Draws the next page of a session, or `None` when the session is over.
    ///
    /// # Panics
    ///
    /// Panics if `state` belongs to the other application.
    pub fn next_page(
        &self,
        state: &mut SessionState,
        rng: &mut SimRng,
    ) -> Option<(&'static str, PageRequest)> {
        match (self, state) {
            (App::PetStore(app), SessionState::PsBrowser(s)) => s
                .next(&app.shape, rng)
                .map(|(page, params)| (page.name(), app.page(page, &params))),
            (App::PetStore(app), SessionState::PsBuyer(s)) => s
                .next()
                .map(|(page, params)| (page.name(), app.page(page, &params))),
            (App::Rubis(app), SessionState::RubisBrowser(s)) => s
                .next(&app.shape, rng)
                .map(|(page, params)| (page.name(), app.page(page, &params))),
            (App::Rubis(app), SessionState::RubisBidder(s)) => s
                .next()
                .map(|(page, params)| (page.name(), app.page(page, &params))),
            _ => panic!("session state does not belong to this application"),
        }
    }

    /// Every measured page, built with fixed representative parameters (the
    /// static analyzer's page inventory).
    pub fn all_pages(&self) -> Vec<PageRequest> {
        match self {
            App::PetStore(app) => app.all_pages(),
            App::Rubis(app) => app.all_pages(),
        }
    }

    /// Every cacheable query instance the workload can issue (for eager
    /// edge-cache population).
    pub fn cacheable_query_instances(&self) -> Vec<(String, mutsvc_relstore::Query)> {
        match self {
            App::PetStore(app) => app.cacheable_query_instances(),
            App::Rubis(app) => app.cacheable_query_instances(),
        }
    }

    /// Nominal session length of a pattern (number of page requests).
    pub fn session_length(&self, kind: SessionKind) -> usize {
        match (self, kind) {
            (App::PetStore(_), SessionKind::Browser) => petstore::BROWSER_SESSION_LENGTH,
            (App::PetStore(_), SessionKind::Transactional) => petstore::BUYER_SEQUENCE.len(),
            (App::Rubis(_), SessionKind::Browser) => rubis::BROWSER_SESSION_LENGTH,
            (App::Rubis(_), SessionKind::Transactional) => rubis::BIDDER_SEQUENCE.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sessions_drain_to_none() {
        for (app, _, _) in [App::petstore(true), App::rubis()] {
            let mut rng = SimRng::seed_from_u64(5);
            for kind in [SessionKind::Browser, SessionKind::Transactional] {
                let mut s = app.new_session(kind, &mut rng);
                let mut n = 0;
                while app.next_page(&mut s, &mut rng).is_some() {
                    n += 1;
                }
                assert_eq!(n, app.session_length(kind), "{} {kind:?}", app.name());
                assert!(app.next_page(&mut s, &mut rng).is_none());
            }
        }
    }

    #[test]
    #[should_panic(expected = "does not belong")]
    fn cross_app_session_state_panics() {
        let (ps, _, _) = App::petstore(true);
        let (rubis, _, _) = App::rubis();
        let mut rng = SimRng::seed_from_u64(1);
        let mut s = rubis.new_session(SessionKind::Browser, &mut rng);
        let _ = ps.next_page(&mut s, &mut rng);
    }

    #[test]
    fn labels() {
        let (ps, _, _) = App::petstore(true);
        let (rubis, _, _) = App::rubis();
        assert_eq!(ps.name(), "petstore");
        assert_eq!(ps.transactional_label(), "Buyer");
        assert_eq!(rubis.transactional_label(), "Bidder");
    }
}
