//! # mutsvc-netsim — wide-area network emulation
//!
//! Models the paper's testbed network (Figure 2): hosts with multi-CPU
//! queues, a star of shaped links through a software router, and the
//! protocols whose round trips dominate wide-area response times.
//!
//! * [`topology`] — nodes, directed links, latency-shortest routes.
//! * [`network`] — the live network: CPU and link queueing state.
//! * [`protocol`] — TCP / HTTP / RMI / JDBC / JMS cost recipes as
//!   [`Step`](job::Step) fragments.
//! * [`job`] — the step executor: sequential, parallel (blocking push) and
//!   forked (asynchronous push) request programs.
//!
//! ## Example: a remote HTTP request over a 100 ms WAN
//!
//! ```
//! use mutsvc_desim::{SimDuration, SimTime, Simulation};
//! use mutsvc_netsim::{Jobs, JobWorld, NetEvent, Network, ProtocolParams, Step,
//!                     TopologyBuilder, spawn_job};
//!
//! let mut b = TopologyBuilder::new();
//! let client = b.node("client", 1);
//! let router = b.node("router", 1);
//! let server = b.node("server", 2);
//! b.duplex_link(client, router, SimDuration::from_micros(100), 100e6);
//! b.duplex_link(router, server, SimDuration::from_millis(100), 100e6);
//!
//! struct World { net: Network, jobs: Jobs<World>, done_at: Option<SimTime> }
//! impl JobWorld for World {
//!     type Event = NetEvent;
//!     fn network_mut(&mut self) -> &mut Network { &mut self.net }
//!     fn jobs_mut(&mut self) -> &mut Jobs<World> { &mut self.jobs }
//! }
//!
//! let protocols = ProtocolParams::default();
//! let mut steps = protocols.http_request(client, server, 0);
//! steps.push(Step::cpu(server, SimDuration::from_millis(20)));
//! steps.push(protocols.http_response(server, client, 10_000));
//!
//! let mut sim: Simulation<World, NetEvent> = Simulation::with_events(World {
//!     net: Network::new(b.finalize()),
//!     jobs: Jobs::new(),
//!     done_at: None,
//! });
//! sim.schedule_at(SimTime::ZERO, move |w, ctx| {
//!     spawn_job(w, ctx, steps, Box::new(|w: &mut World, ctx| w.done_at = Some(ctx.now())));
//! });
//! sim.run();
//!
//! // Two WAN round trips (~400 ms) + 20 ms service + transmission.
//! let ms = sim.world().done_at.unwrap().as_millis_f64();
//! assert!(ms > 420.0 && ms < 430.0, "got {ms}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod job;
pub mod network;
pub mod protocol;
pub mod topology;

pub use job::{
    advance_job, spawn_job, spawn_program, spawn_program_traced, wan_round_trips, JobId, JobWorld,
    Jobs, NetEvent, Program, Step,
};
pub use network::Network;
pub use protocol::ProtocolParams;
pub use topology::{
    LinkId, LinkSpec, NodeId, NodeSpec, Topology, TopologyBuilder, WAN_LATENCY_THRESHOLD,
};
