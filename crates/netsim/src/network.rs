//! The live network: topology plus queueing state (CPU and link resources).

use mutsvc_desim::resource::FifoResource;
use mutsvc_desim::time::{SimDuration, SimTime};

use crate::topology::{LinkId, NodeId, Topology};

/// A topology instantiated with per-node CPU queues and per-link
/// serialization queues.
///
/// Transfers are store-and-forward: a message is serialized onto each hop's
/// link queue in turn and experiences each hop's propagation latency. Hop
/// admissions along a path are computed analytically at the time the transfer
/// is issued; with the sub-millisecond serialization times of this model the
/// resulting reordering error is negligible (see DESIGN.md §4).
#[derive(Debug)]
pub struct Network {
    topology: Topology,
    cpus: Vec<FifoResource>,
    links: Vec<FifoResource>,
    /// Per-link latency overrides (failure injection / degradation studies).
    latency_overrides: Vec<Option<SimDuration>>,
    /// Messages serialized per directed link (telemetry).
    link_msgs: Vec<u64>,
    /// Payload bytes serialized per directed link (telemetry).
    link_bytes: Vec<u64>,
    /// Per-link up/down state (fault injection). All links start up.
    link_up: Vec<bool>,
    /// Per-node application up/down state (fault injection). A downed node
    /// fails CPU work and messages addressed to it, but keeps forwarding
    /// transit traffic (the model is a crashed server process, not a
    /// powered-off host).
    node_up: Vec<bool>,
    /// Per-link message-loss probability (fault injection; 0 = lossless).
    link_loss: Vec<f64>,
    /// Per-link loss-draw sequence counters. Only advanced while a loss
    /// window is active on the link, so fault-off runs never touch them.
    loss_seq: Vec<u64>,
    /// Salt folded into loss draws (typically the experiment seed).
    loss_salt: u64,
}

impl Network {
    /// Instantiates queues for every node and link of `topology`.
    pub fn new(topology: Topology) -> Self {
        let cpus = topology
            .node_ids()
            .map(|id| {
                let spec = topology.node(id);
                FifoResource::new(format!("cpu:{}", spec.name), spec.cpus)
            })
            .collect();
        let links = (0..topology.link_count())
            .map(|i| FifoResource::new(format!("link:{i}"), 1))
            .collect();
        let latency_overrides = vec![None; topology.link_count()];
        let link_msgs = vec![0; topology.link_count()];
        let link_bytes = vec![0; topology.link_count()];
        let link_up = vec![true; topology.link_count()];
        let node_up = vec![true; topology.node_count()];
        let link_loss = vec![0.0; topology.link_count()];
        let loss_seq = vec![0; topology.link_count()];
        Network {
            topology,
            cpus,
            links,
            latency_overrides,
            link_msgs,
            link_bytes,
            link_up,
            node_up,
            link_loss,
            loss_seq,
            loss_salt: 0,
        }
    }

    /// The effective one-way latency of `link` (override or base).
    pub fn link_latency(&self, link: LinkId) -> SimDuration {
        self.latency_overrides[link.index()].unwrap_or(self.topology.link(link).latency)
    }

    /// The effective round-trip propagation time of `link`: twice the
    /// current one-way latency, including any degradation override. This is
    /// the value the metrics recorder samples into per-link RTT gauges, so
    /// windowed series show fault-injected latency changes as they happen.
    pub fn link_round_trip(&self, link: LinkId) -> SimDuration {
        self.link_latency(link) * 2
    }

    /// Overrides the latency of one directed link (pass the base latency to
    /// restore). Models link degradation and routing changes mid-run.
    pub fn set_link_latency(&mut self, link: LinkId, latency: SimDuration) {
        self.latency_overrides[link.index()] = Some(latency);
    }

    /// Scales the latency of every link whose *base* latency is at least
    /// `threshold` — the WAN legs, for the paper's topology — by `factor`.
    pub fn scale_latencies_above(&mut self, threshold: SimDuration, factor: f64) {
        for i in 0..self.topology.link_count() {
            let base = self.topology.link(LinkId(i)).latency;
            if base >= threshold {
                self.latency_overrides[i] = Some(base.mul_f64(factor));
            }
        }
    }

    /// Removes all latency overrides.
    pub fn clear_latency_overrides(&mut self) {
        for o in &mut self.latency_overrides {
            *o = None;
        }
    }

    /// The underlying immutable topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    // ---- fault state -------------------------------------------------------

    /// Sets the up/down state of one directed link.
    pub fn set_link_up(&mut self, link: LinkId, up: bool) {
        self.link_up[link.index()] = up;
    }

    /// Whether `link` is currently delivering messages.
    pub fn link_is_up(&self, link: LinkId) -> bool {
        self.link_up[link.index()]
    }

    /// Sets the application up/down state of one node.
    pub fn set_node_up(&mut self, node: NodeId, up: bool) {
        self.node_up[node.index()] = up;
    }

    /// Whether the application process on `node` is up.
    pub fn node_is_up(&self, node: NodeId) -> bool {
        self.node_up[node.index()]
    }

    /// Opens (or with `0.0` closes) a message-loss window on one directed
    /// link: each subsequent send is dropped independently with probability
    /// `probability`, decided by a deterministic counter hash salted with
    /// [`Self::set_loss_salt`].
    pub fn set_link_loss(&mut self, link: LinkId, probability: f64) {
        self.link_loss[link.index()] = probability.clamp(0.0, 1.0);
    }

    /// Salt folded into loss draws so distinct experiment seeds see distinct
    /// loss patterns while same-seed replays stay byte-identical.
    pub fn set_loss_salt(&mut self, salt: u64) {
        self.loss_salt = salt;
    }

    /// Whether a message sent on `link` right now is dropped by the active
    /// loss window. Advances the link's loss sequence counter only while a
    /// window is open, so fault-off runs are untouched.
    pub fn message_dropped(&mut self, link: LinkId) -> bool {
        let p = self.link_loss[link.index()];
        if p <= 0.0 {
            return false;
        }
        let seq = self.loss_seq[link.index()];
        self.loss_seq[link.index()] += 1;
        mutsvc_desim::fault::message_lost(self.loss_salt, link.index() as u32, seq, p)
    }

    /// Number of directed links currently down (fault-state telemetry).
    pub fn links_down(&self) -> usize {
        self.link_up.iter().filter(|&&up| !up).count()
    }

    /// Number of nodes currently crashed (fault-state telemetry).
    pub fn nodes_down(&self) -> usize {
        self.node_up.iter().filter(|&&up| !up).count()
    }

    /// Scales the latency of one directed link relative to its *base*
    /// latency (`1.0` restores). Models per-link degradation episodes.
    pub fn scale_link_latency(&mut self, link: LinkId, factor: f64) {
        let base = self.topology.link(link).latency;
        self.latency_overrides[link.index()] = if factor == 1.0 {
            None
        } else {
            Some(base.mul_f64(factor))
        };
    }

    /// Whether the route `from -> to` is currently free of downed links and
    /// ends at a live node. Transit nodes are not checked (see
    /// [`Self::set_node_up`]).
    ///
    /// # Panics
    ///
    /// Panics if `to` is unreachable from `from` in the base topology.
    pub fn path_is_up(&self, from: NodeId, to: NodeId) -> bool {
        self.node_is_up(to)
            && self
                .route(from, to)
                .iter()
                .all(|&l| self.link_up[l.index()])
    }

    /// Admits `demand` of CPU work on `node` at time `now`; returns the
    /// completion time. The demand is scaled by the node's relative speed.
    pub fn cpu(&mut self, now: SimTime, node: NodeId, demand: SimDuration) -> SimTime {
        if demand.is_zero() {
            return now;
        }
        let speed = self.topology.node(node).speed;
        let scaled = demand.mul_f64(1.0 / speed);
        self.cpus[node.index()].admit(now, scaled)
    }

    /// The route from `from` to `to`, borrowed from the precomputed table.
    ///
    /// # Panics
    ///
    /// Panics if `to` is unreachable from `from`.
    pub fn route(&self, from: NodeId, to: NodeId) -> &[LinkId] {
        self.topology
            .route(from, to)
            .unwrap_or_else(|| panic!("no route {from} -> {to}"))
    }

    /// The route from `from` to `to` as an owned link list.
    ///
    /// # Panics
    ///
    /// Panics if `to` is unreachable from `from`.
    pub fn route_of(&self, from: NodeId, to: NodeId) -> Vec<LinkId> {
        self.route(from, to).to_vec()
    }

    /// Serializes `bytes` onto directed link `link` at `now` and returns the
    /// arrival time at the link's far end (serialization queueing plus
    /// propagation latency).
    pub fn link_send(&mut self, now: SimTime, link: LinkId, bytes: u64) -> SimTime {
        let spec = self.topology.link(link);
        let serialization = spec.serialization_time(bytes);
        let latency = self.link_latency(link);
        let sent = self.links[link.index()].admit(now, serialization);
        self.link_msgs[link.index()] += 1;
        self.link_bytes[link.index()] += bytes;
        sent + latency
    }

    /// Sends `bytes` from `from` to `to` starting at `now`; returns the
    /// arrival time at `to`. A transfer to self arrives immediately.
    ///
    /// All hop admissions happen at call time, so a long-latency path
    /// reserves far-hop link slots "in the future". This is fine for
    /// one-shot estimates and tests; the event-driven job executor instead
    /// walks hops with [`Self::link_send`] at their actual times, keeping
    /// link admissions chronological under load.
    ///
    /// # Panics
    ///
    /// Panics if `to` is unreachable from `from`.
    pub fn transfer(&mut self, now: SimTime, from: NodeId, to: NodeId, bytes: u64) -> SimTime {
        if from == to {
            return now;
        }
        let route: Vec<LinkId> = self
            .topology
            .route(from, to)
            .unwrap_or_else(|| panic!("no route {from} -> {to}"))
            .to_vec();
        let mut t = now;
        for link in route {
            let spec = self.topology.link(link);
            let serialization = spec.serialization_time(bytes);
            let latency = self.link_latency(link);
            let sent = self.links[link.index()].admit(t, serialization);
            t = sent + latency;
        }
        t
    }

    /// One round trip of `req_bytes` / `resp_bytes` between `a` and `b`;
    /// returns the time the response arrives back at `a`.
    pub fn round_trip(
        &mut self,
        now: SimTime,
        a: NodeId,
        b: NodeId,
        req_bytes: u64,
        resp_bytes: u64,
    ) -> SimTime {
        let there = self.transfer(now, a, b, req_bytes);
        self.transfer(there, b, a, resp_bytes)
    }

    /// Bulk state transfer for a live component migration: a small control
    /// handshake (one round trip of [`Self::MIGRATION_HANDSHAKE_BYTES`])
    /// followed by `bytes` of component state pushed `from -> to`, occupying
    /// each hop's serialization queue like any other traffic. Returns the
    /// time the state is fully installed at `to`; a migration to the current
    /// host is free.
    pub fn migrate(&mut self, now: SimTime, from: NodeId, to: NodeId, bytes: u64) -> SimTime {
        if from == to {
            return now;
        }
        let acked = self.round_trip(
            now,
            from,
            to,
            Self::MIGRATION_HANDSHAKE_BYTES,
            Self::MIGRATION_HANDSHAKE_BYTES,
        );
        self.transfer(acked, from, to, bytes)
    }

    /// Control-plane payload of the migration handshake round trip.
    pub const MIGRATION_HANDSHAKE_BYTES: u64 = 512;

    /// CPU utilization of `node` over `[first admission, horizon]`.
    pub fn cpu_utilization(&self, node: NodeId, horizon: SimTime) -> f64 {
        self.cpus[node.index()].utilization(horizon)
    }

    /// Jobs admitted at `node`'s CPU.
    pub fn cpu_jobs(&self, node: NodeId) -> u64 {
        self.cpus[node.index()].jobs_admitted()
    }

    /// Mean CPU queueing delay at `node`.
    pub fn cpu_mean_wait(&self, node: NodeId) -> SimDuration {
        self.cpus[node.index()].mean_wait()
    }

    /// Total bytes-serialization busy time of directed link `link`.
    pub fn link_busy(&self, link: LinkId) -> SimDuration {
        self.links[link.index()].busy_time()
    }

    /// `(messages, payload bytes)` serialized onto directed link `link`
    /// via the event-driven path ([`Self::link_send`]) since the last
    /// [`Self::reset_stats`].
    pub fn link_traffic(&self, link: LinkId) -> (u64, u64) {
        (self.link_msgs[link.index()], self.link_bytes[link.index()])
    }

    /// Clears accumulated statistics (not occupancy) on all resources.
    /// Called when discarding warm-up measurements.
    pub fn reset_stats(&mut self) {
        for r in &mut self.cpus {
            r.reset_stats();
        }
        for r in &mut self.links {
            r.reset_stats();
        }
        for m in &mut self.link_msgs {
            *m = 0;
        }
        for b in &mut self.link_bytes {
            *b = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyBuilder;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }
    fn at(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    fn wan_pair() -> (Network, NodeId, NodeId) {
        let mut b = TopologyBuilder::new();
        let a = b.node("a", 2);
        let r = b.node("router", 4);
        let c = b.node("c", 2);
        // 12_500_000 bytes/s = 12.5 bytes/us so serialization is visible.
        b.duplex_link(a, r, ms(10), 100e6);
        b.duplex_link(r, c, ms(90), 100e6);
        (Network::new(b.finalize()), a, c)
    }

    #[test]
    fn transfer_accumulates_latency_and_serialization() {
        let (mut net, a, c) = wan_pair();
        // 12_500 bytes = 1 ms serialization per hop at 100 Mbit/s.
        let arrival = net.transfer(SimTime::ZERO, a, c, 12_500);
        // 1ms + 10ms + 1ms + 90ms = 102 ms.
        assert_eq!(arrival, at(102));
    }

    #[test]
    fn transfer_to_self_is_free() {
        let (mut net, a, _) = wan_pair();
        assert_eq!(net.transfer(at(5), a, a, 1_000_000), at(5));
    }

    #[test]
    fn round_trip_is_two_transfers() {
        let (mut net, a, c) = wan_pair();
        let back = net.round_trip(SimTime::ZERO, a, c, 0, 0);
        assert_eq!(back, at(200));
    }

    #[test]
    fn link_contention_queues_transfers() {
        let (mut net, a, c) = wan_pair();
        // Two large messages issued at t=0 share the a->router link.
        let first = net.transfer(SimTime::ZERO, a, c, 125_000); // 10ms serialization/hop
        let second = net.transfer(SimTime::ZERO, a, c, 125_000);
        assert_eq!(first, at(120)); // 10 + 10 + 10 + 90
                                    // Second waits 10ms for the first on hop 1; and 10 more on hop 2 (the
                                    // first message still owns it when the second arrives).
        assert!(second > first);
    }

    #[test]
    fn cpu_respects_node_speed() {
        let mut b = TopologyBuilder::new();
        let slow = b.node_with_speed("slow", 1, 0.5);
        let fast = b.node_with_speed("fast", 1, 2.0);
        b.duplex_link(slow, fast, ms(1), 1e9);
        let mut net = Network::new(b.finalize());
        assert_eq!(net.cpu(SimTime::ZERO, slow, ms(10)), at(20));
        assert_eq!(net.cpu(SimTime::ZERO, fast, ms(10)), at(5));
    }

    #[test]
    fn zero_demand_cpu_is_instant() {
        let (mut net, a, _) = wan_pair();
        assert_eq!(net.cpu(at(3), a, SimDuration::ZERO), at(3));
        assert_eq!(net.cpu_jobs(a), 0);
    }

    #[test]
    fn latency_overrides_degrade_and_restore() {
        // Issue each round trip after the previous one has fully drained so
        // the FIFO link queues see chronological admissions.
        let (mut net, a, c) = wan_pair();
        assert_eq!(net.round_trip(at(0), a, c, 0, 0) - at(0), ms(200));
        // Double only the WAN legs (base latency >= 50 ms).
        net.scale_latencies_above(ms(50), 2.0);
        assert_eq!(net.round_trip(at(1_000), a, c, 0, 0) - at(1_000), ms(380));
        net.clear_latency_overrides();
        assert_eq!(net.round_trip(at(2_000), a, c, 0, 0) - at(2_000), ms(200));
    }

    #[test]
    fn single_link_override() {
        let (mut net, a, c) = wan_pair();
        let route = net.route_of(a, c);
        net.set_link_latency(route[0], ms(50));
        assert_eq!(net.link_latency(route[0]), ms(50));
        // Forward path gains 40ms; reverse path unchanged.
        assert_eq!(net.round_trip(SimTime::ZERO, a, c, 0, 0), at(240));
    }

    #[test]
    fn fault_state_defaults_to_healthy() {
        let (net, a, c) = wan_pair();
        let route = net.route_of(a, c);
        assert!(net.link_is_up(route[0]));
        assert!(net.node_is_up(c));
        assert!(net.path_is_up(a, c));
        assert_eq!(net.links_down(), 0);
        assert_eq!(net.nodes_down(), 0);
    }

    #[test]
    fn downed_link_breaks_the_path_until_restored() {
        let (mut net, a, c) = wan_pair();
        let route = net.route_of(a, c);
        net.set_link_up(route[1], false);
        assert!(!net.path_is_up(a, c));
        assert_eq!(net.links_down(), 1);
        // The reverse direction is a distinct directed link and stays up.
        assert!(net.path_is_up(c, a));
        net.set_link_up(route[1], true);
        assert!(net.path_is_up(a, c));
    }

    #[test]
    fn crashed_destination_breaks_the_path_but_not_transit() {
        let (mut net, a, c) = wan_pair();
        let router = net.topology().node_by_name("router").unwrap();
        net.set_node_up(router, false);
        // The router process is down, but it still forwards: a -> c is fine.
        assert!(net.path_is_up(a, c));
        assert!(!net.path_is_up(a, router));
        net.set_node_up(c, false);
        assert!(!net.path_is_up(a, c));
        assert_eq!(net.nodes_down(), 2);
    }

    #[test]
    fn loss_window_drops_deterministically_and_only_while_open() {
        let (mut net, a, c) = wan_pair();
        let link = net.route_of(a, c)[0];
        net.set_loss_salt(42);
        // Closed window: nothing dropped, counter untouched.
        for _ in 0..8 {
            assert!(!net.message_dropped(link));
        }
        net.set_link_loss(link, 0.5);
        let pattern: Vec<bool> = (0..64).map(|_| net.message_dropped(link)).collect();
        assert!(pattern.iter().any(|&d| d) && pattern.iter().any(|&d| !d));
        // Same salt and a fresh network replays the same pattern.
        let (mut net2, a2, c2) = wan_pair();
        let link2 = net2.route_of(a2, c2)[0];
        net2.set_loss_salt(42);
        net2.set_link_loss(link2, 0.5);
        let replay: Vec<bool> = (0..64).map(|_| net2.message_dropped(link2)).collect();
        assert_eq!(pattern, replay);
        net.set_link_loss(link, 0.0);
        assert!(!net.message_dropped(link));
    }

    #[test]
    fn per_link_degradation_scales_and_restores() {
        let (mut net, a, c) = wan_pair();
        let wan = net.route_of(a, c)[1]; // 90 ms base leg
        net.scale_link_latency(wan, 3.0);
        assert_eq!(net.link_latency(wan), ms(270));
        net.scale_link_latency(wan, 1.0);
        assert_eq!(net.link_latency(wan), ms(90));
    }

    #[test]
    fn migration_pays_handshake_then_bulk_transfer() {
        let (mut net, a, c) = wan_pair();
        assert_eq!(
            net.migrate(at(5), a, a, 1_000_000),
            at(5),
            "self-migration is free"
        );
        let small = net.migrate(SimTime::ZERO, a, c, 12_500);
        // Lower bound: handshake RTT (200 ms propagation) + one-way bulk
        // (100 ms propagation + 1 ms serialization per hop).
        assert!(small >= at(302), "migration finished too early: {small:?}");
        // More state takes strictly longer on a fresh network.
        let (mut net2, a2, c2) = wan_pair();
        let big = net2.migrate(SimTime::ZERO, a2, c2, 1_250_000);
        assert!(big > small, "bulk size must price the transfer: {big:?}");
    }

    #[test]
    fn utilization_reported_per_node() {
        let (mut net, a, c) = wan_pair();
        net.cpu(SimTime::ZERO, a, ms(50));
        let u = net.cpu_utilization(a, at(100));
        assert!(
            (u - 0.25).abs() < 1e-9,
            "dual cpu, 50ms busy over 100ms: {u}"
        );
        assert_eq!(net.cpu_utilization(c, at(100)), 0.0);
    }
}
