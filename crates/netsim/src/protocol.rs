//! Protocol cost models.
//!
//! The paper's response-time anatomy is protocol round trips over shaped
//! links: a non-keep-alive HTTP request costs a TCP handshake plus a
//! request/response exchange (§4.1 measures this as ~400 ms over the 100 ms
//! one-way WAN); an RMI invocation costs one exchange *plus* occasional extra
//! round trips caused by ping packets and distributed garbage collection
//! (§4.2, citing Campadello et al.); JDBC traffic is per-statement chatter
//! with the "n+1 calls" behaviour for BMP finders; JMS publication is a
//! one-way transfer to the broker plus broker-to-subscriber deliveries.
//!
//! These builders return [`Step`] fragments that higher layers splice around
//! CPU work.

use serde::{Deserialize, Serialize};

use mutsvc_desim::rng::SimRng;

use crate::job::Step;
use crate::topology::NodeId;

/// Byte sizes and overhead probabilities for the wire protocols.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProtocolParams {
    /// TCP control segment size (SYN / SYN-ACK).
    pub tcp_segment_bytes: u64,
    /// Size of an HTTP request line + headers.
    pub http_request_bytes: u64,
    /// Marshalling overhead of an RMI request (headers, method signature).
    pub rmi_request_overhead_bytes: u64,
    /// Marshalling overhead of an RMI response.
    pub rmi_response_overhead_bytes: u64,
    /// Probability that an RMI call incurs one extra round trip
    /// (DGC lease renewal / ping traffic; ~0.65 reproduces JBoss 2.4.4,
    /// ~0.35 the leaner JBoss 3.0.3 stack).
    pub rmi_extra_round_trip_prob: f64,
    /// Size of the extra DGC/ping segments.
    pub rmi_extra_bytes: u64,
    /// Size of a JDBC statement request.
    pub jdbc_request_bytes: u64,
    /// Fixed part of a JDBC response (excluding row payload).
    pub jdbc_response_overhead_bytes: u64,
    /// Bytes per row fetched over JDBC.
    pub jdbc_row_bytes: u64,
    /// Size of a JMS message envelope (excluding payload).
    pub jms_envelope_bytes: u64,
}

impl Default for ProtocolParams {
    fn default() -> Self {
        ProtocolParams {
            tcp_segment_bytes: 64,
            http_request_bytes: 400,
            rmi_request_overhead_bytes: 600,
            rmi_response_overhead_bytes: 400,
            rmi_extra_round_trip_prob: 0.65,
            rmi_extra_bytes: 80,
            jdbc_request_bytes: 150,
            jdbc_response_overhead_bytes: 120,
            jdbc_row_bytes: 200,
            jms_envelope_bytes: 300,
        }
    }
}

impl ProtocolParams {
    /// Parameters reproducing the Pet Store stack (JBoss 2.4.4 + Jetty 3.1.3,
    /// chatty RMI with frequent DGC round trips).
    pub fn petstore_stack() -> Self {
        ProtocolParams {
            rmi_extra_round_trip_prob: 0.65,
            ..Default::default()
        }
    }

    /// Parameters reproducing the RUBiS stack (JBoss 3.0.3 + Jetty 4.1.0,
    /// leaner RMI).
    pub fn rubis_stack() -> Self {
        ProtocolParams {
            rmi_extra_round_trip_prob: 0.35,
            ..Default::default()
        }
    }

    /// A TCP connection establishment round trip (no keep-alive in the
    /// paper's tests, so every page request pays this).
    pub fn tcp_handshake(&self, client: NodeId, server: NodeId) -> Step {
        Step::exchange(
            client,
            server,
            self.tcp_segment_bytes,
            self.tcp_segment_bytes,
        )
    }

    /// The network legs of one HTTP request: handshake plus the request
    /// transfer. The response leg is built separately ([`Self::http_response`])
    /// so server-side work can be spliced in between.
    pub fn http_request(&self, client: NodeId, server: NodeId, body_bytes: u64) -> Vec<Step> {
        vec![
            self.tcp_handshake(client, server),
            Step::transfer(client, server, self.http_request_bytes + body_bytes),
        ]
    }

    /// The HTTP response transfer back to the client.
    pub fn http_response(&self, server: NodeId, client: NodeId, body_bytes: u64) -> Step {
        Step::transfer(server, client, body_bytes)
    }

    /// The request leg of an RMI invocation, including (sampled) DGC/ping
    /// overhead round trips. Returns an empty fragment for co-located calls.
    pub fn rmi_request(
        &self,
        rng: &mut SimRng,
        caller: NodeId,
        callee: NodeId,
        arg_bytes: u64,
    ) -> Vec<Step> {
        if caller == callee {
            return Vec::new();
        }
        let mut steps = Vec::with_capacity(2);
        if rng.chance(self.rmi_extra_round_trip_prob) {
            steps.push(Step::exchange(
                caller,
                callee,
                self.rmi_extra_bytes,
                self.rmi_extra_bytes,
            ));
        }
        steps.push(Step::transfer(
            caller,
            callee,
            self.rmi_request_overhead_bytes + arg_bytes,
        ));
        steps
    }

    /// The response leg of an RMI invocation. Empty for co-located calls.
    pub fn rmi_response(&self, callee: NodeId, caller: NodeId, ret_bytes: u64) -> Vec<Step> {
        if caller == callee {
            return Vec::new();
        }
        vec![Step::transfer(
            callee,
            caller,
            self.rmi_response_overhead_bytes + ret_bytes,
        )]
    }

    /// A complete JDBC interaction of `round_trips` statement round trips
    /// fetching `rows` rows in total. BMP-style finders exhibit the paper's
    /// "n+1 database calls" by passing `round_trips = rows + 1`.
    /// Empty when the client is co-located with the database.
    pub fn jdbc(&self, client: NodeId, db: NodeId, round_trips: u32, rows: u64) -> Vec<Step> {
        if client == db || round_trips == 0 {
            return Vec::new();
        }
        let mut steps = Vec::with_capacity(round_trips as usize);
        let payload = self.jdbc_response_overhead_bytes + rows * self.jdbc_row_bytes;
        // Spread the row payload over the trips; the last trip carries the rest.
        let per_trip = payload / round_trips as u64;
        for i in 0..round_trips {
            let resp = if i + 1 == round_trips {
                payload - per_trip * (round_trips as u64 - 1)
            } else {
                per_trip
            };
            steps.push(Step::exchange(client, db, self.jdbc_request_bytes, resp));
        }
        steps
    }

    /// Publication of a JMS message to a (possibly remote) broker: a one-way
    /// transfer. Delivery to subscribers is a separate [`Self::jms_delivery`].
    pub fn jms_publish(&self, publisher: NodeId, broker: NodeId, payload_bytes: u64) -> Vec<Step> {
        if publisher == broker {
            return Vec::new();
        }
        vec![Step::transfer(
            publisher,
            broker,
            self.jms_envelope_bytes + payload_bytes,
        )]
    }

    /// Delivery of a JMS message from the broker to one subscriber.
    pub fn jms_delivery(
        &self,
        broker: NodeId,
        subscriber: NodeId,
        payload_bytes: u64,
    ) -> Vec<Step> {
        if broker == subscriber {
            return Vec::new();
        }
        vec![Step::transfer(
            broker,
            subscriber,
            self.jms_envelope_bytes + payload_bytes,
        )]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes() -> (NodeId, NodeId) {
        (NodeId(0), NodeId(1))
    }

    #[test]
    fn http_request_is_handshake_plus_transfer() {
        let p = ProtocolParams::default();
        let (client, server) = nodes();
        let steps = p.http_request(client, server, 100);
        assert_eq!(steps.len(), 2);
        assert!(matches!(
            steps[0],
            Step::Exchange {
                req_bytes: 64,
                resp_bytes: 64,
                ..
            }
        ));
        assert!(matches!(steps[1], Step::Transfer { bytes: 500, .. }));
    }

    #[test]
    fn colocated_rmi_is_free() {
        let p = ProtocolParams::default();
        let mut rng = SimRng::seed_from_u64(1);
        let (a, _) = nodes();
        assert!(p.rmi_request(&mut rng, a, a, 1_000).is_empty());
        assert!(p.rmi_response(a, a, 1_000).is_empty());
    }

    #[test]
    fn rmi_extra_round_trip_frequency_matches_probability() {
        let p = ProtocolParams {
            rmi_extra_round_trip_prob: 0.65,
            ..Default::default()
        };
        let mut rng = SimRng::seed_from_u64(42);
        let (a, b) = nodes();
        let n = 10_000;
        let extra = (0..n)
            .filter(|_| p.rmi_request(&mut rng, a, b, 0).len() == 2)
            .count();
        let freq = extra as f64 / n as f64;
        assert!((freq - 0.65).abs() < 0.02, "observed {freq}");
    }

    #[test]
    fn jdbc_n_plus_one_round_trips() {
        let p = ProtocolParams::default();
        let (a, db) = nodes();
        let rows = 10;
        let steps = p.jdbc(a, db, rows as u32 + 1, rows);
        assert_eq!(steps.len(), 11);
        let total_resp: u64 = steps
            .iter()
            .map(|s| match s {
                Step::Exchange { resp_bytes, .. } => *resp_bytes,
                _ => 0,
            })
            .sum();
        assert_eq!(
            total_resp,
            p.jdbc_response_overhead_bytes + rows * p.jdbc_row_bytes
        );
    }

    #[test]
    fn jdbc_colocated_is_free() {
        let p = ProtocolParams::default();
        let (a, _) = nodes();
        assert!(p.jdbc(a, a, 5, 100).is_empty());
    }

    #[test]
    fn jms_local_broker_is_free_remote_costs_one_transfer() {
        let p = ProtocolParams::default();
        let (a, b) = nodes();
        assert!(p.jms_publish(a, a, 500).is_empty());
        let steps = p.jms_delivery(a, b, 500);
        assert_eq!(steps.len(), 1);
        assert!(matches!(steps[0], Step::Transfer { bytes, .. } if bytes == 800));
    }

    #[test]
    fn stack_presets_differ_in_rmi_chattiness() {
        assert!(
            ProtocolParams::petstore_stack().rmi_extra_round_trip_prob
                > ProtocolParams::rubis_stack().rmi_extra_round_trip_prob
        );
    }
}
