//! Request execution: compiled step programs and their event-driven executor.
//!
//! Higher layers compile a page request (or an update propagation) into a
//! small program of [`Step`]s. The executor drives the program through the
//! network's CPU and link queues, scheduling one event per step boundary so
//! that resource admissions happen at the correct simulated times.
//!
//! * [`Step::Parallel`] runs branches concurrently and **blocks** until all
//!   complete — the synchronous (zero-staleness) update push of the paper's
//!   §4.3 is a `Parallel` over per-edge-server pushes.
//! * [`Step::Fork`] detaches a branch — the asynchronous JMS propagation of
//!   §4.5. The fork consumes CPU and link resources but does not delay the
//!   response; its completion is reported to the world for staleness
//!   accounting.
//!
//! ## Execution model
//!
//! In-flight requests live in a [`Jobs`] slab owned by the world: each job
//! holds its [`Program`] (owned or `Arc`-shared), a step cursor and the
//! in-progress message phase. Step boundaries are driven by the plain-enum
//! [`NetEvent::Advance`] event — scheduled through the typed event fast path
//! of `mutsvc-desim`, so steady-state execution performs **zero** per-event
//! `Box<dyn FnOnce>` allocations and no per-continuation captures of step
//! vectors or routes.

use std::sync::Arc;

use mutsvc_desim::sim::{Context, EventFn, Fire};
use mutsvc_desim::time::{SimDuration, SimTime};
use mutsvc_desim::trace::{SpanCtx, SpanKind, Tracer};

use crate::network::Network;
use crate::topology::NodeId;

/// One primitive operation in a request program.
#[derive(Debug, Clone, PartialEq)]
pub enum Step {
    /// Consume CPU time on a node.
    Cpu {
        /// Hosting node.
        node: NodeId,
        /// Service demand (at relative speed 1.0).
        demand: SimDuration,
    },
    /// One-way message.
    Transfer {
        /// Source node.
        from: NodeId,
        /// Destination node.
        to: NodeId,
        /// Payload size.
        bytes: u64,
    },
    /// A request/response round trip (`a → b → a`).
    Exchange {
        /// Initiator.
        a: NodeId,
        /// Responder.
        b: NodeId,
        /// Bytes sent `a → b`.
        req_bytes: u64,
        /// Bytes sent `b → a`.
        resp_bytes: u64,
    },
    /// Pure waiting (e.g. user think time inside a composite job).
    Delay(SimDuration),
    /// Run branches concurrently; continue when **all** have completed.
    Parallel(Vec<Vec<Step>>),
    /// Detach a branch: it consumes resources but the parent continues
    /// immediately. `tag` is reported to [`JobWorld::fork_completed`].
    Fork {
        /// The detached program.
        steps: Vec<Step>,
        /// Correlation tag for staleness accounting.
        tag: Option<u64>,
    },
}

impl Step {
    /// CPU work helper.
    pub fn cpu(node: NodeId, demand: SimDuration) -> Step {
        Step::Cpu { node, demand }
    }

    /// One-way transfer helper.
    pub fn transfer(from: NodeId, to: NodeId, bytes: u64) -> Step {
        Step::Transfer { from, to, bytes }
    }

    /// Round-trip helper.
    pub fn exchange(a: NodeId, b: NodeId, req_bytes: u64, resp_bytes: u64) -> Step {
        Step::Exchange {
            a,
            b,
            req_bytes,
            resp_bytes,
        }
    }

    /// Total CPU demand contained in this step (recursing into branches).
    pub fn total_cpu(&self) -> SimDuration {
        match self {
            Step::Cpu { demand, .. } => *demand,
            Step::Parallel(branches) => branches.iter().flatten().map(Step::total_cpu).sum(),
            Step::Fork { steps, .. } => steps.iter().map(Step::total_cpu).sum(),
            _ => SimDuration::ZERO,
        }
    }

    /// Counts round trips crossing `is_wan` node pairs on the *response path*
    /// (i.e. excluding forked branches). `Transfer` counts as half a trip.
    pub fn wan_round_trips(&self, is_wan: &dyn Fn(NodeId, NodeId) -> bool) -> f64 {
        match self {
            Step::Transfer { from, to, .. } if is_wan(*from, *to) => 0.5,
            Step::Exchange { a, b, .. } if is_wan(*a, *b) => 1.0,
            Step::Parallel(branches) => branches
                .iter()
                .map(|b| b.iter().map(|s| s.wan_round_trips(is_wan)).sum::<f64>())
                .fold(0.0, f64::max),
            Step::Fork { .. } => 0.0,
            _ => 0.0,
        }
    }
}

/// Total response-path WAN round trips of a step program.
pub fn wan_round_trips(steps: &[Step], is_wan: &dyn Fn(NodeId, NodeId) -> bool) -> f64 {
    steps.iter().map(|s| s.wan_round_trips(is_wan)).sum()
}

/// Identifies an in-flight job in the world's [`Jobs`] slab.
pub type JobId = u32;

/// The executor's pooled event payload: a plain enum, scheduled through the
/// typed event fast path of `mutsvc-desim` with no per-event allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetEvent {
    /// Resume the job at its cursor / message phase.
    Advance {
        /// The job to resume.
        job: JobId,
    },
}

impl<W: JobWorld<Event = NetEvent>> Fire<W> for NetEvent {
    fn fire(self, world: &mut W, ctx: &mut Context<'_, W, Self>) {
        match self {
            NetEvent::Advance { job } => advance_job(world, ctx, job),
        }
    }
}

/// A step program: owned for one-shot binds, `Arc`-shared for cached plans
/// replayed by many requests without cloning the step vector.
#[derive(Debug, Clone)]
pub enum Program {
    /// A program owned by this job (cold binds, update pushes).
    Owned(Vec<Step>),
    /// A memoized program shared across requests; jobs only hold a cursor.
    Shared(Arc<[Step]>),
}

/// What to do when a job's program (excluding forked branches) completes.
enum JobDone<W: JobWorld> {
    /// Fire a typed world event (the allocation-free driver path).
    Event(W::Event),
    /// Invoke a boxed continuation (compat path for one-shot callers).
    Boxed(EventFn<W, W::Event>),
    /// This job is a `Parallel` branch of `parent`.
    Join { parent: JobId },
    /// This job is a detached `Fork` branch.
    Fork { tag: Option<u64> },
}

/// Progress of the message (if any) the job is currently transmitting.
#[derive(Debug, Clone, Copy)]
enum Phase {
    /// Executing steps at the cursor.
    Steps,
    /// Mid-message: `hop` links of the `from → to` route already crossed.
    /// `respond` carries the pending return leg of an [`Step::Exchange`].
    Send {
        from: NodeId,
        to: NodeId,
        bytes: u64,
        hop: usize,
        respond: Option<(NodeId, NodeId, u64)>,
    },
}

struct Job<W: JobWorld> {
    program: Program,
    cursor: usize,
    phase: Phase,
    done: JobDone<W>,
    /// Outstanding `Parallel` branches (only while blocked on a join).
    join_remaining: usize,
    /// Open trace span for this job, when the spawning request is traced.
    /// `None` for untraced requests: every instrumentation site below is
    /// then a single predictable branch.
    trace: Option<SpanCtx>,
    /// The job hit an injected fault (downed link, lost message, crashed
    /// node). Set together with a timeout-delayed resume; on resume the job
    /// completes immediately, skipping its remaining steps, and the failure
    /// propagates to join parents and the completion hooks.
    failed: bool,
}

/// Slab of in-flight jobs. Slots are recycled through a free list, so a
/// steady-state workload reuses the same allocations run-long.
pub struct Jobs<W: JobWorld> {
    slots: Vec<Option<Job<W>>>,
    free: Vec<JobId>,
}

impl<W: JobWorld> Jobs<W> {
    /// Creates an empty slab.
    pub fn new() -> Self {
        Jobs {
            slots: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Number of jobs currently in flight.
    pub fn in_flight(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    fn alloc(&mut self, job: Job<W>) -> JobId {
        if let Some(id) = self.free.pop() {
            self.slots[id as usize] = Some(job);
            id
        } else {
            self.slots.push(Some(job));
            (self.slots.len() - 1) as JobId
        }
    }

    /// Moves the job out of its slot while the executor works on it; the
    /// slot is restored with `put` or recycled with `release`.
    fn take(&mut self, id: JobId) -> Job<W> {
        self.slots[id as usize].take().expect("job not in flight")
    }

    fn put(&mut self, id: JobId, job: Job<W>) {
        self.slots[id as usize] = Some(job);
    }

    fn get_mut(&mut self, id: JobId) -> &mut Job<W> {
        self.slots[id as usize].as_mut().expect("job not in flight")
    }

    fn release(&mut self, id: JobId) {
        self.slots[id as usize] = None;
        self.free.push(id);
    }
}

impl<W: JobWorld> Default for Jobs<W> {
    fn default() -> Self {
        Jobs::new()
    }
}

/// The world-side contract required by the executor.
pub trait JobWorld: Sized + 'static {
    /// The simulation's event payload type. Worlds that only run jobs use
    /// [`NetEvent`] directly; richer drivers wrap it in their own enum and
    /// dispatch `Advance` back to [`advance_job`].
    type Event: Fire<Self> + From<NetEvent> + 'static;

    /// The live network carrying this world's traffic.
    fn network_mut(&mut self) -> &mut Network;

    /// The slab of in-flight jobs.
    fn jobs_mut(&mut self) -> &mut Jobs<Self>;

    /// Called when a tagged [`Step::Fork`] branch finishes (e.g. an
    /// asynchronous update push has been applied everywhere).
    fn fork_completed(&mut self, _tag: u64, _at: SimTime) {}

    /// Called when a tagged [`Step::Fork`] branch hits an injected fault and
    /// never delivers — a dropped asynchronous push. The world should leave
    /// the target replica stale (and detectably so), not silently fresh.
    fn fork_failed(&mut self, _tag: u64, _at: SimTime) {}

    /// Called just before a failed job's completion action fires (the
    /// [`JobDone::Event`]/boxed paths only; forks report through
    /// [`Self::fork_failed`]). Drivers use this to mark the in-flight
    /// request as failed for their retry/availability accounting.
    fn job_failed(&mut self) {}

    /// How long a requester waits before treating a lost message or a call
    /// to a crashed node as failed (the RMI timeout of the fault model).
    fn fault_timeout(&self) -> SimDuration {
        SimDuration::from_secs(5)
    }

    /// The world's tracer, when it has one. The executor only consults this
    /// for jobs spawned with a span context, so worlds without tracing pay
    /// nothing beyond the `Option` check on `Job::trace`.
    fn tracer_mut(&mut self) -> Option<&mut Tracer> {
        None
    }

    /// Links whose one-way base latency meets this threshold are classified
    /// as wide-area legs in emitted hop spans. The default is the shared
    /// [`WAN_LATENCY_THRESHOLD`](crate::topology::WAN_LATENCY_THRESHOLD),
    /// which cleanly splits the paper's topology (sub-millisecond LAN vs
    /// 100 ms WAN) and matches the conservative-parallel region split.
    fn trace_wan_threshold(&self) -> SimDuration {
        crate::topology::WAN_LATENCY_THRESHOLD
    }
}

/// Starts executing `steps` now; `done` fires when the program (excluding
/// forked branches) completes.
pub fn spawn_job<W: JobWorld>(
    world: &mut W,
    ctx: &mut Context<'_, W, W::Event>,
    steps: Vec<Step>,
    done: EventFn<W, W::Event>,
) {
    spawn(
        world,
        ctx,
        Program::Owned(steps),
        JobDone::Boxed(done),
        None,
    );
}

/// Starts executing `program` now; the typed `done` event fires (synchronously,
/// as if scheduled at the completion instant) when the program completes.
/// This is the allocation-free path: a [`Program::Shared`] plan plus an enum
/// completion event touch the heap zero times per request in steady state.
pub fn spawn_program<W: JobWorld>(
    world: &mut W,
    ctx: &mut Context<'_, W, W::Event>,
    program: Program,
    done: W::Event,
) {
    spawn(world, ctx, program, JobDone::Event(done), None);
}

/// Like [`spawn_program`], but attributes the job's resource usage to an
/// open trace span: a `Program` span is opened under `parent` and every CPU
/// slice, link hop and delay the job performs is recorded as a child leaf.
pub fn spawn_program_traced<W: JobWorld>(
    world: &mut W,
    ctx: &mut Context<'_, W, W::Event>,
    program: Program,
    done: W::Event,
    parent: Option<SpanCtx>,
) {
    spawn(world, ctx, program, JobDone::Event(done), parent);
}

fn spawn<W: JobWorld>(
    world: &mut W,
    ctx: &mut Context<'_, W, W::Event>,
    program: Program,
    done: JobDone<W>,
    parent: Option<SpanCtx>,
) {
    // Detached forks are never traced: they can outlive the request (whose
    // trace buffer is recycled at completion) and are off the response path
    // by construction.
    let kind = match done {
        JobDone::Join { .. } => Some(SpanKind::Branch),
        JobDone::Fork { .. } => None,
        _ => Some(SpanKind::Program),
    };
    let trace = match (parent, kind) {
        (Some(p), Some(kind)) => {
            let now = ctx.now();
            world.tracer_mut().map(|t| t.open_span(p, now, kind))
        }
        _ => None,
    };
    let id = world.jobs_mut().alloc(Job {
        program,
        cursor: 0,
        phase: Phase::Steps,
        done,
        join_remaining: 0,
        trace,
        failed: false,
    });
    advance_job(world, ctx, id);
}

/// What the cursor found, with branch bodies moved (owned programs) or cloned
/// (shared programs — cached plans never contain branches, so the clone is a
/// cold path) out of the program so the job can be mutated freely.
enum Fetched {
    End,
    Cpu(NodeId, SimDuration),
    Transfer(NodeId, NodeId, u64),
    Exchange(NodeId, NodeId, u64, u64),
    Delay(SimDuration),
    Parallel(Vec<Vec<Step>>),
    Fork(Vec<Step>, Option<u64>),
}

fn fetch(program: &mut Program, idx: usize) -> Fetched {
    match program {
        Program::Owned(steps) => match steps.get_mut(idx) {
            None => Fetched::End,
            Some(slot) => match slot {
                Step::Cpu { node, demand } => Fetched::Cpu(*node, *demand),
                Step::Transfer { from, to, bytes } => Fetched::Transfer(*from, *to, *bytes),
                Step::Exchange {
                    a,
                    b,
                    req_bytes,
                    resp_bytes,
                } => Fetched::Exchange(*a, *b, *req_bytes, *resp_bytes),
                Step::Delay(d) => Fetched::Delay(*d),
                Step::Parallel(_) | Step::Fork { .. } => {
                    // Move the branch bodies out; the cursor has already
                    // passed this slot, so the placeholder is never executed.
                    match std::mem::replace(slot, Step::Delay(SimDuration::ZERO)) {
                        Step::Parallel(branches) => Fetched::Parallel(branches),
                        Step::Fork { steps, tag } => Fetched::Fork(steps, tag),
                        _ => unreachable!(),
                    }
                }
            },
        },
        Program::Shared(steps) => match steps.get(idx) {
            None => Fetched::End,
            Some(step) => match step {
                Step::Cpu { node, demand } => Fetched::Cpu(*node, *demand),
                Step::Transfer { from, to, bytes } => Fetched::Transfer(*from, *to, *bytes),
                Step::Exchange {
                    a,
                    b,
                    req_bytes,
                    resp_bytes,
                } => Fetched::Exchange(*a, *b, *req_bytes, *resp_bytes),
                Step::Delay(d) => Fetched::Delay(*d),
                Step::Parallel(branches) => Fetched::Parallel(branches.clone()),
                Step::Fork { steps, tag } => Fetched::Fork(steps.clone(), *tag),
            },
        },
    }
}

/// Resumes job `id`: crosses pending message hops, then executes steps from
/// the cursor until the job blocks on a resource, completes, or joins.
pub fn advance_job<W: JobWorld>(world: &mut W, ctx: &mut Context<'_, W, W::Event>, id: JobId) {
    let mut job = world.jobs_mut().take(id);
    // A failed job resumes exactly once — from the timeout scheduled at the
    // fault site (or a join whose failed branch already absorbed it) — and
    // completes immediately, skipping its remaining steps.
    if job.failed {
        complete(world, ctx, id, job);
        return;
    }
    loop {
        if let Phase::Send {
            from,
            to,
            bytes,
            hop,
            respond,
        } = job.phase
        {
            let route_len = if from == to {
                0
            } else {
                world.network_mut().route(from, to).len()
            };
            if hop < route_len {
                // Admit the next link at the time the message reaches it, so
                // link FIFO order matches causality across long-latency paths.
                let link = world.network_mut().route(from, to)[hop];
                {
                    // Fault checks, all single predictable branches when no
                    // faults are active. The destination process is checked
                    // once per leg; links are checked hop by hop (a message
                    // already past a failing hop is store-and-forwarded on).
                    let net = world.network_mut();
                    let dest_down = hop == 0 && !net.node_is_up(to);
                    let link_down = !dest_down && !net.link_is_up(link);
                    let lost = !dest_down && !link_down && net.message_dropped(link);
                    if dest_down || link_down || lost {
                        let (l, n) = if dest_down {
                            (u32::MAX, to.index() as u32)
                        } else {
                            (link.index() as u32, u32::MAX)
                        };
                        fail_job(world, ctx, id, job, l, n);
                        return;
                    }
                }
                let arrival = world.network_mut().link_send(ctx.now(), link, bytes);
                if let Some(tc) = job.trace {
                    let now = ctx.now();
                    let threshold = world.trace_wan_threshold();
                    let net = world.network_mut();
                    let prop = net.link_latency(link);
                    let spec = net.topology().link(link);
                    let ser = spec.serialization_time(bytes);
                    let wan = spec.latency >= threshold;
                    if let Some(t) = world.tracer_mut() {
                        t.leaf(
                            tc,
                            now,
                            arrival,
                            SpanKind::Hop {
                                link: link.index() as u32,
                                bytes,
                                propagation_us: prop.as_micros(),
                                serialization_us: ser.as_micros(),
                                wan,
                            },
                        );
                    }
                }
                job.phase = Phase::Send {
                    from,
                    to,
                    bytes,
                    hop: hop + 1,
                    respond,
                };
                world.jobs_mut().put(id, job);
                ctx.schedule_event_at(arrival, NetEvent::Advance { job: id }.into());
                return;
            }
            // Leg complete. The return leg of an exchange starts only when
            // the request arrives, so its admissions happen at true times.
            job.phase = match respond {
                Some((rf, rt, rb)) => Phase::Send {
                    from: rf,
                    to: rt,
                    bytes: rb,
                    hop: 0,
                    respond: None,
                },
                None => Phase::Steps,
            };
            continue;
        }

        let idx = job.cursor;
        job.cursor += 1;
        match fetch(&mut job.program, idx) {
            Fetched::End => {
                complete(world, ctx, id, job);
                return;
            }
            Fetched::Cpu(node, demand) => {
                if !world.network_mut().node_is_up(node) {
                    fail_job(world, ctx, id, job, u32::MAX, node.index() as u32);
                    return;
                }
                let completion = world.network_mut().cpu(ctx.now(), node, demand);
                if let Some(tc) = job.trace {
                    let now = ctx.now();
                    let speed = world.network_mut().topology().node(node).speed;
                    let service = demand.mul_f64(1.0 / speed);
                    if let Some(t) = world.tracer_mut() {
                        t.leaf(
                            tc,
                            now,
                            completion,
                            SpanKind::Cpu {
                                node: node.index() as u32,
                                service_us: service.as_micros(),
                            },
                        );
                    }
                }
                world.jobs_mut().put(id, job);
                ctx.schedule_event_at(completion, NetEvent::Advance { job: id }.into());
                return;
            }
            Fetched::Transfer(from, to, bytes) => {
                job.phase = Phase::Send {
                    from,
                    to,
                    bytes,
                    hop: 0,
                    respond: None,
                };
            }
            Fetched::Exchange(a, b, req_bytes, resp_bytes) => {
                job.phase = Phase::Send {
                    from: a,
                    to: b,
                    bytes: req_bytes,
                    hop: 0,
                    respond: Some((b, a, resp_bytes)),
                };
            }
            Fetched::Delay(d) => {
                if let Some(tc) = job.trace {
                    let now = ctx.now();
                    if let Some(t) = world.tracer_mut() {
                        t.leaf(tc, now, now + d, SpanKind::Delay);
                    }
                }
                world.jobs_mut().put(id, job);
                ctx.schedule_event_in(d, NetEvent::Advance { job: id }.into());
                return;
            }
            Fetched::Parallel(branches) => {
                let branches: Vec<Vec<Step>> =
                    branches.into_iter().filter(|b| !b.is_empty()).collect();
                if branches.is_empty() {
                    continue;
                }
                // Park the parent *before* spawning: a branch may complete
                // synchronously (and the last one resumes the parent from
                // inside its own advance), so the slot must be live first.
                job.join_remaining = branches.len();
                let parent_trace = job.trace;
                world.jobs_mut().put(id, job);
                for branch in branches {
                    spawn(
                        world,
                        ctx,
                        Program::Owned(branch),
                        JobDone::Join { parent: id },
                        parent_trace,
                    );
                }
                // The parent may already have resumed (or completed) via the
                // join path — do not touch it here.
                return;
            }
            Fetched::Fork(branch, tag) => {
                // Detached: consumes resources but the parent continues
                // immediately after spawning. Forks are not traced (they can
                // outlive the request), but leave an instant marker behind.
                if let Some(tc) = job.trace {
                    let now = ctx.now();
                    if let Some(t) = world.tracer_mut() {
                        t.note(tc, now, "fork", tag.unwrap_or(0));
                    }
                }
                spawn(
                    world,
                    ctx,
                    Program::Owned(branch),
                    JobDone::Fork { tag },
                    None,
                );
            }
        }
    }
}

/// Marks the job failed and parks it for [`JobWorld::fault_timeout`]: the
/// requester notices a lost message or crashed callee only when its RMI
/// timeout fires. A `Fault` leaf span covering the wait is emitted when
/// traced (`u32::MAX` marks whichever of link/node is not the cause).
fn fail_job<W: JobWorld>(
    world: &mut W,
    ctx: &mut Context<'_, W, W::Event>,
    id: JobId,
    mut job: Job<W>,
    link: u32,
    node: u32,
) {
    let timeout = world.fault_timeout();
    if let Some(tc) = job.trace {
        let now = ctx.now();
        if let Some(t) = world.tracer_mut() {
            t.leaf(tc, now, now + timeout, SpanKind::Fault { link, node });
        }
    }
    job.failed = true;
    job.phase = Phase::Steps;
    world.jobs_mut().put(id, job);
    ctx.schedule_event_in(timeout, NetEvent::Advance { job: id }.into());
}

/// Recycles the job's slot and fires its completion action.
fn complete<W: JobWorld>(
    world: &mut W,
    ctx: &mut Context<'_, W, W::Event>,
    id: JobId,
    job: Job<W>,
) {
    if let Some(tc) = job.trace {
        let now = ctx.now();
        if let Some(t) = world.tracer_mut() {
            t.close_span(tc, now);
        }
    }
    world.jobs_mut().release(id);
    match job.done {
        JobDone::Event(e) => {
            if job.failed {
                world.job_failed();
            }
            e.fire(world, ctx);
        }
        JobDone::Boxed(f) => {
            if job.failed {
                world.job_failed();
            }
            f(world, ctx);
        }
        JobDone::Fork { tag } => {
            if let Some(tag) = tag {
                let now = ctx.now();
                if job.failed {
                    world.fork_failed(tag, now);
                } else {
                    world.fork_completed(tag, now);
                }
            }
        }
        JobDone::Join { parent } => {
            // A failed branch fails the whole parallel step; the parent still
            // waits for its sibling branches, then completes as failed (its
            // own top-of-advance check) without running further steps.
            let p = world.jobs_mut().get_mut(parent);
            if job.failed {
                p.failed = true;
            }
            p.join_remaining -= 1;
            if p.join_remaining == 0 {
                advance_job(world, ctx, parent);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyBuilder;
    use mutsvc_desim::Simulation;

    struct World {
        net: Network,
        jobs: Jobs<World>,
        finished: Vec<(SimTime, &'static str)>,
        forks: Vec<(u64, SimTime)>,
        failed_forks: Vec<(u64, SimTime)>,
        failures: usize,
    }

    impl JobWorld for World {
        type Event = NetEvent;
        fn network_mut(&mut self) -> &mut Network {
            &mut self.net
        }
        fn jobs_mut(&mut self) -> &mut Jobs<World> {
            &mut self.jobs
        }
        fn fork_completed(&mut self, tag: u64, at: SimTime) {
            self.forks.push((tag, at));
        }
        fn fork_failed(&mut self, tag: u64, at: SimTime) {
            self.failed_forks.push((tag, at));
        }
        fn job_failed(&mut self) {
            self.failures += 1;
        }
        fn fault_timeout(&self) -> SimDuration {
            SimDuration::from_millis(500)
        }
    }

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }
    fn at(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    fn world() -> (World, NodeId, NodeId, NodeId) {
        let mut b = TopologyBuilder::new();
        let main = b.node("main", 2);
        let router = b.node("router", 8);
        let edge = b.node("edge", 2);
        b.duplex_link(main, router, ms(10), 1e9);
        b.duplex_link(router, edge, ms(90), 1e9);
        let net = Network::new(b.finalize());
        (
            World {
                net,
                jobs: Jobs::new(),
                finished: Vec::new(),
                forks: Vec::new(),
                failed_forks: Vec::new(),
                failures: 0,
            },
            main,
            router,
            edge,
        )
    }

    fn run(world: World, steps: Vec<Step>) -> World {
        let mut sim: Simulation<World, NetEvent> = Simulation::with_events(world);
        sim.schedule_at(SimTime::ZERO, move |w, c| {
            spawn_job(
                w,
                c,
                steps,
                Box::new(|w: &mut World, c| {
                    let now = c.now();
                    w.finished.push((now, "job"));
                }),
            );
        });
        sim.run();
        sim.into_world()
    }

    #[test]
    fn sequential_steps_accumulate() {
        let (w, main, _, edge) = world();
        let steps = vec![
            Step::cpu(edge, ms(5)),
            Step::exchange(edge, main, 0, 0), // 200ms RTT
            Step::cpu(edge, ms(5)),
        ];
        let w = run(w, steps);
        assert_eq!(w.finished, vec![(at(210), "job")]);
    }

    #[test]
    fn empty_program_completes_immediately() {
        let (w, ..) = world();
        let w = run(w, Vec::new());
        assert_eq!(w.finished, vec![(at(0), "job")]);
    }

    #[test]
    fn delay_is_pure_waiting() {
        let (w, main, ..) = world();
        let w = run(w, vec![Step::Delay(ms(42)), Step::cpu(main, ms(8))]);
        assert_eq!(w.finished, vec![(at(50), "job")]);
        assert_eq!(w.net.cpu_jobs(main), 1);
    }

    #[test]
    fn parallel_blocks_on_slowest_branch() {
        let (w, main, _, edge) = world();
        let steps = vec![Step::Parallel(vec![
            vec![Step::cpu(main, ms(5))],
            vec![Step::exchange(main, edge, 0, 0)], // 200ms
            vec![Step::Delay(ms(50))],
        ])];
        let w = run(w, steps);
        assert_eq!(w.finished, vec![(at(200), "job")]);
    }

    #[test]
    fn parallel_with_empty_branches_is_noop() {
        let (w, main, ..) = world();
        let steps = vec![Step::Parallel(vec![vec![], vec![]]), Step::cpu(main, ms(3))];
        let w = run(w, steps);
        assert_eq!(w.finished, vec![(at(3), "job")]);
    }

    #[test]
    fn fork_does_not_delay_parent_but_reports() {
        let (w, main, _, edge) = world();
        let steps = vec![
            Step::Fork {
                steps: vec![Step::exchange(main, edge, 0, 0)],
                tag: Some(7),
            },
            Step::cpu(main, ms(5)),
        ];
        let w = run(w, steps);
        assert_eq!(w.finished, vec![(at(5), "job")]);
        assert_eq!(w.forks, vec![(7, at(200))]);
    }

    #[test]
    fn untagged_fork_completes_silently() {
        let (w, from, _, edge) = world();
        let steps = vec![
            Step::Fork {
                steps: vec![Step::transfer(from, edge, 100)],
                tag: None,
            },
            Step::cpu(from, ms(1)),
        ];
        let w = run(w, steps);
        assert!(w.forks.is_empty());
        assert_eq!(w.finished.len(), 1);
    }

    #[test]
    fn nested_parallel_joins_correctly() {
        let (w, _main, _, edge) = world();
        let steps = vec![
            Step::Parallel(vec![
                vec![Step::Parallel(vec![
                    vec![Step::Delay(ms(10))],
                    vec![Step::Delay(ms(30))],
                ])],
                vec![Step::Delay(ms(20))],
            ]),
            Step::cpu(edge, ms(1)),
        ];
        let w = run(w, steps);
        assert_eq!(w.finished, vec![(at(31), "job")]);
    }

    #[test]
    fn exchange_admits_return_leg_on_arrival() {
        let (w, main, _, edge) = world();
        // Two concurrent exchanges: both complete at 200ms (links are fast,
        // no serialization contention at 1 Gbit/s with zero payload).
        let steps = vec![Step::Parallel(vec![
            vec![Step::exchange(edge, main, 0, 0)],
            vec![Step::exchange(edge, main, 0, 0)],
        ])];
        let w = run(w, steps);
        assert_eq!(w.finished, vec![(at(200), "job")]);
    }

    #[test]
    fn total_cpu_recurses() {
        let (_, main, _, edge) = world();
        let step = Step::Parallel(vec![
            vec![Step::cpu(main, ms(5)), Step::cpu(edge, ms(5))],
            vec![Step::Fork {
                steps: vec![Step::cpu(main, ms(7))],
                tag: None,
            }],
        ]);
        assert_eq!(step.total_cpu(), ms(17));
    }

    #[test]
    fn wan_round_trip_counting() {
        let (w, main, _, edge) = world();
        let is_wan = move |a: NodeId, b: NodeId| (a == main) != (b == main);
        let steps = vec![
            Step::exchange(edge, main, 0, 0),
            Step::exchange(edge, edge, 0, 0),
            Step::Fork {
                steps: vec![Step::exchange(main, edge, 0, 0)],
                tag: None,
            },
        ];
        assert_eq!(wan_round_trips(&steps, &is_wan), 1.0);
        drop(w);
    }

    #[test]
    fn many_jobs_deterministic() {
        fn once() -> Vec<(SimTime, &'static str)> {
            let (w, main, _, edge) = world();
            let mut sim: Simulation<World, NetEvent> = Simulation::with_events(w);
            for i in 0..50u64 {
                let steps = vec![
                    Step::cpu(edge, ms(3)),
                    Step::exchange(edge, main, 500, 2_000),
                    Step::cpu(edge, ms(2)),
                ];
                sim.schedule_at(SimTime::from_millis(i * 7), move |w, c| {
                    spawn_job(
                        w,
                        c,
                        steps,
                        Box::new(|w: &mut World, c| {
                            let now = c.now();
                            w.finished.push((now, "j"));
                        }),
                    );
                });
            }
            sim.run();
            sim.into_world().finished
        }
        assert_eq!(once(), once());
    }

    /// A downed hop fails the job after the RMI timeout (500ms in this test
    /// world); the message store-and-forwards up to the failing hop first.
    #[test]
    fn downed_link_fails_the_job_after_timeout() {
        let (mut w, main, router, edge) = world();
        let bad = w.net.route(router, main)[0];
        w.net.set_link_up(bad, false);
        let steps = vec![Step::cpu(edge, ms(5)), Step::exchange(edge, main, 0, 0)];
        let w = run(w, steps);
        // cpu done at 5ms, edge→router crossed at 95ms, router→main down:
        // fail at 95ms, complete after the 500ms timeout.
        assert_eq!(w.finished, vec![(at(595), "job")]);
        assert_eq!(w.failures, 1);
    }

    #[test]
    fn restored_link_carries_jobs_again() {
        let (mut w, main, router, edge) = world();
        let bad = w.net.route(router, main)[0];
        w.net.set_link_up(bad, false);
        w.net.set_link_up(bad, true);
        let w = run(w, vec![Step::exchange(edge, main, 0, 0)]);
        assert_eq!(w.finished, vec![(at(200), "job")]);
        assert_eq!(w.failures, 0);
    }

    /// A crashed destination process fails the call at leg start (the
    /// requester's timeout covers the whole unanswered RMI), but the host
    /// still forwards transit traffic: crashing the router does not cut the
    /// edge↔main path.
    #[test]
    fn crashed_destination_fails_but_transit_survives() {
        let (mut w, main, _, edge) = world();
        w.net.set_node_up(main, false);
        let w = run(w, vec![Step::exchange(edge, main, 0, 0)]);
        assert_eq!(w.finished, vec![(at(500), "job")]);
        assert_eq!(w.failures, 1);

        let (mut w, main, router, edge) = world();
        w.net.set_node_up(router, false);
        let w = run(w, vec![Step::exchange(edge, main, 0, 0)]);
        assert_eq!(w.finished, vec![(at(200), "job")]);
        assert_eq!(w.failures, 0);
    }

    #[test]
    fn cpu_on_crashed_node_fails() {
        let (mut w, main, ..) = world();
        w.net.set_node_up(main, false);
        let w = run(w, vec![Step::cpu(main, ms(5))]);
        assert_eq!(w.finished, vec![(at(500), "job")]);
        assert_eq!(w.failures, 1);
    }

    /// A failed branch fails the whole parallel step: the parent waits for
    /// its siblings, then completes as failed without running later steps.
    #[test]
    fn failed_branch_fails_the_parent_join() {
        let (mut w, main, _, edge) = world();
        w.net.set_node_up(main, false);
        let steps = vec![
            Step::Parallel(vec![
                vec![Step::exchange(edge, main, 0, 0)], // fails at 0, done 500
                vec![Step::Delay(ms(50))],
            ]),
            Step::cpu(edge, ms(30)), // skipped: the parent is failed
        ];
        let w = run(w, steps);
        assert_eq!(w.finished, vec![(at(500), "job")]);
        assert_eq!(w.failures, 1);
        assert_eq!(w.net.cpu_jobs(edge), 0);
    }

    /// A failed detached fork reports through `fork_failed`, not
    /// `fork_completed` — the dropped async push never applies. The parent
    /// is unaffected.
    #[test]
    fn failed_fork_reports_fork_failed() {
        let (mut w, main, _, edge) = world();
        w.net.set_node_up(main, false);
        let steps = vec![
            Step::Fork {
                steps: vec![Step::transfer(edge, main, 100)],
                tag: Some(9),
            },
            Step::cpu(edge, ms(1)),
        ];
        let w = run(w, steps);
        assert_eq!(w.finished, vec![(at(1), "job")]);
        assert_eq!(w.failures, 0);
        assert!(w.forks.is_empty());
        assert_eq!(w.failed_forks, vec![(9, at(500))]);
    }

    /// Message loss is checked per send attempt with a deterministic
    /// counter hash: probability 1 drops everything, closing the window
    /// restores delivery without residual state.
    #[test]
    fn lossy_link_drops_then_heals() {
        let (mut w, main, _, edge) = world();
        let first = w.net.route(edge, main)[0];
        w.net.set_link_loss(first, 1.0);
        let w = run(w, vec![Step::exchange(edge, main, 0, 0)]);
        assert_eq!(w.finished, vec![(at(500), "job")]);
        assert_eq!(w.failures, 1);

        let (mut w, main, _, edge) = world();
        let first = w.net.route(edge, main)[0];
        w.net.set_link_loss(first, 1.0);
        w.net.set_link_loss(first, 0.0);
        let w = run(w, vec![Step::exchange(edge, main, 0, 0)]);
        assert_eq!(w.finished, vec![(at(200), "job")]);
        assert_eq!(w.failures, 0);
    }

    #[test]
    fn shared_program_replays_without_cloning_steps() {
        let (w, main, _, edge) = world();
        let plan: Arc<[Step]> = vec![
            Step::cpu(edge, ms(5)),
            Step::exchange(edge, main, 0, 0), // 200ms RTT
            Step::cpu(edge, ms(5)),
        ]
        .into();
        let mut sim: Simulation<World, NetEvent> = Simulation::with_events(w);
        for i in 0..3u64 {
            let plan = Arc::clone(&plan);
            sim.schedule_at(SimTime::from_secs(i), move |w, c| {
                spawn_job_checked(w, c, plan);
            });
        }
        fn spawn_job_checked(
            w: &mut World,
            c: &mut mutsvc_desim::Context<'_, World, NetEvent>,
            plan: Arc<[Step]>,
        ) {
            spawn(
                w,
                c,
                Program::Shared(plan),
                JobDone::Boxed(Box::new(|w: &mut World, c| {
                    let now = c.now();
                    w.finished.push((now, "cached"));
                })),
                None,
            );
        }
        sim.run();
        let w = sim.into_world();
        assert_eq!(
            w.finished,
            vec![
                (SimTime::from_millis(210), "cached"),
                (SimTime::from_millis(1210), "cached"),
                (SimTime::from_millis(2210), "cached"),
            ]
        );
        // All slots recycled once the programs complete.
        assert_eq!(w.jobs.in_flight(), 0);
    }

    #[test]
    fn traced_job_emits_span_tree() {
        use mutsvc_desim::trace::{critical_path, TraceConfig, TraceMeta};

        struct TracedWorld {
            net: Network,
            jobs: Jobs<TracedWorld>,
            tracer: Tracer,
        }
        impl JobWorld for TracedWorld {
            type Event = NetEvent;
            fn network_mut(&mut self) -> &mut Network {
                &mut self.net
            }
            fn jobs_mut(&mut self) -> &mut Jobs<TracedWorld> {
                &mut self.jobs
            }
            fn tracer_mut(&mut self) -> Option<&mut Tracer> {
                Some(&mut self.tracer)
            }
        }

        let mut b = TopologyBuilder::new();
        let main = b.node("main", 2);
        let router = b.node("router", 8);
        let edge = b.node("edge", 2);
        b.duplex_link(main, router, ms(10), 1e9);
        b.duplex_link(router, edge, ms(90), 1e9);
        let w = TracedWorld {
            net: Network::new(b.finalize()),
            jobs: Jobs::new(),
            tracer: Tracer::new(TraceConfig::full()),
        };
        let mut sim: Simulation<TracedWorld, NetEvent> = Simulation::with_events(w);
        sim.schedule_at(SimTime::ZERO, move |w: &mut TracedWorld, c| {
            let meta = TraceMeta {
                label: "Page",
                group: 0,
                client: edge.index() as u32,
                entry: edge.index() as u32,
                measured: true,
                wan_rts_logical: f64::NAN,
            };
            let now = c.now();
            let root = w.tracer.start_request(now, meta).unwrap();
            let steps = vec![
                Step::cpu(edge, ms(5)),
                Step::exchange(edge, main, 1_000, 4_000),
                Step::Parallel(vec![vec![Step::Delay(ms(3))], vec![Step::cpu(edge, ms(8))]]),
                Step::Fork {
                    steps: vec![Step::transfer(edge, main, 64)],
                    tag: None,
                },
            ];
            spawn(
                w,
                c,
                Program::Owned(steps),
                JobDone::Boxed(Box::new(move |w: &mut TracedWorld, c| {
                    let now = c.now();
                    w.tracer.finish_request(root, now);
                })),
                Some(root),
            );
        });
        sim.run();
        let w = sim.into_world();
        let traces = w.tracer.finished();
        assert_eq!(traces.len(), 1);
        let tr = &traces[0];
        // request + program + cpu + 4 hops (2 each way) + 2 branches with a
        // leaf each + fork note = 11 spans.
        let hops = tr
            .spans
            .iter()
            .filter(|s| matches!(s.kind, SpanKind::Hop { .. }))
            .count();
        assert_eq!(hops, 4, "exchange traverses 2 links each way");
        let wan_hops = tr
            .spans
            .iter()
            .filter(|s| matches!(s.kind, SpanKind::Hop { wan: true, .. }))
            .count();
        assert_eq!(wan_hops, 2, "only the 90ms leg counts as WAN");
        assert!(tr
            .spans
            .iter()
            .any(|s| matches!(s.kind, SpanKind::Note { name: "fork", .. })));
        // Fork traffic is excluded from the span tree beyond the note.
        let bd = critical_path(tr, |_| false);
        assert_eq!(bd.wan_round_trips, 1.0);
        // CPU: 5ms then the longer 8ms parallel arm; the 3ms delay arm is
        // off the critical path.
        assert_eq!(bd.service, SimDuration::from_millis(5 + 8));
        assert_eq!(bd.delay, SimDuration::ZERO);
        assert_eq!(bd.wan_propagation, SimDuration::from_millis(180));
        assert_eq!(bd.lan_propagation, SimDuration::from_millis(20));
        assert_eq!(bd.total, tr.duration);
        assert_eq!(w.tracer.in_flight(), 0);
    }

    #[test]
    fn advance_events_are_not_boxed() {
        let (w, main, _, edge) = world();
        let mut sim: Simulation<World, NetEvent> = Simulation::with_events(w);
        for i in 0..10u64 {
            let steps = vec![
                Step::cpu(edge, ms(3)),
                Step::exchange(edge, main, 500, 2_000),
                Step::cpu(edge, ms(2)),
            ];
            sim.schedule_at(SimTime::from_millis(i * 7), move |w, c| {
                spawn_job(
                    w,
                    c,
                    steps,
                    Box::new(|w: &mut World, c| {
                        let now = c.now();
                        w.finished.push((now, "j"));
                    }),
                );
            });
        }
        sim.run();
        // The 10 staggered spawns are the only boxed events; every Advance
        // at a step/hop boundary went through the enum fast path.
        assert_eq!(sim.boxed_events_scheduled(), 10);
        assert!(sim.events_fired() > 10);
        assert_eq!(sim.world().finished.len(), 10);
        assert_eq!(sim.world().jobs.in_flight(), 0);
    }
}
