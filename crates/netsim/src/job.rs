//! Request execution: compiled step programs and their event-driven executor.
//!
//! Higher layers compile a page request (or an update propagation) into a
//! small program of [`Step`]s. The executor drives the program through the
//! network's CPU and link queues, scheduling one event per step boundary so
//! that resource admissions happen at the correct simulated times.
//!
//! * [`Step::Parallel`] runs branches concurrently and **blocks** until all
//!   complete — the synchronous (zero-staleness) update push of the paper's
//!   §4.3 is a `Parallel` over per-edge-server pushes.
//! * [`Step::Fork`] detaches a branch — the asynchronous JMS propagation of
//!   §4.5. The fork consumes CPU and link resources but does not delay the
//!   response; its completion is reported to the world for staleness
//!   accounting.

use std::cell::RefCell;
use std::rc::Rc;

use mutsvc_desim::sim::{Context, EventFn};
use mutsvc_desim::time::{SimDuration, SimTime};

use crate::network::Network;
use crate::topology::NodeId;

/// One primitive operation in a request program.
#[derive(Debug, Clone, PartialEq)]
pub enum Step {
    /// Consume CPU time on a node.
    Cpu {
        /// Hosting node.
        node: NodeId,
        /// Service demand (at relative speed 1.0).
        demand: SimDuration,
    },
    /// One-way message.
    Transfer {
        /// Source node.
        from: NodeId,
        /// Destination node.
        to: NodeId,
        /// Payload size.
        bytes: u64,
    },
    /// A request/response round trip (`a → b → a`).
    Exchange {
        /// Initiator.
        a: NodeId,
        /// Responder.
        b: NodeId,
        /// Bytes sent `a → b`.
        req_bytes: u64,
        /// Bytes sent `b → a`.
        resp_bytes: u64,
    },
    /// Pure waiting (e.g. user think time inside a composite job).
    Delay(SimDuration),
    /// Run branches concurrently; continue when **all** have completed.
    Parallel(Vec<Vec<Step>>),
    /// Detach a branch: it consumes resources but the parent continues
    /// immediately. `tag` is reported to [`JobWorld::fork_completed`].
    Fork {
        /// The detached program.
        steps: Vec<Step>,
        /// Correlation tag for staleness accounting.
        tag: Option<u64>,
    },
}

impl Step {
    /// CPU work helper.
    pub fn cpu(node: NodeId, demand: SimDuration) -> Step {
        Step::Cpu { node, demand }
    }

    /// One-way transfer helper.
    pub fn transfer(from: NodeId, to: NodeId, bytes: u64) -> Step {
        Step::Transfer { from, to, bytes }
    }

    /// Round-trip helper.
    pub fn exchange(a: NodeId, b: NodeId, req_bytes: u64, resp_bytes: u64) -> Step {
        Step::Exchange {
            a,
            b,
            req_bytes,
            resp_bytes,
        }
    }

    /// Total CPU demand contained in this step (recursing into branches).
    pub fn total_cpu(&self) -> SimDuration {
        match self {
            Step::Cpu { demand, .. } => *demand,
            Step::Parallel(branches) => branches.iter().flatten().map(Step::total_cpu).sum(),
            Step::Fork { steps, .. } => steps.iter().map(Step::total_cpu).sum(),
            _ => SimDuration::ZERO,
        }
    }

    /// Counts round trips crossing `is_wan` node pairs on the *response path*
    /// (i.e. excluding forked branches). `Transfer` counts as half a trip.
    pub fn wan_round_trips(&self, is_wan: &dyn Fn(NodeId, NodeId) -> bool) -> f64 {
        match self {
            Step::Transfer { from, to, .. } if is_wan(*from, *to) => 0.5,
            Step::Exchange { a, b, .. } if is_wan(*a, *b) => 1.0,
            Step::Parallel(branches) => branches
                .iter()
                .map(|b| b.iter().map(|s| s.wan_round_trips(is_wan)).sum::<f64>())
                .fold(0.0, f64::max),
            Step::Fork { .. } => 0.0,
            _ => 0.0,
        }
    }
}

/// Total response-path WAN round trips of a step program.
pub fn wan_round_trips(steps: &[Step], is_wan: &dyn Fn(NodeId, NodeId) -> bool) -> f64 {
    steps.iter().map(|s| s.wan_round_trips(is_wan)).sum()
}

/// The world-side contract required by the executor.
pub trait JobWorld: Sized + 'static {
    /// The live network carrying this world's traffic.
    fn network_mut(&mut self) -> &mut Network;

    /// Called when a tagged [`Step::Fork`] branch finishes (e.g. an
    /// asynchronous update push has been applied everywhere).
    fn fork_completed(&mut self, _tag: u64, _at: SimTime) {}
}

/// Starts executing `steps` now; `done` fires when the program (excluding
/// forked branches) completes.
pub fn spawn_job<W: JobWorld>(
    world: &mut W,
    ctx: &mut Context<'_, W>,
    steps: Vec<Step>,
    done: EventFn<W>,
) {
    advance(world, ctx, steps.into_iter(), done);
}

fn advance<W: JobWorld>(
    world: &mut W,
    ctx: &mut Context<'_, W>,
    mut steps: std::vec::IntoIter<Step>,
    done: EventFn<W>,
) {
    loop {
        let Some(step) = steps.next() else {
            done(world, ctx);
            return;
        };
        match step {
            Step::Cpu { node, demand } => {
                let completion = world.network_mut().cpu(ctx.now(), node, demand);
                ctx.schedule_at(completion, move |w, c| advance(w, c, steps, done));
                return;
            }
            Step::Transfer { from, to, bytes } => {
                send(
                    world,
                    ctx,
                    from,
                    to,
                    bytes,
                    Box::new(move |w, c| advance(w, c, steps, done)),
                );
                return;
            }
            Step::Exchange {
                a,
                b,
                req_bytes,
                resp_bytes,
            } => {
                // The return leg starts only when the request arrives, so
                // every link admission happens at its true time.
                send(
                    world,
                    ctx,
                    a,
                    b,
                    req_bytes,
                    Box::new(move |w: &mut W, c: &mut Context<'_, W>| {
                        send(
                            w,
                            c,
                            b,
                            a,
                            resp_bytes,
                            Box::new(move |w, c| advance(w, c, steps, done)),
                        );
                    }),
                );
                return;
            }
            Step::Delay(d) => {
                ctx.schedule_in(d, move |w, c| advance(w, c, steps, done));
                return;
            }
            Step::Parallel(branches) => {
                let branches: Vec<Vec<Step>> =
                    branches.into_iter().filter(|b| !b.is_empty()).collect();
                if branches.is_empty() {
                    continue;
                }
                let join = Rc::new(RefCell::new(JoinState {
                    remaining: branches.len(),
                    continuation: Some(Box::new(move |w: &mut W, c: &mut Context<'_, W>| {
                        advance(w, c, steps, done);
                    }) as EventFn<W>),
                }));
                for branch in branches {
                    let join = Rc::clone(&join);
                    let branch_done: EventFn<W> = Box::new(move |w, c| {
                        let continuation = {
                            let mut j = join.borrow_mut();
                            j.remaining -= 1;
                            if j.remaining == 0 {
                                j.continuation.take()
                            } else {
                                None
                            }
                        };
                        if let Some(k) = continuation {
                            k(w, c);
                        }
                    });
                    advance(world, ctx, branch.into_iter(), branch_done);
                }
                return;
            }
            Step::Fork { steps: branch, tag } => {
                let fork_done: EventFn<W> = Box::new(move |w, c| {
                    if let Some(tag) = tag {
                        let now = c.now();
                        w.fork_completed(tag, now);
                    }
                });
                advance(world, ctx, branch.into_iter(), fork_done);
                // Fall through: the parent continues immediately.
            }
        }
    }
}

struct JoinState<W> {
    remaining: usize,
    continuation: Option<EventFn<W>>,
}

/// Sends one message hop-by-hop: each link is admitted at the simulated time
/// the message actually reaches it, so link FIFO order matches causality
/// even across long-latency paths.
fn send<W: JobWorld>(
    world: &mut W,
    ctx: &mut Context<'_, W>,
    from: NodeId,
    to: NodeId,
    bytes: u64,
    done: EventFn<W>,
) {
    if from == to {
        done(world, ctx);
        return;
    }
    let route = world.network_mut().route_of(from, to);
    hop(world, ctx, route, 0, bytes, done);
}

fn hop<W: JobWorld>(
    world: &mut W,
    ctx: &mut Context<'_, W>,
    route: Vec<crate::topology::LinkId>,
    idx: usize,
    bytes: u64,
    done: EventFn<W>,
) {
    if idx == route.len() {
        done(world, ctx);
        return;
    }
    let arrival = world.network_mut().link_send(ctx.now(), route[idx], bytes);
    ctx.schedule_at(arrival, move |w, c| hop(w, c, route, idx + 1, bytes, done));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyBuilder;
    use mutsvc_desim::Simulation;

    struct World {
        net: Network,
        finished: Vec<(SimTime, &'static str)>,
        forks: Vec<(u64, SimTime)>,
    }

    impl JobWorld for World {
        fn network_mut(&mut self) -> &mut Network {
            &mut self.net
        }
        fn fork_completed(&mut self, tag: u64, at: SimTime) {
            self.forks.push((tag, at));
        }
    }

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }
    fn at(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    fn world() -> (World, NodeId, NodeId, NodeId) {
        let mut b = TopologyBuilder::new();
        let main = b.node("main", 2);
        let router = b.node("router", 8);
        let edge = b.node("edge", 2);
        b.duplex_link(main, router, ms(10), 1e9);
        b.duplex_link(router, edge, ms(90), 1e9);
        let net = Network::new(b.finalize());
        (
            World {
                net,
                finished: Vec::new(),
                forks: Vec::new(),
            },
            main,
            router,
            edge,
        )
    }

    fn run(world: World, steps: Vec<Step>) -> World {
        let mut sim = Simulation::new(world);
        sim.schedule_at(SimTime::ZERO, move |w, c| {
            spawn_job(
                w,
                c,
                steps,
                Box::new(|w: &mut World, c| {
                    let now = c.now();
                    w.finished.push((now, "job"));
                }),
            );
        });
        sim.run();
        sim.into_world()
    }

    #[test]
    fn sequential_steps_accumulate() {
        let (w, main, _, edge) = world();
        let steps = vec![
            Step::cpu(edge, ms(5)),
            Step::exchange(edge, main, 0, 0), // 200ms RTT
            Step::cpu(edge, ms(5)),
        ];
        let w = run(w, steps);
        assert_eq!(w.finished, vec![(at(210), "job")]);
    }

    #[test]
    fn empty_program_completes_immediately() {
        let (w, ..) = world();
        let w = run(w, Vec::new());
        assert_eq!(w.finished, vec![(at(0), "job")]);
    }

    #[test]
    fn delay_is_pure_waiting() {
        let (w, main, ..) = world();
        let w = run(w, vec![Step::Delay(ms(42)), Step::cpu(main, ms(8))]);
        assert_eq!(w.finished, vec![(at(50), "job")]);
        assert_eq!(w.net.cpu_jobs(main), 1);
    }

    #[test]
    fn parallel_blocks_on_slowest_branch() {
        let (w, main, _, edge) = world();
        let steps = vec![Step::Parallel(vec![
            vec![Step::cpu(main, ms(5))],
            vec![Step::exchange(main, edge, 0, 0)], // 200ms
            vec![Step::Delay(ms(50))],
        ])];
        let w = run(w, steps);
        assert_eq!(w.finished, vec![(at(200), "job")]);
    }

    #[test]
    fn parallel_with_empty_branches_is_noop() {
        let (w, main, ..) = world();
        let steps = vec![Step::Parallel(vec![vec![], vec![]]), Step::cpu(main, ms(3))];
        let w = run(w, steps);
        assert_eq!(w.finished, vec![(at(3), "job")]);
    }

    #[test]
    fn fork_does_not_delay_parent_but_reports() {
        let (w, main, _, edge) = world();
        let steps = vec![
            Step::Fork {
                steps: vec![Step::exchange(main, edge, 0, 0)],
                tag: Some(7),
            },
            Step::cpu(main, ms(5)),
        ];
        let w = run(w, steps);
        assert_eq!(w.finished, vec![(at(5), "job")]);
        assert_eq!(w.forks, vec![(7, at(200))]);
    }

    #[test]
    fn untagged_fork_completes_silently() {
        let (w, from, _, edge) = world();
        let steps = vec![
            Step::Fork {
                steps: vec![Step::transfer(from, edge, 100)],
                tag: None,
            },
            Step::cpu(from, ms(1)),
        ];
        let w = run(w, steps);
        assert!(w.forks.is_empty());
        assert_eq!(w.finished.len(), 1);
    }

    #[test]
    fn nested_parallel_joins_correctly() {
        let (w, _main, _, edge) = world();
        let steps = vec![
            Step::Parallel(vec![
                vec![Step::Parallel(vec![
                    vec![Step::Delay(ms(10))],
                    vec![Step::Delay(ms(30))],
                ])],
                vec![Step::Delay(ms(20))],
            ]),
            Step::cpu(edge, ms(1)),
        ];
        let w = run(w, steps);
        assert_eq!(w.finished, vec![(at(31), "job")]);
    }

    #[test]
    fn exchange_admits_return_leg_on_arrival() {
        let (w, main, _, edge) = world();
        // Two concurrent exchanges: both complete at 200ms (links are fast,
        // no serialization contention at 1 Gbit/s with zero payload).
        let steps = vec![Step::Parallel(vec![
            vec![Step::exchange(edge, main, 0, 0)],
            vec![Step::exchange(edge, main, 0, 0)],
        ])];
        let w = run(w, steps);
        assert_eq!(w.finished, vec![(at(200), "job")]);
    }

    #[test]
    fn total_cpu_recurses() {
        let (_, main, _, edge) = world();
        let step = Step::Parallel(vec![
            vec![Step::cpu(main, ms(5)), Step::cpu(edge, ms(5))],
            vec![Step::Fork {
                steps: vec![Step::cpu(main, ms(7))],
                tag: None,
            }],
        ]);
        assert_eq!(step.total_cpu(), ms(17));
    }

    #[test]
    fn wan_round_trip_counting() {
        let (w, main, _, edge) = world();
        let is_wan = move |a: NodeId, b: NodeId| (a == main) != (b == main);
        let steps = vec![
            Step::exchange(edge, main, 0, 0),
            Step::exchange(edge, edge, 0, 0),
            Step::Fork {
                steps: vec![Step::exchange(main, edge, 0, 0)],
                tag: None,
            },
        ];
        assert_eq!(wan_round_trips(&steps, &is_wan), 1.0);
        drop(w);
    }

    #[test]
    fn many_jobs_deterministic() {
        fn once() -> Vec<(SimTime, &'static str)> {
            let (w, main, _, edge) = world();
            let mut sim = Simulation::new(w);
            for i in 0..50u64 {
                let steps = vec![
                    Step::cpu(edge, ms(3)),
                    Step::exchange(edge, main, 500, 2_000),
                    Step::cpu(edge, ms(2)),
                ];
                sim.schedule_at(SimTime::from_millis(i * 7), move |w, c| {
                    spawn_job(
                        w,
                        c,
                        steps,
                        Box::new(|w: &mut World, c| {
                            let now = c.now();
                            w.finished.push((now, "j"));
                        }),
                    );
                });
            }
            sim.run();
            sim.into_world().finished
        }
        assert_eq!(once(), once());
    }
}
