//! Network topology: nodes, directed links and latency-shortest routes.
//!
//! The paper's testbed (Figure 2) is a star: three application servers, a
//! database host and client LANs, all joined by a Click software router with
//! traffic shaping on the WAN legs. [`TopologyBuilder`] describes such graphs;
//! [`Topology::finalize`] computes all-pairs latency-shortest routes once so
//! that the hot transfer path is a plain slice lookup.

use serde::{Deserialize, Serialize};

use mutsvc_desim::time::SimDuration;

/// One-way latency above which a link counts as wide-area.
///
/// The paper's LAN legs cost ~200 µs and its shaped WAN legs ≥100 ms; 20 ms
/// splits them with two orders of magnitude of slack on either side. The
/// same threshold classifies traced hops ([`JobWorld::trace_wan_threshold`])
/// and bounds the conservative-parallel region decomposition
/// ([`Topology::regions`]), so "WAN" means one thing everywhere.
///
/// [`JobWorld::trace_wan_threshold`]: crate::job::JobWorld::trace_wan_threshold
pub const WAN_LATENCY_THRESHOLD: SimDuration = SimDuration::from_millis(20);

/// Identifies a node (host) in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The node's dense index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifies a directed link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkId(pub(crate) usize);

impl LinkId {
    /// The link's dense index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Static description of a host.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Human-readable name ("main", "edge1", …).
    pub name: String,
    /// Number of CPUs (the paper's servers are dual-processor workstations).
    pub cpus: usize,
    /// Relative CPU speed; service demands are divided by this factor.
    pub speed: f64,
}

/// Static description of one direction of a link.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Human-readable name ("main->router", …).
    pub name: String,
    /// Source node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// One-way propagation latency.
    pub latency: SimDuration,
    /// Bandwidth in bits per second.
    pub bandwidth_bps: f64,
}

impl LinkSpec {
    /// Time to serialize `bytes` onto this link.
    pub fn serialization_time(&self, bytes: u64) -> SimDuration {
        if self.bandwidth_bps <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_secs_f64(bytes as f64 * 8.0 / self.bandwidth_bps)
    }
}

/// Incrementally builds a [`Topology`].
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    nodes: Vec<NodeSpec>,
    links: Vec<LinkSpec>,
}

impl TopologyBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a host with `cpus` processors at relative speed 1.0.
    pub fn node(&mut self, name: impl Into<String>, cpus: usize) -> NodeId {
        self.node_with_speed(name, cpus, 1.0)
    }

    /// Adds a host with an explicit relative CPU speed.
    ///
    /// # Panics
    ///
    /// Panics if `cpus == 0` or `speed` is not positive and finite.
    pub fn node_with_speed(&mut self, name: impl Into<String>, cpus: usize, speed: f64) -> NodeId {
        assert!(cpus > 0, "a node needs at least one CPU");
        assert!(
            speed.is_finite() && speed > 0.0,
            "node speed must be positive"
        );
        let id = NodeId(self.nodes.len());
        self.nodes.push(NodeSpec {
            name: name.into(),
            cpus,
            speed,
        });
        id
    }

    /// Adds a bidirectional link as two directed links with identical
    /// latency and bandwidth; returns `(a→b, b→a)`.
    pub fn duplex_link(
        &mut self,
        a: NodeId,
        b: NodeId,
        latency: SimDuration,
        bandwidth_bps: f64,
    ) -> (LinkId, LinkId) {
        let ab = self.directed_link(a, b, latency, bandwidth_bps);
        let ba = self.directed_link(b, a, latency, bandwidth_bps);
        (ab, ba)
    }

    /// Adds a single directed link.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is unknown, endpoints coincide, or the bandwidth
    /// is not positive and finite.
    pub fn directed_link(
        &mut self,
        from: NodeId,
        to: NodeId,
        latency: SimDuration,
        bandwidth_bps: f64,
    ) -> LinkId {
        assert!(
            from.0 < self.nodes.len() && to.0 < self.nodes.len(),
            "unknown endpoint"
        );
        assert_ne!(from, to, "self-links are not allowed");
        assert!(
            bandwidth_bps.is_finite() && bandwidth_bps > 0.0,
            "bandwidth must be positive"
        );
        let id = LinkId(self.links.len());
        let name = format!("{}->{}", self.nodes[from.0].name, self.nodes[to.0].name);
        self.links.push(LinkSpec {
            name,
            from,
            to,
            latency,
            bandwidth_bps,
        });
        id
    }

    /// Computes routes and produces an immutable [`Topology`].
    ///
    /// # Panics
    ///
    /// Panics if the graph is empty.
    pub fn finalize(self) -> Topology {
        assert!(!self.nodes.is_empty(), "topology has no nodes");
        let routes = compute_routes(&self.nodes, &self.links);
        Topology {
            nodes: self.nodes,
            links: self.links,
            routes,
        }
    }
}

/// All-pairs latency-shortest routes via repeated Dijkstra (graphs are tiny).
fn compute_routes(nodes: &[NodeSpec], links: &[LinkSpec]) -> Vec<Vec<Option<Vec<LinkId>>>> {
    let n = nodes.len();
    let mut adjacency: Vec<Vec<(usize, LinkId, u64)>> = vec![Vec::new(); n];
    for (i, link) in links.iter().enumerate() {
        adjacency[link.from.0].push((link.to.0, LinkId(i), link.latency.as_micros().max(1)));
    }

    let mut routes = vec![vec![None; n]; n];
    for src in 0..n {
        // Dijkstra from src.
        let mut dist = vec![u64::MAX; n];
        let mut prev: Vec<Option<(usize, LinkId)>> = vec![None; n];
        let mut heap = std::collections::BinaryHeap::new();
        dist[src] = 0;
        heap.push(std::cmp::Reverse((0u64, src)));
        while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
            if d > dist[u] {
                continue;
            }
            for &(v, link, w) in &adjacency[u] {
                let nd = d.saturating_add(w);
                if nd < dist[v] {
                    dist[v] = nd;
                    prev[v] = Some((u, link));
                    heap.push(std::cmp::Reverse((nd, v)));
                }
            }
        }
        for dst in 0..n {
            if dst == src {
                routes[src][dst] = Some(Vec::new());
                continue;
            }
            if dist[dst] == u64::MAX {
                continue;
            }
            let mut path = Vec::new();
            let mut cur = dst;
            while cur != src {
                let (p, link) = prev[cur].expect("reachable node has predecessor");
                path.push(link);
                cur = p;
            }
            path.reverse();
            routes[src][dst] = Some(path);
        }
    }
    routes
}

/// An immutable network graph with precomputed routes.
#[derive(Debug, Clone)]
pub struct Topology {
    nodes: Vec<NodeSpec>,
    links: Vec<LinkSpec>,
    routes: Vec<Vec<Option<Vec<LinkId>>>>,
}

impl Topology {
    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of directed links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// All node identifiers.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId)
    }

    /// All directed-link identifiers.
    pub fn link_ids(&self) -> impl Iterator<Item = LinkId> + '_ {
        (0..self.links.len()).map(LinkId)
    }

    /// Host description.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this topology.
    pub fn node(&self, id: NodeId) -> &NodeSpec {
        &self.nodes[id.0]
    }

    /// Link description.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this topology.
    pub fn link(&self, id: LinkId) -> &LinkSpec {
        &self.links[id.0]
    }

    /// Looks up a node by name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.nodes.iter().position(|n| n.name == name).map(NodeId)
    }

    /// The latency-shortest route from `from` to `to` (empty if `from == to`),
    /// or `None` if unreachable.
    pub fn route(&self, from: NodeId, to: NodeId) -> Option<&[LinkId]> {
        self.routes[from.0][to.0].as_deref()
    }

    /// Sum of propagation latencies along the route (ignores serialization).
    ///
    /// # Panics
    ///
    /// Panics if `to` is unreachable from `from`.
    pub fn path_latency(&self, from: NodeId, to: NodeId) -> SimDuration {
        self.route(from, to)
            .unwrap_or_else(|| panic!("no route {from} -> {to}"))
            .iter()
            .map(|&l| self.links[l.0].latency)
            .sum()
    }

    /// Round-trip propagation latency between two nodes.
    pub fn rtt(&self, a: NodeId, b: NodeId) -> SimDuration {
        self.path_latency(a, b) + self.path_latency(b, a)
    }

    /// Partitions the nodes into *regions*: connected components of the
    /// subgraph keeping only links with latency at or below
    /// [`WAN_LATENCY_THRESHOLD`]. Returns one region index per node, dense
    /// from zero, numbered by each region's lowest node index — a pure
    /// function of the topology, independent of link insertion order.
    ///
    /// Hosts in one region interact at LAN speed; hosts in different regions
    /// only through ≥1 wide-area link, which is exactly the shard boundary
    /// the conservative-parallel engine needs.
    pub fn regions(&self) -> Vec<usize> {
        // Union-find over sub-threshold links (graphs are tiny).
        let mut parent: Vec<usize> = (0..self.nodes.len()).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for link in &self.links {
            if link.latency <= WAN_LATENCY_THRESHOLD {
                let a = find(&mut parent, link.from.0);
                let b = find(&mut parent, link.to.0);
                // Lower root wins, keeping numbering insertion-order-free.
                parent[a.max(b)] = a.min(b);
            }
        }
        let mut dense: Vec<Option<usize>> = vec![None; self.nodes.len()];
        let mut next = 0;
        (0..self.nodes.len())
            .map(|i| {
                let root = find(&mut parent, i);
                *dense[root].get_or_insert_with(|| {
                    let id = next;
                    next += 1;
                    id
                })
            })
            .collect()
    }

    /// The smallest one-way latency among wide-area links (those above
    /// [`WAN_LATENCY_THRESHOLD`]), or `None` for an all-LAN topology.
    ///
    /// This is the conservative-parallel lookahead: every message between
    /// regions crosses at least one such link, so a shard simulating the
    /// window `[t, t + lookahead)` cannot be affected by any other shard.
    /// The far-queue horizon epoch derives from the same value, keeping one
    /// source of truth for both (see `Simulation::set_far_epoch`).
    pub fn min_wan_latency(&self) -> Option<SimDuration> {
        self.links
            .iter()
            .map(|l| l.latency)
            .filter(|&l| l > WAN_LATENCY_THRESHOLD)
            .min()
    }

    /// Scales every node's relative CPU speed and every link's bandwidth by
    /// `factor` — a deployment provisioned for `factor`× the offered load.
    /// Propagation latencies (and therefore routes) are unchanged. High-rate
    /// benches use this so the simulator, not the modelled hardware, stays
    /// the thing being measured.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive and finite.
    pub fn scale_capacity(&mut self, factor: f64) {
        assert!(
            factor.is_finite() && factor > 0.0,
            "capacity factor must be positive"
        );
        for node in &mut self.nodes {
            node.speed *= factor;
        }
        for link in &mut self.links {
            link.bandwidth_bps *= factor;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn star() -> (Topology, NodeId, NodeId, NodeId) {
        let mut b = TopologyBuilder::new();
        let main = b.node("main", 2);
        let router = b.node("router", 4);
        let edge = b.node("edge", 2);
        b.duplex_link(main, router, ms(1), 100e6);
        b.duplex_link(router, edge, ms(100), 100e6);
        (b.finalize(), main, router, edge)
    }

    #[test]
    fn routes_via_router() {
        let (t, main, router, edge) = star();
        let path = t.route(main, edge).unwrap();
        assert_eq!(path.len(), 2);
        assert_eq!(t.link(path[0]).from, main);
        assert_eq!(t.link(path[0]).to, router);
        assert_eq!(t.link(path[1]).to, edge);
        assert_eq!(t.path_latency(main, edge), ms(101));
        assert_eq!(t.rtt(main, edge), ms(202));
    }

    #[test]
    fn self_route_is_empty() {
        let (t, main, ..) = star();
        assert_eq!(t.route(main, main).unwrap().len(), 0);
        assert_eq!(t.path_latency(main, main), SimDuration::ZERO);
    }

    #[test]
    fn shortest_path_prefers_low_latency() {
        let mut b = TopologyBuilder::new();
        let a = b.node("a", 1);
        let c = b.node("c", 1);
        let d = b.node("d", 1);
        // Direct but slow, or via d but fast.
        b.duplex_link(a, c, ms(50), 100e6);
        b.duplex_link(a, d, ms(10), 100e6);
        b.duplex_link(d, c, ms(10), 100e6);
        let t = b.finalize();
        assert_eq!(t.path_latency(a, c), ms(20));
        assert_eq!(t.route(a, c).unwrap().len(), 2);
    }

    #[test]
    fn unreachable_is_none() {
        let mut b = TopologyBuilder::new();
        let a = b.node("a", 1);
        let c = b.node("island", 1);
        let d = b.node("d", 1);
        b.duplex_link(a, d, ms(1), 1e6);
        let t = b.finalize();
        assert!(t.route(a, c).is_none());
    }

    #[test]
    fn serialization_time_scales_with_bytes() {
        let (t, main, _, edge) = star();
        let link = t.route(main, edge).unwrap()[0];
        let spec = t.link(link);
        // 100 Mbit/s: 12_500 bytes per millisecond.
        assert_eq!(spec.serialization_time(12_500), ms(1));
        assert_eq!(spec.serialization_time(0), SimDuration::ZERO);
    }

    #[test]
    fn node_lookup_by_name() {
        let (t, main, ..) = star();
        assert_eq!(t.node_by_name("main"), Some(main));
        assert_eq!(t.node_by_name("nope"), None);
        assert_eq!(t.node(main).cpus, 2);
    }

    #[test]
    #[should_panic(expected = "self-links")]
    fn self_link_rejected() {
        let mut b = TopologyBuilder::new();
        let a = b.node("a", 1);
        b.directed_link(a, a, ms(1), 1e6);
    }

    #[test]
    fn regions_split_at_wan_links() {
        // main+router+db share a LAN; two edges hang off 100 ms WAN legs.
        let mut b = TopologyBuilder::new();
        let main = b.node("main", 2);
        let router = b.node("router", 4);
        let db = b.node("db", 2);
        let edge1 = b.node("edge1", 2);
        let edge2 = b.node("edge2", 2);
        b.duplex_link(main, router, SimDuration::from_micros(200), 100e6);
        b.duplex_link(db, router, SimDuration::from_micros(200), 100e6);
        b.duplex_link(router, edge1, ms(100), 100e6);
        b.duplex_link(router, edge2, ms(120), 100e6);
        let t = b.finalize();
        let regions = t.regions();
        assert_eq!(regions[main.0], regions[router.0]);
        assert_eq!(regions[main.0], regions[db.0]);
        assert_ne!(regions[main.0], regions[edge1.0]);
        assert_ne!(regions[edge1.0], regions[edge2.0]);
        // Dense, numbered by lowest member: main's region is 0.
        assert_eq!(regions[main.0], 0);
        assert_eq!(regions[edge1.0], 1);
        assert_eq!(regions[edge2.0], 2);
        assert_eq!(t.min_wan_latency(), Some(ms(100)));
    }

    #[test]
    fn all_lan_topology_is_one_region_without_lookahead() {
        let mut b = TopologyBuilder::new();
        let a = b.node("a", 1);
        let c = b.node("c", 1);
        b.duplex_link(a, c, SimDuration::from_micros(200), 100e6);
        let t = b.finalize();
        assert_eq!(t.regions(), vec![0, 0]);
        assert_eq!(t.min_wan_latency(), None);
    }
}
