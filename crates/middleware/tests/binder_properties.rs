//! Property tests over the binder: random call trees bound under random
//! deployments always produce well-formed step programs.

use mutsvc_desim::{SimDuration, SimRng};
use mutsvc_middleware::{
    Binder, Call, ComponentKind, ComponentRegistry, ContainerCosts, ContainerState, DbAccess,
    DescriptorBuilder, PageRequest, UpdatePropagation,
};
use mutsvc_netsim::{NodeId, ProtocolParams, Step, TopologyBuilder};
use mutsvc_relstore::{Database, DatabaseBuilder, Mutation, Query, RowId, TableId, Value};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandomTree {
    /// Depth-2 tree description: (facade cpu ms, per-leaf ops).
    leaves: Vec<LeafOp>,
    entry_edge: bool,
    propagation: u8,
    replicate: bool,
}

#[derive(Debug, Clone)]
enum LeafOp {
    EntityRead(u8),
    EntityWrite(u8),
    TaggedQuery(u8),
    PlainQuery,
}

fn leaf_strategy() -> impl Strategy<Value = LeafOp> {
    prop_oneof![
        (0u8..12).prop_map(LeafOp::EntityRead),
        (0u8..12).prop_map(LeafOp::EntityWrite),
        (0u8..3).prop_map(LeafOp::TaggedQuery),
        Just(LeafOp::PlainQuery),
    ]
}

fn tree_strategy() -> impl Strategy<Value = RandomTree> {
    (
        proptest::collection::vec(leaf_strategy(), 1..6),
        any::<bool>(),
        0u8..3,
        any::<bool>(),
    )
        .prop_map(|(leaves, entry_edge, propagation, replicate)| RandomTree {
            leaves,
            entry_edge,
            propagation,
            replicate,
        })
}

struct World {
    registry: ComponentRegistry,
    db: Database,
    table: TableId,
    web: mutsvc_middleware::ComponentId,
    facade: mutsvc_middleware::ComponentId,
    entity: mutsvc_middleware::ComponentId,
    main: NodeId,
    edge: NodeId,
    dbn: NodeId,
    client: NodeId,
    node_count: usize,
}

fn world() -> World {
    let mut tb = TopologyBuilder::new();
    let main = tb.node("main", 2);
    let edge = tb.node("edge", 2);
    let dbn = tb.node("db", 2);
    let client = tb.node("client", 2);
    tb.duplex_link(main, edge, SimDuration::from_millis(100), 100e6);
    tb.duplex_link(main, dbn, SimDuration::from_micros(200), 100e6);
    tb.duplex_link(client, edge, SimDuration::from_micros(200), 100e6);
    let topology = tb.finalize();

    let mut dbb = DatabaseBuilder::new();
    let table = dbb.table("t", &["name", "*grp"], 100);
    let mut db = dbb.build();
    for i in 0..12i64 {
        db.table_mut(table)
            .insert(vec![format!("r{i}").into(), Value::Int(i % 3)]);
    }
    let mut registry = ComponentRegistry::new();
    let web = registry.register("web", ComponentKind::Web);
    let facade = registry.register("facade", ComponentKind::StatelessSession);
    let entity = registry.register_entity("entity", table);
    World {
        registry,
        db,
        table,
        web,
        facade,
        entity,
        main,
        edge,
        dbn,
        client,
        node_count: topology.node_count(),
    }
}

fn build_page(w: &World, t: &RandomTree) -> PageRequest {
    let ms = SimDuration::from_millis;
    let mut facade_call = Call::new(w.facade, "op", ms(2));
    for leaf in &t.leaves {
        facade_call = match leaf {
            LeafOp::EntityRead(r) => facade_call.invoke(
                Call::new(w.entity, "load", ms(1)).query(
                    Query::ByPk {
                        table: w.table,
                        id: RowId(1 + (*r as u64) % 12),
                    },
                    DbAccess::Single,
                ),
                50,
                200,
            ),
            LeafOp::EntityWrite(r) => facade_call.invoke(
                Call::new(w.entity, "store", ms(1)).mutate(Mutation::Update {
                    table: w.table,
                    id: RowId(1 + (*r as u64) % 12),
                    column: 0,
                    value: "x".into(),
                }),
                50,
                50,
            ),
            LeafOp::TaggedQuery(g) => facade_call.tagged_query(
                Query::Eq {
                    table: w.table,
                    column: 1,
                    value: Value::Int(*g as i64 % 3),
                },
                "grp",
                DbAccess::Single,
            ),
            LeafOp::PlainQuery => {
                facade_call.query(Query::All { table: w.table }, DbAccess::BmpFinder)
            }
        };
    }
    let root = Call::new(w.web, "page", ms(3)).invoke(facade_call, 100, 500);
    PageRequest::new("p", root, 5_000)
}

/// Recursively checks node sanity, and counts blocking/forked branches.
fn audit(steps: &[Step], node_count: usize) -> (usize, usize) {
    let mut parallels = 0;
    let mut forks = 0;
    for s in steps {
        match s {
            Step::Cpu { node, .. } => assert!(node.index() < node_count),
            Step::Transfer { from, to, .. } => {
                assert!(from.index() < node_count && to.index() < node_count);
                assert_ne!(from, to, "self-transfers must be elided");
            }
            Step::Exchange { a, b, .. } => {
                assert!(a.index() < node_count && b.index() < node_count);
                assert_ne!(a, b);
            }
            Step::Delay(_) => {}
            Step::Parallel(branches) => {
                parallels += 1;
                for b in branches {
                    let (p, f) = audit(b, node_count);
                    parallels += p;
                    forks += f;
                }
            }
            Step::Fork { steps, .. } => {
                forks += 1;
                let (p, f) = audit(steps, node_count);
                parallels += p;
                forks += f;
            }
        }
    }
    (parallels, forks)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bound_programs_are_well_formed(tree in tree_strategy(), seed in 0u64..1000) {
        let mut w = world();
        let propagation = match tree.propagation {
            0 => UpdatePropagation::Invalidate,
            1 => UpdatePropagation::SyncPush,
            _ => UpdatePropagation::AsyncPush,
        };
        let mut b = DescriptorBuilder::new(&w.registry, "prop", w.dbn);
        b.central_node(w.main);
        if tree.entry_edge {
            b.place_replicated(w.web, w.main, [w.edge]);
            b.place_replicated(w.facade, w.main, [w.edge]);
        } else {
            b.place(w.web, w.main).place(w.facade, w.main);
        }
        if tree.replicate {
            b.place_replicated(w.entity, w.main, [w.edge]);
            b.entity_propagation(propagation);
            b.query_cache([w.edge], ["grp"], propagation);
        } else {
            b.place(w.entity, w.main);
        }
        let descriptor = b.build().unwrap();

        let page = build_page(&w, &tree);
        let entry = if tree.entry_edge { w.edge } else { w.main };
        let mut state = ContainerState::new();
        let mut rng = SimRng::seed_from_u64(seed);
        let mut tag = 0u64;
        let costs = ContainerCosts::default();
        let protocols = ProtocolParams { rmi_extra_round_trip_prob: 0.5, ..Default::default() };

        // Bind several times: cold then warm, with writes mutating state.
        for round in 0..3 {
            let bound = Binder::new(
                &w.registry, &descriptor, &protocols, &costs,
                &mut w.db, &mut state, &mut rng, &mut tag,
            )
            .bind_page(w.client, entry, &page);

            let (parallels, forks) = audit(&bound.steps, w.node_count);

            // Blocking pushes only under SyncPush; deferred applies only
            // under AsyncPush; tags match deferred entries.
            if propagation != UpdatePropagation::SyncPush || !tree.replicate {
                prop_assert_eq!(parallels, 0, "round {}", round);
            }
            if propagation != UpdatePropagation::AsyncPush || !tree.replicate {
                prop_assert!(bound.deferred.is_empty());
            }
            prop_assert!(bound.deferred.len() <= forks);

            // Cache counters never exceed the tree's leaf counts.
            let reads = tree.leaves.iter().filter(|l| matches!(l, LeafOp::EntityRead(_))).count() as u32;
            prop_assert!(bound.stats.entity_cache_hits + bound.stats.entity_cache_misses <= reads);
        }
    }

    #[test]
    fn warm_binds_never_do_more_remote_work_than_cold(tree in tree_strategy()) {
        let mut w = world();
        let mut b = DescriptorBuilder::new(&w.registry, "prop", w.dbn);
        b.central_node(w.main);
        b.place_replicated(w.web, w.main, [w.edge]);
        b.place_replicated(w.facade, w.main, [w.edge]);
        b.place_replicated(w.entity, w.main, [w.edge]);
        b.entity_propagation(UpdatePropagation::SyncPush);
        b.query_cache([w.edge], ["grp"], UpdatePropagation::SyncPush);
        let descriptor = b.build().unwrap();

        // Read-only version of the tree (drop writes so caches stay valid).
        let read_tree = RandomTree {
            leaves: tree
                .leaves
                .iter()
                .map(|l| match l {
                    LeafOp::EntityWrite(r) => LeafOp::EntityRead(*r),
                    other => other.clone(),
                })
                .collect(),
            ..tree
        };
        let page = build_page(&w, &read_tree);
        let mut state = ContainerState::new();
        let mut rng = SimRng::seed_from_u64(9);
        let mut tag = 0u64;
        let costs = ContainerCosts::default();
        let protocols = ProtocolParams { rmi_extra_round_trip_prob: 0.0, ..Default::default() };

        let mut db_statements = Vec::new();
        for _ in 0..3 {
            let bound = Binder::new(
                &w.registry, &descriptor, &protocols, &costs,
                &mut w.db, &mut state, &mut rng, &mut tag,
            )
            .bind_page(w.client, w.edge, &page);
            db_statements.push(bound.stats.db_statements);
        }
        // Monotone warming: later binds never hit the database more.
        prop_assert!(db_statements[1] <= db_statements[0]);
        prop_assert!(db_statements[2] <= db_statements[1]);
    }
}
