//! Integration tests for the binder: a miniature application (web tier,
//! façade, one entity, one aggregate query) resolved under descriptors that
//! mirror the paper's five configurations.

use mutsvc_desim::{SimDuration, SimRng, SimTime, Simulation};
use mutsvc_middleware::{
    Binder, Call, ComponentId, ComponentKind, ComponentRegistry, ContainerCosts, ContainerState,
    DbAccess, DeploymentDescriptor, DescriptorBuilder, PageRequest, UpdatePropagation,
};
use mutsvc_netsim::{
    spawn_job, JobWorld, Jobs, NetEvent, Network, NodeId, ProtocolParams, Step, TopologyBuilder,
};
use mutsvc_relstore::{Database, DatabaseBuilder, Mutation, Query, RowId, TableId, Value};

struct Fixture {
    registry: ComponentRegistry,
    db: Database,
    state: ContainerState,
    rng: SimRng,
    next_tag: u64,
    protocols: ProtocolParams,
    costs: ContainerCosts,
    // topology
    topology: mutsvc_netsim::Topology,
    client_main: NodeId,
    client_edge: NodeId,
    main: NodeId,
    edge1: NodeId,
    edge2: NodeId,
    dbn: NodeId,
    // components
    web: ComponentId,
    facade: ComponentId,
    item: ComponentId,
    items_table: TableId,
}

fn ms(v: u64) -> SimDuration {
    SimDuration::from_millis(v)
}

fn fixture() -> Fixture {
    // Topology: star through a router; WAN legs 100ms, LAN legs 0.2ms.
    let mut tb = TopologyBuilder::new();
    let main = tb.node("main", 2);
    let edge1 = tb.node("edge1", 2);
    let edge2 = tb.node("edge2", 2);
    let dbn = tb.node("db", 2);
    let router = tb.node("router", 8);
    let client_main = tb.node("client-main", 4);
    let client_edge = tb.node("client-edge1", 4);
    let lan = SimDuration::from_micros(200);
    let wan = SimDuration::from_millis(100);
    tb.duplex_link(main, router, lan, 100e6);
    tb.duplex_link(dbn, router, lan, 100e6);
    tb.duplex_link(client_main, router, lan, 100e6);
    tb.duplex_link(edge1, router, wan, 100e6);
    tb.duplex_link(edge2, router, wan, 100e6);
    // Edge clients sit on the edge LAN: model as tiny-latency link to edge1.
    tb.duplex_link(client_edge, edge1, lan, 100e6);
    let topology = tb.finalize();

    let mut dbb = DatabaseBuilder::new();
    let items_table = dbb.table("item", &["name", "*product", "price"], 250);
    let mut db = dbb.build();
    for i in 0..12i64 {
        db.table_mut(items_table).insert(vec![
            format!("item-{i}").into(),
            Value::Int(i % 3),
            Value::Int(1_000 + i),
        ]);
    }

    let mut registry = ComponentRegistry::new();
    let web = registry.register("item.jsp", ComponentKind::Web);
    let facade = registry.register("Catalog", ComponentKind::StatelessSession);
    let item = registry.register_entity("ItemEJB", items_table);

    Fixture {
        registry,
        db,
        state: ContainerState::new(),
        rng: SimRng::seed_from_u64(7),
        next_tag: 0,
        protocols: ProtocolParams {
            rmi_extra_round_trip_prob: 0.0,
            ..Default::default()
        },
        costs: ContainerCosts::default(),
        topology,
        client_main,
        client_edge,
        main,
        edge1,
        edge2,
        dbn,
        web,
        facade,
        item,
        items_table,
    }
}

/// Builds a binder and binds one page; descriptors are created per test and
/// passed explicitly (the binder briefly borrows the fixture's shared state).
macro_rules! bind {
    ($fx:expr, $desc:expr, $client:expr, $entry:expr, $page:expr) => {{
        let client = $client;
        let entry = $entry;
        let fx: &mut Fixture = $fx;
        Binder::new(
            &fx.registry,
            $desc,
            &fx.protocols,
            &fx.costs,
            &mut fx.db,
            &mut fx.state,
            &mut fx.rng,
            &mut fx.next_tag,
        )
        .bind_page(client, entry, $page)
    }};
}

fn centralized(fx: &Fixture) -> DeploymentDescriptor {
    let mut b = DescriptorBuilder::new(&fx.registry, "centralized", fx.dbn);
    b.central_node(fx.main);
    b.place(fx.web, fx.main)
        .place(fx.facade, fx.main)
        .place(fx.item, fx.main);
    b.build().unwrap()
}

fn facade_config(fx: &Fixture) -> DeploymentDescriptor {
    let mut b = DescriptorBuilder::new(&fx.registry, "remote-facade", fx.dbn);
    b.central_node(fx.main);
    b.place_replicated(fx.web, fx.main, [fx.edge1, fx.edge2]);
    b.place(fx.facade, fx.main);
    b.place(fx.item, fx.main);
    b.build().unwrap()
}

fn caching_config(fx: &Fixture, prop: UpdatePropagation) -> DeploymentDescriptor {
    let mut b = DescriptorBuilder::new(&fx.registry, "stateful-caching", fx.dbn);
    b.central_node(fx.main);
    b.place_replicated(fx.web, fx.main, [fx.edge1, fx.edge2]);
    b.place_replicated(fx.facade, fx.main, [fx.edge1, fx.edge2]);
    b.place_replicated(fx.item, fx.main, [fx.edge1, fx.edge2]);
    b.entity_propagation(prop);
    b.build().unwrap()
}

fn query_cached_config(fx: &Fixture, prop: UpdatePropagation) -> DeploymentDescriptor {
    let mut b = DescriptorBuilder::new(&fx.registry, "query-caching", fx.dbn);
    b.central_node(fx.main);
    b.place_replicated(fx.web, fx.main, [fx.edge1, fx.edge2]);
    b.place_replicated(fx.facade, fx.main, [fx.edge1, fx.edge2]);
    b.place_replicated(fx.item, fx.main, [fx.edge1, fx.edge2]);
    b.entity_propagation(UpdatePropagation::SyncPush);
    b.query_cache([fx.edge1, fx.edge2], ["items-by-product"], prop);
    b.build().unwrap()
}

/// Item page: web -> facade -> entity PK read.
fn item_page(fx: &Fixture, id: u64) -> PageRequest {
    let entity_call = Call::new(fx.item, "load", ms(1)).query(
        Query::ByPk {
            table: fx.items_table,
            id: RowId(id),
        },
        DbAccess::Single,
    );
    let facade_call = Call::new(fx.facade, "getItem", ms(2)).invoke(entity_call, 100, 500);
    let root = Call::new(fx.web, "doGet", ms(5)).invoke(facade_call, 150, 2_000);
    PageRequest::new("Item", root, 10_000)
}

/// Product page: web -> facade -> tagged aggregate query.
fn product_page(fx: &Fixture, product: i64) -> PageRequest {
    let facade_call = Call::new(fx.facade, "getItems", ms(2)).tagged_query(
        Query::Eq {
            table: fx.items_table,
            column: 1,
            value: Value::Int(product),
        },
        "items-by-product",
        DbAccess::Single,
    );
    let root = Call::new(fx.web, "doGet", ms(5)).invoke(facade_call, 150, 4_000);
    PageRequest::new("Product", root, 14_000)
}

/// Commit page: web -> facade -> entity write.
fn commit_page(fx: &Fixture, id: u64) -> PageRequest {
    let entity_call = Call::new(fx.item, "setPrice", ms(1)).mutate(Mutation::Update {
        table: fx.items_table,
        id: RowId(id),
        column: 2,
        value: Value::Int(1),
    });
    let facade_call = Call::new(fx.facade, "commit", ms(3)).invoke(entity_call, 200, 100);
    let root = Call::new(fx.web, "doPost", ms(4)).invoke(facade_call, 250, 500);
    PageRequest::new("Commit", root, 6_000).with_redirect()
}

/// Executes a bound program and returns the completion time in ms.
fn execute(fx: &Fixture, steps: Vec<Step>) -> f64 {
    struct W {
        net: Network,
        jobs: Jobs<W>,
        done: Option<SimTime>,
    }
    impl JobWorld for W {
        type Event = NetEvent;
        fn network_mut(&mut self) -> &mut Network {
            &mut self.net
        }
        fn jobs_mut(&mut self) -> &mut Jobs<W> {
            &mut self.jobs
        }
    }
    let mut sim: Simulation<W, NetEvent> = Simulation::with_events(W {
        net: Network::new(fx.topology.clone()),
        jobs: Jobs::new(),
        done: None,
    });
    sim.schedule_at(SimTime::ZERO, move |w, ctx| {
        spawn_job(
            w,
            ctx,
            steps,
            Box::new(|w: &mut W, ctx| w.done = Some(ctx.now())),
        );
    });
    sim.run();
    sim.world().done.expect("job completed").as_millis_f64()
}

fn count_parallel(steps: &[Step]) -> usize {
    steps
        .iter()
        .map(|s| match s {
            Step::Parallel(branches) => {
                1 + branches.iter().map(|b| count_parallel(b)).sum::<usize>()
            }
            Step::Fork { steps, .. } => count_parallel(steps),
            _ => 0,
        })
        .sum()
}

fn count_forks(steps: &[Step]) -> usize {
    steps
        .iter()
        .filter(|s| matches!(s, Step::Fork { .. }))
        .count()
}

#[test]
fn centralized_remote_page_costs_two_wan_round_trips() {
    let mut fx = fixture();
    let desc = centralized(&fx);
    let page = item_page(&fx, 1);
    let local = bind!(&mut fx, &desc, fx.client_main, fx.main, &page);
    let remote = bind!(&mut fx, &desc, fx.client_edge, fx.main, &page);
    assert_eq!(local.stats.remote_invocations, 0);
    assert_eq!(remote.stats.remote_invocations, 0);
    let t_local = execute(&fx, local.steps);
    let t_remote = execute(&fx, remote.steps);
    // Handshake + request/response over ~200ms RTT ≈ +400ms.
    let delta = t_remote - t_local;
    assert!((395.0..425.0).contains(&delta), "WAN delta {delta}");
}

#[test]
fn facade_config_pays_one_rmi_for_remote_entry() {
    let mut fx = fixture();
    let desc = facade_config(&fx);
    let page = item_page(&fx, 1);
    // Entry at edge1: web local, facade remote -> 1 RMI.
    let bound = bind!(&mut fx, &desc, fx.client_edge, fx.edge1, &page);
    assert_eq!(bound.stats.remote_invocations, 1);
    assert_eq!(bound.stats.jndi_lookups, 1, "first call resolves the stub");
    let t_first = execute(&fx, bound.steps);

    let bound2 = bind!(&mut fx, &desc, fx.client_edge, fx.edge1, &page);
    assert_eq!(bound2.stats.jndi_lookups, 0, "stub cached afterwards");
    let t_second = execute(&fx, bound2.steps);
    assert!(t_second < t_first, "stub caching saves a WAN round trip");
    // One WAN RMI ≈ 200ms; well below the centralized remote ~430ms.
    assert!((200.0..300.0).contains(&t_second), "got {t_second}");
}

#[test]
fn stub_caching_disabled_pays_jndi_every_time() {
    let mut fx = fixture();
    let mut b = DescriptorBuilder::new(&fx.registry, "no-homefactory", fx.dbn);
    b.central_node(fx.main);
    b.place_replicated(fx.web, fx.main, [fx.edge1, fx.edge2]);
    b.place(fx.facade, fx.main).place(fx.item, fx.main);
    b.stub_caching(false);
    let desc = b.build().unwrap();
    let page = item_page(&fx, 1);
    for _ in 0..3 {
        let bound = bind!(&mut fx, &desc, fx.client_edge, fx.edge1, &page);
        assert_eq!(bound.stats.jndi_lookups, 1);
    }
}

#[test]
fn replica_read_misses_then_hits() {
    let mut fx = fixture();
    let desc = caching_config(&fx, UpdatePropagation::SyncPush);
    let page = item_page(&fx, 3);
    let first = bind!(&mut fx, &desc, fx.client_edge, fx.edge1, &page);
    assert_eq!(first.stats.entity_cache_misses, 1);
    assert_eq!(first.stats.entity_cache_hits, 0);
    let t_first = execute(&fx, first.steps);

    let second = bind!(&mut fx, &desc, fx.client_edge, fx.edge1, &page);
    assert_eq!(second.stats.entity_cache_hits, 1);
    assert_eq!(second.stats.remote_invocations, 0, "fully local page");
    let t_second = execute(&fx, second.steps);
    assert!(t_second < 30.0, "local page, got {t_second}");
    assert!(
        t_first > 200.0,
        "miss fetches across the WAN, got {t_first}"
    );

    // The other edge is independent.
    let other = bind!(&mut fx, &desc, fx.client_edge, fx.edge2, &page);
    assert_eq!(other.stats.entity_cache_misses, 1);
}

#[test]
fn sync_push_blocks_writer_and_keeps_replicas_valid() {
    let mut fx = fixture();
    let desc = caching_config(&fx, UpdatePropagation::SyncPush);
    let item = item_page(&fx, 5);
    // Warm both edges.
    let _ = bind!(&mut fx, &desc, fx.client_edge, fx.edge1, &item);
    let _ = bind!(&mut fx, &desc, fx.client_edge, fx.edge2, &item);

    let commit = commit_page(&fx, 5);
    let bound = bind!(&mut fx, &desc, fx.client_main, fx.main, &commit);
    assert_eq!(bound.stats.sync_push_nodes, 2);
    assert_eq!(
        count_parallel(&bound.steps),
        1,
        "one blocking parallel push"
    );
    let t = execute(&fx, bound.steps);
    assert!(t > 200.0, "writer blocked on WAN push, got {t}");

    // Replica reads stay local and fresh (zero staleness).
    let after = bind!(&mut fx, &desc, fx.client_edge, fx.edge1, &item);
    assert_eq!(after.stats.entity_cache_hits, 1);
    assert_eq!(after.stats.staleness_observed, 0);
}

#[test]
fn invalidate_mode_forces_refetch() {
    let mut fx = fixture();
    let desc = caching_config(&fx, UpdatePropagation::Invalidate);
    let item = item_page(&fx, 5);
    let _ = bind!(&mut fx, &desc, fx.client_edge, fx.edge1, &item);

    let commit = commit_page(&fx, 5);
    let bound = bind!(&mut fx, &desc, fx.client_main, fx.main, &commit);
    assert_eq!(bound.stats.invalidate_nodes, 1);
    assert_eq!(
        count_parallel(&bound.steps),
        0,
        "invalidations do not block"
    );
    let t = execute(&fx, bound.steps);
    assert!(t < 100.0, "writer not blocked, got {t}");

    let after = bind!(&mut fx, &desc, fx.client_edge, fx.edge1, &item);
    assert_eq!(
        after.stats.entity_cache_misses, 1,
        "invalidated row refetches"
    );
}

#[test]
fn async_push_does_not_block_and_defers_state() {
    let mut fx = fixture();
    let desc = caching_config(&fx, UpdatePropagation::AsyncPush);
    let item = item_page(&fx, 7);
    let _ = bind!(&mut fx, &desc, fx.client_edge, fx.edge1, &item);
    let _ = bind!(&mut fx, &desc, fx.client_edge, fx.edge2, &item);

    let commit = commit_page(&fx, 7);
    let bound = bind!(&mut fx, &desc, fx.client_main, fx.main, &commit);
    assert_eq!(bound.stats.async_push_nodes, 2);
    assert_eq!(count_forks(&bound.steps), 1);
    assert_eq!(bound.deferred.len(), 1);
    let t = execute(&fx, bound.steps);
    assert!(t < 100.0, "async writer unblocked, got {t}");

    // Until the deferred apply runs, replica reads observe staleness.
    let stale = bind!(&mut fx, &desc, fx.client_edge, fx.edge1, &item);
    assert_eq!(
        stale.stats.entity_cache_hits, 1,
        "replica still serves (stale) data"
    );
    assert_eq!(stale.stats.staleness_observed, 1);

    // Apply the deferred update (simulating fork completion).
    let (_, apply) = &bound.deferred[0];
    apply.apply(&mut fx.state);
    let fresh = bind!(&mut fx, &desc, fx.client_edge, fx.edge1, &item);
    assert_eq!(fresh.stats.staleness_observed, 0);
}

#[test]
fn query_cache_miss_then_hit_then_push_update() {
    let mut fx = fixture();
    let desc = query_cached_config(&fx, UpdatePropagation::SyncPush);
    let page = product_page(&fx, 1);
    let first = bind!(&mut fx, &desc, fx.client_edge, fx.edge1, &page);
    assert_eq!(first.stats.query_cache_misses, 1);
    let t_first = execute(&fx, first.steps);
    assert!(t_first > 200.0, "miss crosses the WAN, got {t_first}");

    let second = bind!(&mut fx, &desc, fx.client_edge, fx.edge1, &page);
    assert_eq!(second.stats.query_cache_hits, 1);
    let t_second = execute(&fx, second.steps);
    assert!(t_second < 30.0, "hit is local, got {t_second}");

    // A write that affects product 1 pushes the refreshed result: still a hit.
    let commit = commit_page(&fx, 5); // item 5 has product (5-1)%3 == 1
    assert_eq!(
        fx.db.table(fx.items_table).cell(RowId(5), 1),
        Some(&Value::Int(1))
    );
    let w = bind!(&mut fx, &desc, fx.client_main, fx.main, &commit);
    assert!(w.stats.sync_push_nodes >= 1);
    let third = bind!(&mut fx, &desc, fx.client_edge, fx.edge1, &page);
    assert_eq!(
        third.stats.query_cache_hits, 1,
        "pushed update keeps the cache valid"
    );
}

#[test]
fn query_cache_pull_mode_invalidates() {
    let mut fx = fixture();
    // Entity propagation sync, query caches pull-based.
    let desc = query_cached_config(&fx, UpdatePropagation::Invalidate);
    let page = product_page(&fx, 1);
    let _ = bind!(&mut fx, &desc, fx.client_edge, fx.edge1, &page);
    let commit = commit_page(&fx, 5);
    let _ = bind!(&mut fx, &desc, fx.client_main, fx.main, &commit);
    let after = bind!(&mut fx, &desc, fx.client_edge, fx.edge1, &page);
    assert_eq!(
        after.stats.query_cache_misses, 1,
        "pull mode refetches after a write"
    );
}

#[test]
fn untagged_queries_bypass_the_cache() {
    let mut fx = fixture();
    let desc = query_cached_config(&fx, UpdatePropagation::SyncPush);
    // Same query shape, but untagged (e.g. keyword search).
    let facade_call = Call::new(fx.facade, "search", ms(2)).query(
        Query::Like {
            table: fx.items_table,
            column: 0,
            needle: "item".into(),
        },
        DbAccess::Single,
    );
    let root = Call::new(fx.web, "doGet", ms(5)).invoke(facade_call, 150, 4_000);
    let page = PageRequest::new("Search", root, 14_000);
    for _ in 0..2 {
        let bound = bind!(&mut fx, &desc, fx.client_edge, fx.edge1, &page);
        assert_eq!(bound.stats.query_cache_hits, 0);
        assert_eq!(bound.stats.query_cache_misses, 0);
        assert_eq!(bound.stats.db_statements, 1);
    }
}

#[test]
fn writes_route_to_primary_even_from_edges() {
    let mut fx = fixture();
    let desc = caching_config(&fx, UpdatePropagation::SyncPush);
    let commit = commit_page(&fx, 2);
    // Issued at edge1: the entity write must still execute at main.
    let bound = bind!(&mut fx, &desc, fx.client_edge, fx.edge1, &commit);
    // facade resolves locally at edge1, but the entity hop crosses to main.
    assert!(bound.stats.remote_invocations >= 1);
    let t = execute(&fx, bound.steps);
    assert!(t > 200.0, "write crossed the WAN, got {t}");
    // And the database really changed.
    assert_eq!(
        fx.db.table(fx.items_table).cell(RowId(2), 2),
        Some(&Value::Int(1))
    );
}

#[test]
fn bmp_finder_pays_n_plus_one_over_the_wire() {
    let mut fx = fixture();
    // Web tier on edge does DIRECT JDBC (the original Pet Store shape).
    let mut b = DescriptorBuilder::new(&fx.registry, "direct-jdbc", fx.dbn);
    b.central_node(fx.main);
    b.place_replicated(fx.web, fx.main, [fx.edge1, fx.edge2]);
    b.place(fx.facade, fx.main).place(fx.item, fx.main);
    let desc = b.build().unwrap();

    let q = Query::Eq {
        table: fx.items_table,
        column: 1,
        value: Value::Int(1),
    };
    let bmp_root = Call::new(fx.web, "doGet", ms(5)).query(q.clone(), DbAccess::BmpFinder);
    let cmp_root = Call::new(fx.web, "doGet", ms(5)).query(q, DbAccess::Single);
    let bmp = bind!(
        &mut fx,
        &desc,
        fx.client_edge,
        fx.edge1,
        &PageRequest::new("P", bmp_root, 1_000)
    );
    let cmp = bind!(
        &mut fx,
        &desc,
        fx.client_edge,
        fx.edge1,
        &PageRequest::new("P", cmp_root, 1_000)
    );
    let t_bmp = execute(&fx, bmp.steps);
    let t_cmp = execute(&fx, cmp.steps);
    // 4 rows -> 5 statement round trips vs 1: each ~200ms over the WAN.
    assert!(
        t_bmp - t_cmp > 700.0,
        "n+1 penalty missing: bmp={t_bmp} cmp={t_cmp}"
    );
}

#[test]
fn deterministic_binding_given_seed() {
    let run = || {
        let mut fx = fixture();
        let desc = caching_config(&fx, UpdatePropagation::SyncPush);
        let mut times = Vec::new();
        for i in 0..5 {
            let page = item_page(&fx, 1 + i);
            let bound = bind!(&mut fx, &desc, fx.client_edge, fx.edge1, &page);
            times.push(execute(&fx, bound.steps));
        }
        times
    };
    assert_eq!(run(), run());
}

#[test]
fn centralized_read_bind_is_replayable() {
    let mut fx = fixture();
    let desc = centralized(&fx);
    let page = item_page(&fx, 3);
    let bound = bind!(&mut fx, &desc, fx.client_main, fx.main, &page);
    assert!(bound.replayable, "all-local read bind must be certified");
    assert_eq!(bound.read_tables, vec![fx.items_table]);
    assert!(bound.written_tables.is_empty());
    // The certificate survives the WAN client too: the HTTP envelope crosses
    // the network, but the bind itself stays on the central server.
    let bound = bind!(&mut fx, &desc, fx.client_edge, fx.main, &page);
    assert!(bound.replayable);
}

#[test]
fn replica_hit_is_replayable_but_cold_miss_is_not() {
    let mut fx = fixture();
    let desc = caching_config(&fx, UpdatePropagation::SyncPush);
    let page = item_page(&fx, 5);
    let cold = bind!(&mut fx, &desc, fx.client_edge, fx.edge1, &page);
    assert!(!cold.replayable, "cold replica miss repopulates state");
    let warm = bind!(&mut fx, &desc, fx.client_edge, fx.edge1, &page);
    assert!(warm.replayable, "valid replica hit draws nothing");
    assert_eq!(warm.read_tables, vec![fx.items_table]);
    assert!(warm.stats.entity_cache_hits > 0);
}

#[test]
fn write_bind_reports_written_tables() {
    let mut fx = fixture();
    let desc = centralized(&fx);
    let page = commit_page(&fx, 2);
    let bound = bind!(&mut fx, &desc, fx.client_main, fx.main, &page);
    assert!(!bound.replayable, "writes are never memoizable");
    assert_eq!(bound.written_tables, vec![fx.items_table]);
}

#[test]
fn query_cache_hit_is_replayable_after_population() {
    let mut fx = fixture();
    let desc = query_cached_config(&fx, UpdatePropagation::SyncPush);
    let page = product_page(&fx, 1);
    let cold = bind!(&mut fx, &desc, fx.client_edge, fx.edge1, &page);
    assert!(!cold.replayable, "cache population is a cold transition");
    let warm = bind!(&mut fx, &desc, fx.client_edge, fx.edge1, &page);
    assert!(warm.replayable);
    assert_eq!(warm.read_tables, vec![fx.items_table]);
    assert!(warm.stats.query_cache_hits > 0);
}
