//! # mutsvc-middleware — component middleware model
//!
//! A J2EE-shaped component middleware for the wide-area distribution testbed:
//! the layer the paper's §5 wants containers to provide. Applications declare
//! *logical* component call trees; deployments are *descriptors*; the
//! [`binding::Binder`] compiles the two into executable network step
//! programs, maintaining real container state (entity replica caches, query
//! caches, stub caches) along the way.
//!
//! The paper's five experimental configurations (§4.1–§4.5) are five
//! descriptors over unchanged call trees:
//!
//! | Configuration | Descriptor difference |
//! |---|---|
//! | Centralized | everything on the main server |
//! | Remote façade | web + stateful session beans on edges, stub caching |
//! | Stateful caching | entity read-replicas on edges, `SyncPush` |
//! | Query caching | edge query caches for tagged aggregate queries |
//! | Asynchronous updates | `AsyncPush` through a JMS broker |
//!
//! See [`binding`] for the resolution rules and [`descriptor`] for the
//! declaration surface.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binding;
pub mod component;
pub mod descriptor;
pub mod invocation;
pub mod state;

pub use binding::{
    BindStats, Binder, BoundRequest, ContainerCosts, Crossing, CrossingKind, DeferredApply,
};
pub use component::{ComponentId, ComponentKind, ComponentRegistry, ComponentSpec};
pub use descriptor::{
    DeploymentDescriptor, DescriptorBuilder, Placement, QueryCachePolicy, UpdatePropagation,
};
pub use invocation::{Action, Call, DbAccess, Invoke, MutateAction, PageRequest, QueryAction};
pub use state::{ContainerState, RowCacheState};
