//! The component model: kinds, specifications and the registry.
//!
//! Mirrors the J2EE taxonomy the paper works with (§2.2): web components
//! (servlets/JSPs), stateful and stateless session beans, entity beans and
//! message-driven beans. Entity components carry the backing table so the
//! container can derive invalidation and update-propagation wiring
//! automatically — the §5 "pattern implementation automation" thesis.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use mutsvc_relstore::TableId;

/// Identifies a logical component within a [`ComponentRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ComponentId(pub(crate) usize);

impl ComponentId {
    /// Dense index of the component.
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for ComponentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// The component taxonomy of the paper's §2.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ComponentKind {
    /// Servlets, JSPs and web-tier JavaBeans: the client-facing tier,
    /// instantiated independently on every server that accepts HTTP traffic.
    Web,
    /// Per-client conversational state (`ShoppingCart`), deployable at the
    /// client's entry server because it is never shared.
    StatefulSession,
    /// Stateless services and façades; freely replicable.
    StatelessSession,
    /// Shared transactional state backed by a database table. Has one
    /// read-write primary and optionally read-only replicas (§4.3).
    Entity,
    /// Asynchronous subscriber applying pushed updates (§4.5).
    MessageDriven,
}

impl ComponentKind {
    /// Whether instances of this kind hold shared state that must stay
    /// consistent across nodes.
    pub fn is_shared_state(self) -> bool {
        matches!(self, ComponentKind::Entity)
    }
}

/// Static description of one logical component.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ComponentSpec {
    /// Unique component name (`"Catalog"`, `"ItemEJB"`, …).
    pub name: String,
    /// Taxonomy kind.
    pub kind: ComponentKind,
    /// For entities: the backing table.
    pub table: Option<TableId>,
}

/// All logical components of an application.
#[derive(Debug, Clone, Default)]
pub struct ComponentRegistry {
    specs: Vec<ComponentSpec>,
    by_name: HashMap<String, ComponentId>,
}

impl ComponentRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a non-entity component.
    ///
    /// # Panics
    ///
    /// Panics on duplicate names or when `kind` is [`ComponentKind::Entity`]
    /// (use [`Self::register_entity`]).
    pub fn register(&mut self, name: &str, kind: ComponentKind) -> ComponentId {
        assert!(
            kind != ComponentKind::Entity,
            "entities must be registered with register_entity"
        );
        self.push(name, kind, None)
    }

    /// Registers an entity component backed by `table`.
    ///
    /// # Panics
    ///
    /// Panics on duplicate names.
    pub fn register_entity(&mut self, name: &str, table: TableId) -> ComponentId {
        self.push(name, ComponentKind::Entity, Some(table))
    }

    fn push(&mut self, name: &str, kind: ComponentKind, table: Option<TableId>) -> ComponentId {
        assert!(
            !self.by_name.contains_key(name),
            "duplicate component {name}"
        );
        let id = ComponentId(self.specs.len());
        self.specs.push(ComponentSpec {
            name: name.to_string(),
            kind,
            table,
        });
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// The specification of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this registry.
    pub fn spec(&self, id: ComponentId) -> &ComponentSpec {
        &self.specs[id.0]
    }

    /// Looks a component up by name.
    pub fn by_name(&self, name: &str) -> Option<ComponentId> {
        self.by_name.get(name).copied()
    }

    /// Number of registered components.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// `true` when no components are registered.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Iterates all component ids.
    pub fn ids(&self) -> impl Iterator<Item = ComponentId> + '_ {
        (0..self.specs.len()).map(ComponentId)
    }

    /// All entity components backed by `table`.
    pub fn entities_of_table(&self, table: TableId) -> Vec<ComponentId> {
        self.ids()
            .filter(|&id| self.specs[id.0].table == Some(table))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mutsvc_relstore::DatabaseBuilder;

    #[test]
    fn register_and_lookup() {
        let mut db = DatabaseBuilder::new();
        let t = db.table("item", &["name"], 10);
        let mut reg = ComponentRegistry::new();
        let web = reg.register("main.jsp", ComponentKind::Web);
        let item = reg.register_entity("ItemEJB", t);
        assert_eq!(reg.by_name("main.jsp"), Some(web));
        assert_eq!(reg.spec(item).table, Some(t));
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.entities_of_table(t), vec![item]);
        assert!(reg.by_name("nope").is_none());
    }

    #[test]
    fn kind_classification() {
        assert!(ComponentKind::Entity.is_shared_state());
        assert!(!ComponentKind::StatefulSession.is_shared_state());
        assert!(!ComponentKind::Web.is_shared_state());
    }

    #[test]
    #[should_panic(expected = "duplicate component")]
    fn duplicate_name_panics() {
        let mut reg = ComponentRegistry::new();
        reg.register("x", ComponentKind::Web);
        reg.register("x", ComponentKind::Web);
    }

    #[test]
    #[should_panic(expected = "register_entity")]
    fn entity_via_register_panics() {
        let mut reg = ComponentRegistry::new();
        reg.register("e", ComponentKind::Entity);
    }
}
