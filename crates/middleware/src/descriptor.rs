//! Deployment descriptors.
//!
//! The paper's central argument (§5) is that the wide-area design patterns —
//! remote façade, read-mostly entity caching, query caching, asynchronous
//! update propagation — should be *declared* in extended deployment
//! descriptors and wired automatically by containers. [`DeploymentDescriptor`]
//! is that declaration: the five experimental configurations of §4 differ
//! only in their descriptors, never in application code.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use mutsvc_netsim::NodeId;

use crate::component::{ComponentId, ComponentKind, ComponentRegistry};

/// Where a component's instances live.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    /// The authoritative instance (read-write primary for entities, the
    /// delegate-of-last-resort for session beans).
    pub primary: NodeId,
    /// Additional instances. For entities these are **read-only replicas**
    /// (§4.3); for web/session components, independent per-server instances.
    pub replicas: BTreeSet<NodeId>,
}

impl Placement {
    /// A placement with no replicas.
    pub fn single(primary: NodeId) -> Self {
        Placement {
            primary,
            replicas: BTreeSet::new(),
        }
    }

    /// All nodes hosting an instance.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        std::iter::once(self.primary).chain(self.replicas.iter().copied())
    }

    /// Whether `node` hosts an instance.
    pub fn hosts(&self, node: NodeId) -> bool {
        self.primary == node || self.replicas.contains(&node)
    }
}

/// How updates reach read-only entity replicas and edge query caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UpdatePropagation {
    /// No replicas exist; nothing to propagate.
    None,
    /// Pull-based: invalidate remote copies; the next read refetches (§4.3's
    /// baseline approach, "unacceptable in the wide area" for entity state
    /// but used for the read-only Pet Store catalog caches).
    Invalidate,
    /// Push updated state synchronously; the writer **blocks** until every
    /// replica acknowledges (zero staleness, §4.3).
    SyncPush,
    /// Publish updates to a JMS topic consumed by message-driven façades on
    /// the edges; the writer does not block (§4.5).
    AsyncPush,
}

impl UpdatePropagation {
    /// Whether the writer's response waits for propagation.
    pub fn blocks_writer(self) -> bool {
        matches!(self, UpdatePropagation::SyncPush)
    }
}

/// Declarative configuration of edge query caching (§4.4).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryCachePolicy {
    /// Nodes running a query-cache container.
    pub nodes: BTreeSet<NodeId>,
    /// Cacheable query tags (from the extended deployment descriptor; the
    /// Pet Store caches `products-by-category` and `items-by-product`,
    /// RUBiS caches every browse query — keyword search is never listed).
    pub cacheable_tags: BTreeSet<String>,
    /// How cached results learn about writes.
    pub propagation: UpdatePropagation,
}

impl QueryCachePolicy {
    /// A disabled policy (no cache nodes).
    pub fn disabled() -> Self {
        QueryCachePolicy {
            nodes: BTreeSet::new(),
            cacheable_tags: BTreeSet::new(),
            propagation: UpdatePropagation::None,
        }
    }

    /// Whether queries tagged `tag` are cacheable at `node`.
    pub fn covers(&self, node: NodeId, tag: &str) -> bool {
        self.nodes.contains(&node) && self.cacheable_tags.contains(tag)
    }
}

/// The complete deployment of an application onto a topology.
#[derive(Debug, Clone)]
pub struct DeploymentDescriptor {
    /// A human-readable configuration name ("centralized", "remote-facade"…).
    pub name: String,
    /// Per-component placements.
    pub placements: BTreeMap<ComponentId, Placement>,
    /// The node hosting the database server.
    pub db_node: NodeId,
    /// Propagation mode for read-only entity replicas.
    pub entity_propagation: UpdatePropagation,
    /// Edge query caching.
    pub query_cache: QueryCachePolicy,
    /// Whether home/remote stubs are cached (EJBHomeFactory, §4.2). When
    /// disabled every remote invocation pays an extra JNDI round trip.
    pub stub_caching: bool,
    /// The JMS broker node for [`UpdatePropagation::AsyncPush`] (typically
    /// the main server, co-located with the writers).
    pub jms_broker: NodeId,
    /// The main application server: hosts the JNDI tree and the central
    /// façades that edge containers delegate to on cache misses.
    pub central_node: NodeId,
    /// Eagerly populate edge caches (entity replicas and query caches) at
    /// deployment time instead of warming on demand. Matches push-based
    /// propagation stacks (the paper's RUBiS caches), where a freshly
    /// deployed cache is loaded once and kept fresh by pushes thereafter.
    pub eager_cache_warmup: bool,
}

impl DeploymentDescriptor {
    /// The placement of `component`.
    ///
    /// # Panics
    ///
    /// Panics if the component is not placed (validated builders prevent this).
    pub fn placement(&self, component: ComponentId) -> &Placement {
        self.placements
            .get(&component)
            .unwrap_or_else(|| panic!("component {component} is not placed"))
    }

    /// Nodes hosting read-only replicas of `entity` (excluding the primary).
    pub fn replica_nodes(&self, entity: ComponentId) -> impl Iterator<Item = NodeId> + '_ {
        self.placement(entity).replicas.iter().copied()
    }

    /// Re-homes `component`'s authoritative instance onto `to` — the
    /// descriptor half of a live migration. A read-only replica already at
    /// `to` is absorbed into the primary role (the same semantics as the
    /// placement optimizer's `MovePrimary`); the displaced former primary
    /// keeps no instance. Moving onto the current primary is a no-op.
    ///
    /// # Panics
    ///
    /// Panics if the component is not placed.
    pub fn move_primary(&mut self, component: ComponentId, to: NodeId) {
        let placement = self
            .placements
            .get_mut(&component)
            .unwrap_or_else(|| panic!("component {component} is not placed"));
        if placement.primary == to {
            return;
        }
        placement.replicas.remove(&to);
        placement.primary = to;
    }

    /// Adds a read-only replica of `component` at `node`: the descriptor
    /// half of a live replication order (the placement optimizer's
    /// `AddReplica`). Replicating onto the current primary is a no-op.
    ///
    /// # Panics
    ///
    /// Panics if the component is not placed.
    pub fn add_replica(&mut self, component: ComponentId, node: NodeId) {
        let placement = self
            .placements
            .get_mut(&component)
            .unwrap_or_else(|| panic!("component {component} is not placed"));
        if placement.primary == node {
            return;
        }
        placement.replicas.insert(node);
    }
}

/// Validating builder for [`DeploymentDescriptor`].
#[derive(Debug)]
pub struct DescriptorBuilder<'a> {
    registry: &'a ComponentRegistry,
    name: String,
    placements: BTreeMap<ComponentId, Placement>,
    db_node: NodeId,
    entity_propagation: UpdatePropagation,
    query_cache: QueryCachePolicy,
    stub_caching: bool,
    jms_broker: NodeId,
    central_node: NodeId,
    eager_cache_warmup: bool,
}

impl<'a> DescriptorBuilder<'a> {
    /// Starts a descriptor for `registry` with the database on `db_node`.
    /// The central (main) application server defaults to `db_node` until
    /// overridden with [`Self::central_node`].
    pub fn new(registry: &'a ComponentRegistry, name: &str, db_node: NodeId) -> Self {
        DescriptorBuilder {
            registry,
            name: name.to_string(),
            placements: BTreeMap::new(),
            db_node,
            entity_propagation: UpdatePropagation::None,
            query_cache: QueryCachePolicy::disabled(),
            stub_caching: true,
            jms_broker: db_node,
            central_node: db_node,
            eager_cache_warmup: false,
        }
    }

    /// Enables eager population of edge caches at deployment.
    pub fn eager_cache_warmup(&mut self, enabled: bool) -> &mut Self {
        self.eager_cache_warmup = enabled;
        self
    }

    /// Sets the main application server (JNDI tree, central façades, JMS
    /// broker default).
    pub fn central_node(&mut self, node: NodeId) -> &mut Self {
        self.central_node = node;
        self.jms_broker = node;
        self
    }

    /// Places a component's primary instance.
    pub fn place(&mut self, component: ComponentId, primary: NodeId) -> &mut Self {
        self.placements
            .insert(component, Placement::single(primary));
        self
    }

    /// Places a component's primary on `primary` and instances on each of
    /// `replicas` (ignoring `primary` if repeated).
    pub fn place_replicated(
        &mut self,
        component: ComponentId,
        primary: NodeId,
        replicas: impl IntoIterator<Item = NodeId>,
    ) -> &mut Self {
        let replicas: BTreeSet<NodeId> = replicas.into_iter().filter(|&n| n != primary).collect();
        self.placements
            .insert(component, Placement { primary, replicas });
        self
    }

    /// Sets the entity update propagation mode.
    pub fn entity_propagation(&mut self, mode: UpdatePropagation) -> &mut Self {
        self.entity_propagation = mode;
        self
    }

    /// Enables query caching at `nodes` for queries tagged `tags`.
    pub fn query_cache(
        &mut self,
        nodes: impl IntoIterator<Item = NodeId>,
        tags: impl IntoIterator<Item = &'a str>,
        propagation: UpdatePropagation,
    ) -> &mut Self {
        self.query_cache = QueryCachePolicy {
            nodes: nodes.into_iter().collect(),
            cacheable_tags: tags.into_iter().map(str::to_string).collect(),
            propagation,
        };
        self
    }

    /// Enables or disables stub caching (EJBHomeFactory).
    pub fn stub_caching(&mut self, enabled: bool) -> &mut Self {
        self.stub_caching = enabled;
        self
    }

    /// Sets the JMS broker node used by asynchronous propagation.
    pub fn jms_broker(&mut self, node: NodeId) -> &mut Self {
        self.jms_broker = node;
        self
    }

    /// Validates and builds the descriptor.
    ///
    /// # Errors
    ///
    /// Returns a message when a component is unplaced, a non-shared component
    /// declares replicas together with entity propagation, or replicas are
    /// declared without a propagation mode.
    pub fn build(&self) -> Result<DeploymentDescriptor, String> {
        for id in self.registry.ids() {
            if !self.placements.contains_key(&id) {
                return Err(format!(
                    "component {} is not placed",
                    self.registry.spec(id).name
                ));
            }
        }
        let mut any_entity_replicas = false;
        for (&id, placement) in &self.placements {
            let spec = self.registry.spec(id);
            if spec.kind == ComponentKind::Entity && !placement.replicas.is_empty() {
                any_entity_replicas = true;
            }
        }
        if any_entity_replicas && self.entity_propagation == UpdatePropagation::None {
            return Err(
                "entity read-only replicas declared but no propagation mode set".to_string(),
            );
        }
        Ok(DeploymentDescriptor {
            name: self.name.clone(),
            placements: self.placements.clone(),
            db_node: self.db_node,
            entity_propagation: self.entity_propagation,
            query_cache: self.query_cache.clone(),
            stub_caching: self.stub_caching,
            jms_broker: self.jms_broker,
            central_node: self.central_node,
            eager_cache_warmup: self.eager_cache_warmup,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::ComponentKind;
    use mutsvc_netsim::TopologyBuilder;
    use mutsvc_relstore::DatabaseBuilder;

    fn setup() -> (ComponentRegistry, ComponentId, ComponentId, NodeId, NodeId) {
        let mut dbb = DatabaseBuilder::new();
        let t = dbb.table("item", &["n"], 10);
        let mut reg = ComponentRegistry::new();
        let web = reg.register("web", ComponentKind::Web);
        let item = reg.register_entity("Item", t);
        let mut tb = TopologyBuilder::new();
        let main = tb.node("main", 2);
        let edge = tb.node("edge", 2);
        tb.duplex_link(
            main,
            edge,
            mutsvc_desim::SimDuration::from_millis(100),
            100e6,
        );
        (reg, web, item, main, edge)
    }

    #[test]
    fn build_validates_full_placement() {
        let (reg, web, item, main, edge) = setup();
        let mut b = DescriptorBuilder::new(&reg, "test", main);
        b.place(web, main);
        assert!(b.build().unwrap_err().contains("Item"));
        b.place_replicated(item, main, [edge]);
        assert!(b.build().unwrap_err().contains("propagation"));
        b.entity_propagation(UpdatePropagation::SyncPush);
        let d = b.build().unwrap();
        assert_eq!(d.placement(item).primary, main);
        assert!(d.placement(item).hosts(edge));
        assert_eq!(d.replica_nodes(item).collect::<Vec<_>>(), vec![edge]);
    }

    #[test]
    fn primary_excluded_from_replicas() {
        let (reg, web, item, main, edge) = setup();
        let mut b = DescriptorBuilder::new(&reg, "test", main);
        b.place(web, edge);
        b.place_replicated(item, main, [main, edge]);
        b.entity_propagation(UpdatePropagation::AsyncPush);
        let d = b.build().unwrap();
        assert_eq!(d.placement(item).replicas.len(), 1);
        assert_eq!(d.placement(item).nodes().count(), 2);
    }

    #[test]
    fn move_primary_rehomes_and_absorbs_destination_replica() {
        let (reg, web, item, main, edge) = setup();
        let mut b = DescriptorBuilder::new(&reg, "mv", main);
        b.place(web, main);
        b.place_replicated(item, main, [edge]);
        b.entity_propagation(UpdatePropagation::AsyncPush);
        let mut d = b.build().unwrap();
        d.move_primary(item, edge);
        assert_eq!(d.placement(item).primary, edge);
        assert!(
            d.placement(item).replicas.is_empty(),
            "the destination replica is absorbed, the old primary keeps nothing"
        );
        // Moving onto the current primary is a no-op.
        d.move_primary(web, main);
        assert_eq!(d.placement(web).primary, main);
    }

    #[test]
    fn query_cache_policy_coverage() {
        let (reg, web, item, main, edge) = setup();
        let mut b = DescriptorBuilder::new(&reg, "qc", main);
        b.place(web, main).place(item, main);
        b.query_cache(
            [edge],
            ["products-by-category"],
            UpdatePropagation::Invalidate,
        );
        let d = b.build().unwrap();
        assert!(d.query_cache.covers(edge, "products-by-category"));
        assert!(!d.query_cache.covers(main, "products-by-category"));
        assert!(!d.query_cache.covers(edge, "search"));
    }

    #[test]
    fn propagation_blocking_semantics() {
        assert!(UpdatePropagation::SyncPush.blocks_writer());
        assert!(!UpdatePropagation::AsyncPush.blocks_writer());
        assert!(!UpdatePropagation::Invalidate.blocks_writer());
        assert!(!UpdatePropagation::None.blocks_writer());
    }

    #[test]
    fn defaults_are_sensible() {
        let (reg, web, item, main, _) = setup();
        let mut b = DescriptorBuilder::new(&reg, "defaults", main);
        b.place(web, main).place(item, main);
        let d = b.build().unwrap();
        assert!(d.stub_caching);
        assert_eq!(d.jms_broker, main);
        assert_eq!(d.query_cache, QueryCachePolicy::disabled());
        assert_eq!(d.name, "defaults");
    }
}
