//! Live container state.
//!
//! The binder consults and mutates *real* cache state rather than assumed hit
//! ratios: read-only entity replicas track which rows are loaded and valid,
//! query-cache containers track which results are cached and fresh, and stub
//! caches track which `(node, component)` pairs have resolved their
//! home/remote stubs. Warm-up behaviour therefore emerges naturally, and
//! invariants such as §4.3's zero-staleness guarantee are testable.

use std::collections::{HashMap, HashSet};

use mutsvc_netsim::NodeId;
use mutsvc_relstore::{Query, RowId, TableId};

use crate::component::ComponentId;

/// State of one read-only entity replica's row cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowCacheState {
    /// Never loaded at this replica.
    Absent,
    /// Loaded and fresh.
    Valid,
    /// Loaded but invalidated by a write (pull propagation).
    Invalid,
}

/// Mutable runtime state of every container in the deployment.
#[derive(Debug, Clone, Default)]
pub struct ContainerState {
    /// Read-only entity replica caches: (entity, node) → row → valid?
    entity_rows: HashMap<(ComponentId, NodeId), HashMap<RowId, bool>>,
    /// Query caches keyed by `(node, table)` → query → valid?, so write
    /// invalidation scans only the written table's queries instead of every
    /// result cached at the node (the dominant per-write cost at high load).
    query_results: HashMap<(NodeId, TableId), HashMap<Query, bool>>,
    /// Resolved stubs: (node, component).
    stubs: HashSet<(NodeId, ComponentId)>,
    /// Monotonic version counter per entity row, for staleness audits.
    versions: HashMap<(ComponentId, RowId), u64>,
    /// Version last seen by each replica row, for staleness audits.
    replica_versions: HashMap<(ComponentId, NodeId, RowId), u64>,
}

impl ContainerState {
    /// Creates empty (cold) state.
    pub fn new() -> Self {
        Self::default()
    }

    // ---- entity replica rows ----------------------------------------------

    /// The cache state of `row` at the replica of `entity` on `node`.
    pub fn entity_row(&self, entity: ComponentId, node: NodeId, row: RowId) -> RowCacheState {
        match self
            .entity_rows
            .get(&(entity, node))
            .and_then(|m| m.get(&row))
        {
            None => RowCacheState::Absent,
            Some(true) => RowCacheState::Valid,
            Some(false) => RowCacheState::Invalid,
        }
    }

    /// Marks `row` loaded-and-valid at a replica (after a miss fetch or a
    /// pushed update) and records the version it now reflects.
    pub fn load_entity_row(&mut self, entity: ComponentId, node: NodeId, row: RowId) {
        self.entity_rows
            .entry((entity, node))
            .or_default()
            .insert(row, true);
        let version = self.version(entity, row);
        self.replica_versions.insert((entity, node, row), version);
    }

    /// Invalidates `row` at a replica if it is loaded (pull propagation).
    pub fn invalidate_entity_row(&mut self, entity: ComponentId, node: NodeId, row: RowId) {
        if let Some(rows) = self.entity_rows.get_mut(&(entity, node)) {
            if let Some(valid) = rows.get_mut(&row) {
                *valid = false;
            }
        }
    }

    /// Rows currently loaded (valid or not) at a replica.
    pub fn loaded_rows(&self, entity: ComponentId, node: NodeId) -> Vec<RowId> {
        let mut rows: Vec<RowId> = self
            .entity_rows
            .get(&(entity, node))
            .map(|m| m.keys().copied().collect())
            .unwrap_or_default();
        rows.sort_unstable();
        rows
    }

    // ---- versions / staleness ---------------------------------------------

    /// Bumps the authoritative version of an entity row (a committed write).
    pub fn bump_version(&mut self, entity: ComponentId, row: RowId) -> u64 {
        let v = self.versions.entry((entity, row)).or_insert(0);
        *v += 1;
        *v
    }

    /// The authoritative version of an entity row.
    pub fn version(&self, entity: ComponentId, row: RowId) -> u64 {
        self.versions.get(&(entity, row)).copied().unwrap_or(0)
    }

    /// The version a replica row last reflected.
    pub fn replica_version(&self, entity: ComponentId, node: NodeId, row: RowId) -> u64 {
        self.replica_versions
            .get(&(entity, node, row))
            .copied()
            .unwrap_or(0)
    }

    /// Version lag of a replica row: 0 means fresh.
    pub fn staleness(&self, entity: ComponentId, node: NodeId, row: RowId) -> u64 {
        self.version(entity, row)
            .saturating_sub(self.replica_version(entity, node, row))
    }

    // ---- query caches -------------------------------------------------------

    /// Whether `query` is cached-and-valid at `node`.
    pub fn query_cached(&self, node: NodeId, query: &Query) -> bool {
        self.query_results
            .get(&(node, query.table()))
            .and_then(|m| m.get(query))
            .copied()
            .unwrap_or(false)
    }

    /// Stores (or refreshes) a query result at `node`.
    pub fn cache_query(&mut self, node: NodeId, query: Query) {
        self.query_results
            .entry((node, query.table()))
            .or_default()
            .insert(query, true);
    }

    /// Invalidates a cached query at `node` if present; returns whether it
    /// was cached.
    pub fn invalidate_query(&mut self, node: NodeId, query: &Query) -> bool {
        if let Some(m) = self.query_results.get_mut(&(node, query.table())) {
            if let Some(valid) = m.get_mut(query) {
                *valid = false;
                return true;
            }
        }
        false
    }

    /// All queries currently stored (valid or not) at `node`, any table.
    pub fn cached_queries(&self, node: NodeId) -> Vec<Query> {
        self.query_results
            .iter()
            .filter(|((n, _), _)| *n == node)
            .flat_map(|(_, m)| m.keys().cloned())
            .collect()
    }

    /// Queries stored (valid or not) at `node` that read `table` — the only
    /// ones a write to `table` can invalidate. Borrowed iteration: the write
    /// path filters with [`mutsvc_relstore::affects`] without cloning the
    /// node's whole cache.
    pub fn cached_queries_on(
        &self,
        node: NodeId,
        table: TableId,
    ) -> impl Iterator<Item = &Query> + '_ {
        self.query_results
            .get(&(node, table))
            .into_iter()
            .flat_map(|m| m.keys())
    }

    // ---- stub caches --------------------------------------------------------

    /// Whether `node` has resolved stubs for `component`.
    pub fn stub_cached(&self, node: NodeId, component: ComponentId) -> bool {
        self.stubs.contains(&(node, component))
    }

    /// Records a resolved stub.
    pub fn cache_stub(&mut self, node: NodeId, component: ComponentId) {
        self.stubs.insert((node, component));
    }

    // ---- failure semantics --------------------------------------------------

    /// Drops every cache `node` holds: entity rows, query results, resolved
    /// stubs, and replica sync watermarks. Models a container process crash —
    /// the restarted process comes back cold (per §4.3–§4.4 every cache is
    /// memory-resident) and must re-warm. Authoritative row versions live
    /// with the database, not the container, and are untouched.
    pub fn evict_node(&mut self, node: NodeId) {
        self.entity_rows.retain(|(_, n), _| *n != node);
        self.query_results.retain(|(n, _), _| *n != node);
        self.stubs.retain(|(n, _)| *n != node);
        self.replica_versions.retain(|(_, n, _), _| *n != node);
    }

    /// Drops every node's resolved stubs for one component. A migrated
    /// component's cached home/remote stubs point at the old host; callers
    /// re-resolve through JNDI on next use (paying the lookup round trip the
    /// stub cache normally elides).
    pub fn invalidate_component_stubs(&mut self, component: ComponentId) {
        self.stubs.retain(|(_, c)| *c != component);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids() -> (ComponentId, NodeId, NodeId) {
        // Construct through public registries in other crates' tests; here we
        // only need opaque ids.
        let mut reg = crate::component::ComponentRegistry::new();
        let c = reg.register("c", crate::component::ComponentKind::StatelessSession);
        let mut tb = mutsvc_netsim::TopologyBuilder::new();
        let a = tb.node("a", 1);
        let b = tb.node("b", 1);
        tb.duplex_link(a, b, mutsvc_desim::SimDuration::from_millis(1), 1e6);
        (c, a, b)
    }

    #[test]
    fn entity_row_lifecycle() {
        let (e, main, edge) = ids();
        let mut s = ContainerState::new();
        let row = RowId(7);
        assert_eq!(s.entity_row(e, edge, row), RowCacheState::Absent);
        s.load_entity_row(e, edge, row);
        assert_eq!(s.entity_row(e, edge, row), RowCacheState::Valid);
        s.invalidate_entity_row(e, edge, row);
        assert_eq!(s.entity_row(e, edge, row), RowCacheState::Invalid);
        s.load_entity_row(e, edge, row);
        assert_eq!(s.entity_row(e, edge, row), RowCacheState::Valid);
        assert_eq!(s.entity_row(e, main, row), RowCacheState::Absent);
        assert_eq!(s.loaded_rows(e, edge), vec![row]);
    }

    #[test]
    fn invalidating_an_absent_row_is_a_noop() {
        let (e, _, edge) = ids();
        let mut s = ContainerState::new();
        s.invalidate_entity_row(e, edge, RowId(1));
        assert_eq!(s.entity_row(e, edge, RowId(1)), RowCacheState::Absent);
    }

    #[test]
    fn staleness_tracks_version_lag() {
        let (e, _, edge) = ids();
        let mut s = ContainerState::new();
        let row = RowId(1);
        s.load_entity_row(e, edge, row);
        assert_eq!(s.staleness(e, edge, row), 0);
        s.bump_version(e, row);
        s.bump_version(e, row);
        assert_eq!(s.staleness(e, edge, row), 2);
        s.load_entity_row(e, edge, row); // pushed update arrives
        assert_eq!(s.staleness(e, edge, row), 0);
        assert_eq!(s.version(e, row), 2);
    }

    #[test]
    fn query_cache_lifecycle() {
        let (_, _, edge) = ids();
        let mut dbb = mutsvc_relstore::DatabaseBuilder::new();
        let t = dbb.table("t", &["a"], 10);
        let q = Query::All { table: t };
        let mut s = ContainerState::new();
        assert!(!s.query_cached(edge, &q));
        s.cache_query(edge, q.clone());
        assert!(s.query_cached(edge, &q));
        assert!(s.invalidate_query(edge, &q));
        assert!(!s.query_cached(edge, &q));
        assert!(!s.invalidate_query(
            edge,
            &Query::ByPk {
                table: t,
                id: RowId(1)
            }
        ));
        assert_eq!(s.cached_queries(edge).len(), 1);
    }

    #[test]
    fn stub_cache() {
        let (c, a, _) = ids();
        let mut s = ContainerState::new();
        assert!(!s.stub_cached(a, c));
        s.cache_stub(a, c);
        assert!(s.stub_cached(a, c));
    }

    #[test]
    fn component_stub_invalidation_spans_nodes_but_not_components() {
        let (_, a, b) = ids();
        let mut reg = crate::component::ComponentRegistry::new();
        let c = reg.register("c", crate::component::ComponentKind::StatelessSession);
        let other = reg.register("other", crate::component::ComponentKind::StatelessSession);
        let mut s = ContainerState::new();
        s.cache_stub(a, c);
        s.cache_stub(b, c);
        s.cache_stub(a, other);
        s.invalidate_component_stubs(c);
        assert!(!s.stub_cached(a, c) && !s.stub_cached(b, c));
        assert!(s.stub_cached(a, other), "other components keep their stubs");
    }

    /// A crash evicts every cache on the node — entity rows, query results,
    /// stubs, replica watermarks — while other nodes and the authoritative
    /// versions survive.
    #[test]
    fn evict_node_cold_starts_only_that_node() {
        let (e, main, edge) = ids();
        let mut dbb = mutsvc_relstore::DatabaseBuilder::new();
        let t = dbb.table("t", &["a"], 10);
        let q = Query::All { table: t };
        let row = RowId(3);
        let mut s = ContainerState::new();
        s.bump_version(e, row);
        s.load_entity_row(e, edge, row);
        s.load_entity_row(e, main, row);
        s.cache_query(edge, q.clone());
        s.cache_stub(edge, e);
        assert_eq!(s.staleness(e, edge, row), 0);

        s.evict_node(edge);
        assert_eq!(s.entity_row(e, edge, row), RowCacheState::Absent);
        assert!(!s.query_cached(edge, &q));
        assert!(!s.stub_cached(edge, e));
        // The restarted container is detectably behind the authority…
        assert_eq!(s.staleness(e, edge, row), 1);
        // …while the untouched node and the authoritative version survive.
        assert_eq!(s.entity_row(e, main, row), RowCacheState::Valid);
        assert_eq!(s.version(e, row), 1);
    }
}
