//! Logical invocation trees.
//!
//! An application page is described as a tree of component invocations with
//! CPU demands, database operations and payload sizes — *logical* in that it
//! names components, not nodes. The [`binding`](crate::binding) module
//! resolves a tree against a deployment descriptor into a concrete network
//! step program. The same tree therefore serves every configuration, which is
//! exactly how the paper's applications behave once the façade refactoring is
//! in place.

use mutsvc_desim::time::SimDuration;
use mutsvc_relstore::{Mutation, Query};

use crate::component::ComponentId;

/// How a component executes a read query against the database (§5 discusses
/// the cost difference at length — the "n+1 calls problem").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DbAccess {
    /// One statement round trip (CMP-rendered finders, prepared queries).
    Single,
    /// A BMP-style finder: one statement for the keys plus one `ejbLoad` per
    /// returned row — `n + 1` round trips.
    BmpFinder,
}

impl DbAccess {
    /// JDBC round trips needed to fetch `rows` rows. Saturates at
    /// [`u32::MAX`] rather than overflowing for absurd result sets.
    pub fn round_trips(self, rows: u64) -> u32 {
        match self {
            DbAccess::Single => 1,
            DbAccess::BmpFinder => u32::try_from(rows.saturating_add(1)).unwrap_or(u32::MAX),
        }
    }
}

/// One step in a component's business method.
#[derive(Debug, Clone)]
pub enum Action {
    /// Invoke another component (local call or RMI, decided at bind time).
    Invoke(Invoke),
    /// Execute a read query from this component's node.
    Query(QueryAction),
    /// Execute a write from this component's node and trigger update
    /// propagation to replicas/caches.
    Mutate(MutateAction),
}

/// A sub-invocation.
#[derive(Debug, Clone)]
pub struct Invoke {
    /// The invoked call.
    pub call: Call,
    /// Marshalled argument size.
    pub args_bytes: u64,
    /// Marshalled return size.
    pub ret_bytes: u64,
}

/// A read query executed by a component.
#[derive(Debug, Clone)]
pub struct QueryAction {
    /// The query.
    pub query: Query,
    /// Cacheability tag from the extended deployment descriptor
    /// (`"products-by-category"`, …). Untagged queries are never cached.
    pub tag: Option<String>,
    /// JDBC access style.
    pub access: DbAccess,
}

/// A write executed by a component.
#[derive(Debug, Clone)]
pub struct MutateAction {
    /// The mutation.
    pub mutation: Mutation,
}

/// One component invocation: CPU work plus an ordered list of actions.
#[derive(Debug, Clone)]
pub struct Call {
    /// The invoked component.
    pub component: ComponentId,
    /// Business method name (reporting only).
    pub op: String,
    /// CPU demand of the method body at the hosting node (excluding nested
    /// invocations and database work).
    pub cpu: SimDuration,
    /// Ordered method body.
    pub actions: Vec<Action>,
}

impl Call {
    /// Creates a call with an empty body.
    pub fn new(component: ComponentId, op: impl Into<String>, cpu: SimDuration) -> Self {
        Call {
            component,
            op: op.into(),
            cpu,
            actions: Vec::new(),
        }
    }

    /// Appends a sub-invocation.
    pub fn invoke(mut self, call: Call, args_bytes: u64, ret_bytes: u64) -> Self {
        self.actions.push(Action::Invoke(Invoke {
            call,
            args_bytes,
            ret_bytes,
        }));
        self
    }

    /// Appends an uncacheable read query.
    pub fn query(mut self, query: Query, access: DbAccess) -> Self {
        self.actions.push(Action::Query(QueryAction {
            query,
            tag: None,
            access,
        }));
        self
    }

    /// Appends a read query cacheable under `tag`.
    pub fn tagged_query(mut self, query: Query, tag: &str, access: DbAccess) -> Self {
        self.actions.push(Action::Query(QueryAction {
            query,
            tag: Some(tag.to_string()),
            access,
        }));
        self
    }

    /// Appends a write.
    pub fn mutate(mut self, mutation: Mutation) -> Self {
        self.actions.push(Action::Mutate(MutateAction { mutation }));
        self
    }

    /// Total number of `Invoke` actions in the subtree (excluding the root).
    pub fn invocation_count(&self) -> usize {
        self.actions
            .iter()
            .map(|a| match a {
                Action::Invoke(i) => 1 + i.call.invocation_count(),
                _ => 0,
            })
            .sum()
    }

    /// Iterates every call in the subtree, root first.
    pub fn walk(&self, f: &mut dyn FnMut(&Call)) {
        f(self);
        for action in &self.actions {
            if let Action::Invoke(i) = action {
                i.call.walk(f);
            }
        }
    }

    /// Whether the subtree contains any write.
    pub fn has_writes(&self) -> bool {
        self.actions.iter().any(|a| match a {
            Action::Mutate(_) => true,
            Action::Invoke(i) => i.call.has_writes(),
            Action::Query(_) => false,
        })
    }
}

/// A page request: the HTTP envelope around a root call.
#[derive(Debug, Clone)]
pub struct PageRequest {
    /// Page name (reporting key: "Item", "Commit", …).
    pub page: String,
    /// The root (web-tier) call.
    pub root: Call,
    /// HTML response size.
    pub response_bytes: u64,
    /// Number of HTTP request/response exchanges. Form POSTs that redirect
    /// to a result page (Pet Store *Cart*, *Place Order*, *Commit*) cost 2.
    pub http_exchanges: u32,
    /// Fixed serving latency at the entry server that does not consume CPU:
    /// connection handling, serialization, container dispatch.
    pub overhead: SimDuration,
}

impl PageRequest {
    /// Creates a single-exchange page request.
    pub fn new(page: impl Into<String>, root: Call, response_bytes: u64) -> Self {
        PageRequest {
            page: page.into(),
            root,
            response_bytes,
            http_exchanges: 1,
            overhead: SimDuration::ZERO,
        }
    }

    /// Marks the page as a POST-plus-redirect interaction (2 exchanges).
    pub fn with_redirect(mut self) -> Self {
        self.http_exchanges = 2;
        self
    }

    /// Sets the fixed (non-CPU) serving overhead.
    pub fn with_overhead(mut self, overhead: SimDuration) -> Self {
        self.overhead = overhead;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{ComponentKind, ComponentRegistry};
    use mutsvc_relstore::{DatabaseBuilder, RowId, Value};

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn db_access_round_trips() {
        assert_eq!(DbAccess::Single.round_trips(100), 1);
        assert_eq!(DbAccess::BmpFinder.round_trips(0), 1);
        assert_eq!(DbAccess::BmpFinder.round_trips(10), 11);
    }

    #[test]
    fn round_trips_saturate_at_u32_max() {
        assert_eq!(DbAccess::BmpFinder.round_trips(u64::MAX), u32::MAX);
        assert_eq!(
            DbAccess::BmpFinder.round_trips(u64::from(u32::MAX)),
            u32::MAX
        );
        assert_eq!(
            DbAccess::BmpFinder.round_trips(u64::from(u32::MAX) - 1),
            u32::MAX
        );
        assert_eq!(DbAccess::Single.round_trips(u64::MAX), 1);
    }

    #[test]
    fn builder_composes_trees() {
        let mut dbb = DatabaseBuilder::new();
        let t = dbb.table("item", &["n"], 10);
        let mut reg = ComponentRegistry::new();
        let web = reg.register("web", ComponentKind::Web);
        let facade = reg.register("Catalog", ComponentKind::StatelessSession);
        let item = reg.register_entity("Item", t);

        let tree = Call::new(web, "doGet", ms(5)).invoke(
            Call::new(facade, "getItem", ms(2)).invoke(
                Call::new(item, "load", ms(1)).query(
                    Query::ByPk {
                        table: t,
                        id: RowId(1),
                    },
                    DbAccess::Single,
                ),
                100,
                500,
            ),
            200,
            2_000,
        );
        assert_eq!(tree.invocation_count(), 2);
        assert!(!tree.has_writes());

        let mut names = Vec::new();
        tree.walk(&mut |c| names.push(c.op.clone()));
        assert_eq!(names, vec!["doGet", "getItem", "load"]);
    }

    #[test]
    fn writes_detected_recursively() {
        let mut dbb = DatabaseBuilder::new();
        let t = dbb.table("inv", &["qty"], 10);
        let mut reg = ComponentRegistry::new();
        let web = reg.register("web", ComponentKind::Web);
        let inv = reg.register_entity("Inventory", t);
        let tree = Call::new(web, "commit", ms(1)).invoke(
            Call::new(inv, "decrement", ms(1)).mutate(Mutation::Update {
                table: t,
                id: RowId(1),
                column: 0,
                value: Value::Int(1),
            }),
            50,
            50,
        );
        assert!(tree.has_writes());
    }

    #[test]
    fn page_request_exchange_counts() {
        let mut reg = ComponentRegistry::new();
        let web = reg.register("web", ComponentKind::Web);
        let p = PageRequest::new("Main", Call::new(web, "doGet", ms(1)), 4_000);
        assert_eq!(p.http_exchanges, 1);
        let p = p.with_redirect();
        assert_eq!(p.http_exchanges, 2);
    }
}
