//! The binder: compiles logical call trees into concrete step programs.
//!
//! This is the container's run-time intelligence the paper argues for in §5:
//! given an application call tree and a deployment descriptor, the binder
//!
//! 1. resolves every invocation to a hosting node (preferring co-located
//!    instances; routing entity writes to the read-write primary),
//! 2. pays RMI/JNDI costs for node-crossing calls (with stub caching),
//! 3. serves entity reads from read-only replica caches when valid, fetching
//!    through the central façade on misses,
//! 4. consults edge query caches for tagged aggregate queries,
//! 5. executes database statements (with the CMP/BMP round-trip distinction),
//!    and
//! 6. wires update propagation after writes: blocking parallel pushes
//!    (§4.3), pull invalidations, or detached JMS fan-out (§4.5) with
//!    deferred state application for staleness accounting.
//!
//! Database mutations are applied at *bind* time, i.e. in request-arrival
//! order rather than at simulated commit instants. The paper's workloads are
//! sized to avoid data contention (§3.4), so this ordering simplification
//! does not alter any measured behaviour.

use serde::{Deserialize, Serialize};

use mutsvc_desim::rng::SimRng;
use mutsvc_desim::time::SimDuration;
use mutsvc_netsim::{NodeId, ProtocolParams, Step};
use mutsvc_relstore::{affects, Database, Query, RowId, TableId};

use crate::component::{ComponentId, ComponentKind, ComponentRegistry};
use crate::descriptor::{DeploymentDescriptor, UpdatePropagation};
use crate::invocation::{Action, Call, Invoke, MutateAction, PageRequest, QueryAction};
use crate::state::{ContainerState, RowCacheState};

/// CPU cost constants of the container runtime itself.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ContainerCosts {
    /// Serving a read from an in-memory cache (entity replica or query cache).
    pub cache_hit: SimDuration,
    /// A JNDI lookup at the naming server.
    pub jndi_lookup: SimDuration,
    /// Applying one pushed update bundle at a replica node.
    pub push_apply: SimDuration,
    /// Publishing an update message to the JMS topic.
    pub jms_publish: SimDuration,
    /// Message-driven-bean delivery overhead per subscriber.
    pub mdb_delivery: SimDuration,
}

impl Default for ContainerCosts {
    fn default() -> Self {
        ContainerCosts {
            cache_hit: SimDuration::from_micros(300),
            jndi_lookup: SimDuration::from_micros(500),
            push_apply: SimDuration::from_micros(800),
            jms_publish: SimDuration::from_micros(500),
            mdb_delivery: SimDuration::from_micros(1_000),
        }
    }
}

/// Counters describing how one page bind resolved.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BindStats {
    /// Invocations that crossed nodes (RMI).
    pub remote_invocations: u32,
    /// JNDI lookups performed.
    pub jndi_lookups: u32,
    /// Entity reads served from a valid replica row.
    pub entity_cache_hits: u32,
    /// Entity reads that had to fetch from the primary.
    pub entity_cache_misses: u32,
    /// Tagged queries served from a valid edge cache.
    pub query_cache_hits: u32,
    /// Tagged queries that executed remotely and populated the cache.
    pub query_cache_misses: u32,
    /// Database statements executed (reads and writes).
    pub db_statements: u32,
    /// Nodes that received a blocking push.
    pub sync_push_nodes: u32,
    /// Nodes that received an asynchronous push.
    pub async_push_nodes: u32,
    /// Nodes that received pull-mode invalidations.
    pub invalidate_nodes: u32,
    /// Sum of version lags observed on replica reads (staleness audit).
    pub staleness_observed: u64,
}

impl BindStats {
    /// Accumulates another bind's counters. Saturates instead of overflowing:
    /// long sweeps merge millions of binds and a wrapped counter would read
    /// as a plausible small number.
    pub fn merge(&mut self, other: &BindStats) {
        self.remote_invocations = self
            .remote_invocations
            .saturating_add(other.remote_invocations);
        self.jndi_lookups = self.jndi_lookups.saturating_add(other.jndi_lookups);
        self.entity_cache_hits = self
            .entity_cache_hits
            .saturating_add(other.entity_cache_hits);
        self.entity_cache_misses = self
            .entity_cache_misses
            .saturating_add(other.entity_cache_misses);
        self.query_cache_hits = self.query_cache_hits.saturating_add(other.query_cache_hits);
        self.query_cache_misses = self
            .query_cache_misses
            .saturating_add(other.query_cache_misses);
        self.db_statements = self.db_statements.saturating_add(other.db_statements);
        self.sync_push_nodes = self.sync_push_nodes.saturating_add(other.sync_push_nodes);
        self.async_push_nodes = self.async_push_nodes.saturating_add(other.async_push_nodes);
        self.invalidate_nodes = self.invalidate_nodes.saturating_add(other.invalidate_nodes);
        self.staleness_observed = self
            .staleness_observed
            .saturating_add(other.staleness_observed);
    }
}

/// The wire interaction kind of one node crossing on a request's synchronous
/// path (update propagation is excluded: it rides on forks or blocking
/// pushes, not on the logical call tree).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CrossingKind {
    /// A remote component invocation (RMI).
    Rmi,
    /// A JNDI home lookup at the naming server.
    Jndi,
    /// A delegated fetch through the central façade (replica miss, uncovered
    /// query at an edge session bean).
    Fetch,
    /// JDBC statement round trips to the database host.
    Jdbc {
        /// Statement round trips (1 for CMP, n+1 for BMP finders).
        trips: u32,
    },
}

/// One node crossing recorded while binding a page — the introspection the
/// static analyzer cross-validates against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Crossing {
    /// Originating node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// What travelled.
    pub kind: CrossingKind,
}

impl Crossing {
    /// Request/response round trips this crossing costs.
    pub fn round_trips(&self) -> u32 {
        match self.kind {
            CrossingKind::Jdbc { trips } => trips,
            _ => 1,
        }
    }
}

/// State updates to apply when an asynchronous propagation completes.
#[derive(Debug, Clone, Default)]
pub struct DeferredApply {
    /// Replica rows to mark fresh.
    pub entity_rows: Vec<(ComponentId, NodeId, RowId)>,
    /// Query results to mark fresh (push-mode caches keep serving meanwhile).
    pub queries: Vec<(NodeId, Query)>,
}

impl DeferredApply {
    /// Applies the deferred updates to container state.
    pub fn apply(&self, state: &mut ContainerState) {
        for &(entity, node, row) in &self.entity_rows {
            state.load_entity_row(entity, node, row);
        }
        for (node, query) in &self.queries {
            state.cache_query(*node, query.clone());
        }
    }

    /// Tables whose observable read results change when this apply lands —
    /// the plan cache invalidates memoized binds reading any of them.
    pub fn tables(&self, registry: &ComponentRegistry, out: &mut Vec<TableId>) {
        for &(entity, _, _) in &self.entity_rows {
            if let Some(t) = registry.spec(entity).table {
                out.push(t);
            }
        }
        for (_, query) in &self.queries {
            out.push(query.table());
        }
        out.sort_unstable();
        out.dedup();
    }
}

/// The result of binding one page request.
#[derive(Debug)]
pub struct BoundRequest {
    /// The executable step program.
    pub steps: Vec<Step>,
    /// Resolution counters.
    pub stats: BindStats,
    /// Node crossings on the synchronous path, in bind order.
    pub crossings: Vec<Crossing>,
    /// Asynchronous propagations started by this request, keyed by fork tag.
    pub deferred: Vec<(u64, DeferredApply)>,
    /// The binder's replayability certificate: `true` iff this bind drew no
    /// randomness, wrote nothing, and caused no cold cache/stub transition —
    /// i.e. re-binding the same page shape from the same client would produce
    /// the identical program and stats as long as `read_tables` are unchanged.
    pub replayable: bool,
    /// Tables whose contents (or replica freshness) this bind's results
    /// depend on; a write to any of them invalidates a memoized plan.
    pub read_tables: Vec<TableId>,
    /// Tables mutated by this bind (always empty when `replayable`).
    pub written_tables: Vec<TableId>,
}

/// Per-destination bundle of a transaction's propagation payload: the entity
/// rows and cached queries pushed to one node in one bulk RMI call.
type PerNodePush = std::collections::BTreeMap<NodeId, (Vec<(ComponentId, RowId)>, Vec<Query>)>;

/// Binds call trees against a deployment.
///
/// Holds mutable borrows of the shared world pieces for the duration of one
/// bind; construct it per request.
pub struct Binder<'a> {
    /// Component inventory.
    pub registry: &'a ComponentRegistry,
    /// The active configuration.
    pub descriptor: &'a DeploymentDescriptor,
    /// Wire protocol cost model.
    pub protocols: &'a ProtocolParams,
    /// Container runtime cost model.
    pub costs: &'a ContainerCosts,
    /// Shared persistent state (mutations apply immediately).
    pub db: &'a mut Database,
    /// Live container caches.
    pub state: &'a mut ContainerState,
    /// Randomness (protocol overhead sampling).
    pub rng: &'a mut SimRng,
    /// Allocator for fork tags (monotonic across the run).
    pub next_tag: &'a mut u64,
    stats: BindStats,
    crossings: Vec<Crossing>,
    deferred: Vec<(u64, DeferredApply)>,
    replayable: bool,
    read_tables: Vec<TableId>,
    written_tables: Vec<TableId>,
    /// Propagation targets accumulated within the current transaction;
    /// flushed as one bulk push per destination at the transaction boundary
    /// ("updates … are made in one bulk RMI call", §4.4).
    pending_entities: Vec<(ComponentId, NodeId, RowId)>,
    pending_queries: Vec<(NodeId, Query)>,
    in_transaction: bool,
    legacy_scan: bool,
}

impl<'a> Binder<'a> {
    /// Creates a binder over the shared world pieces.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        registry: &'a ComponentRegistry,
        descriptor: &'a DeploymentDescriptor,
        protocols: &'a ProtocolParams,
        costs: &'a ContainerCosts,
        db: &'a mut Database,
        state: &'a mut ContainerState,
        rng: &'a mut SimRng,
        next_tag: &'a mut u64,
    ) -> Self {
        Binder {
            registry,
            descriptor,
            protocols,
            costs,
            db,
            state,
            rng,
            next_tag,
            stats: BindStats::default(),
            crossings: Vec::new(),
            deferred: Vec::new(),
            replayable: true,
            read_tables: Vec::new(),
            written_tables: Vec::new(),
            pending_entities: Vec::new(),
            pending_queries: Vec::new(),
            in_transaction: false,
            legacy_scan: false,
        }
    }

    /// Switches the write path to the pre-overhaul cost model: every write
    /// clones the full query-cache contents of each cache node before
    /// `affects`-filtering, and propagation ordering is recomputed through
    /// per-comparison `format!("{:?}")` keys. The emitted steps and state
    /// transitions are identical — only host-side work differs — so the
    /// `--simperf` legacy baseline can charge what the driver cost before
    /// the by-table index and derived [`Ord`] on [`Query`] existed.
    pub fn with_legacy_scan(mut self, on: bool) -> Self {
        self.legacy_scan = on;
        self
    }

    /// Withdraws the replayability certificate: the bind drew randomness,
    /// mutated shared state, or took a cold cache/stub transition.
    fn not_replayable(&mut self) {
        self.replayable = false;
    }

    /// Records that this bind's results depend on the contents of `table`.
    fn record_read(&mut self, table: TableId) {
        if !self.read_tables.contains(&table) {
            self.read_tables.push(table);
        }
    }

    /// Compiles a page requested by `client` against entry server `entry`.
    ///
    /// # Panics
    ///
    /// Panics if the root web component is not deployed on `entry`.
    pub fn bind_page(mut self, client: NodeId, entry: NodeId, page: &PageRequest) -> BoundRequest {
        let root_placement = self.descriptor.placement(page.root.component);
        assert!(
            root_placement.hosts(entry),
            "web component {} not deployed on entry node {entry}",
            self.registry.spec(page.root.component).name
        );
        let mut steps = self.protocols.http_request(client, entry, 0);
        if !page.overhead.is_zero() {
            steps.push(Step::Delay(page.overhead));
        }
        steps.extend(self.bind_call(entry, &page.root, 0, 0));
        // Legacy direct-JDBC writes from the web tier (the original Pet
        // Store) have no bean-level transaction root; their propagation — if
        // any replicas exist — flushes from the central server.
        if !(self.pending_entities.is_empty() && self.pending_queries.is_empty()) {
            let central = self.descriptor.central_node;
            let flush = self.flush_propagation(central);
            steps.extend(flush);
        }
        for _ in 1..page.http_exchanges {
            // Redirect-after-POST: an extra request/response exchange.
            steps.push(Step::exchange(
                client,
                entry,
                self.protocols.http_request_bytes,
                300,
            ));
        }
        steps.push(
            self.protocols
                .http_response(entry, client, page.response_bytes),
        );
        self.finish(steps)
    }

    /// Compiles a bare call tree starting at `entry` (no HTTP envelope); used
    /// for tests and for placement-graph derivation.
    pub fn bind_tree(mut self, entry: NodeId, root: &Call) -> BoundRequest {
        let steps = self.bind_call(entry, root, 0, 0);
        self.finish(steps)
    }

    fn finish(mut self, steps: Vec<Step>) -> BoundRequest {
        self.read_tables.sort_unstable();
        self.written_tables.sort_unstable();
        self.written_tables.dedup();
        debug_assert!(
            !self.replayable || self.written_tables.is_empty(),
            "a replayable bind cannot have written tables"
        );
        BoundRequest {
            steps,
            stats: self.stats,
            crossings: self.crossings,
            deferred: self.deferred,
            replayable: self.replayable,
            read_tables: self.read_tables,
            written_tables: self.written_tables,
        }
    }

    /// Chooses the hosting node for a call issued from `caller`.
    fn resolve_host(&self, caller: NodeId, call: &Call) -> NodeId {
        let placement = self.descriptor.placement(call.component);
        let kind = self.registry.spec(call.component).kind;
        match kind {
            ComponentKind::Entity => {
                if call.has_writes() {
                    placement.primary
                } else if placement.hosts(caller) {
                    caller
                } else {
                    placement.primary
                }
            }
            _ => {
                if placement.hosts(caller) {
                    caller
                } else {
                    placement.primary
                }
            }
        }
    }

    fn bind_call(
        &mut self,
        caller: NodeId,
        call: &Call,
        args_bytes: u64,
        ret_bytes: u64,
    ) -> Vec<Step> {
        let host = self.resolve_host(caller, call);
        let mut steps = Vec::new();

        if host != caller {
            // Cross-node RMI samples DGC/ping overhead from the shared RNG
            // stream (and may take a cold stub transition below) — never
            // memoizable.
            self.not_replayable();
            self.stats.remote_invocations += 1;
            self.bind_stub_resolution(caller, call.component, &mut steps);
            self.crossings.push(Crossing {
                from: caller,
                to: host,
                kind: CrossingKind::Rmi,
            });
            steps.extend(
                self.protocols
                    .rmi_request(self.rng, caller, host, args_bytes),
            );
        }
        if !call.cpu.is_zero() {
            steps.push(Step::cpu(host, call.cpu));
        }
        // The outermost write-containing *EJB-tier* call is the transaction
        // boundary (container-managed transactions begin at the first bean
        // invocation, not in the servlet): update propagation for every
        // write inside it is bundled into one push per destination node,
        // emitted before this call returns.
        let tx_root = call.has_writes()
            && !self.in_transaction
            && self.registry.spec(call.component).kind != ComponentKind::Web;
        if tx_root {
            self.in_transaction = true;
        }
        for action in &call.actions {
            match action {
                Action::Invoke(invoke) => {
                    let Invoke {
                        call: child,
                        args_bytes,
                        ret_bytes,
                    } = invoke;
                    steps.extend(self.bind_call(host, child, *args_bytes, *ret_bytes));
                }
                Action::Query(qa) => {
                    steps.extend(self.bind_query(host, call.component, qa));
                }
                Action::Mutate(ma) => {
                    steps.extend(self.bind_mutation(host, ma));
                }
            }
        }
        if tx_root {
            self.in_transaction = false;
            // The pushes originate at the central server, where the
            // read-write beans and the JMS topic live — regardless of where
            // the transaction started. The writer still blocks here for
            // synchronous propagation (the Parallel sits on its return path).
            let central = self.descriptor.central_node;
            let flush = self.flush_propagation(central);
            steps.extend(flush);
        }
        if host != caller {
            steps.extend(self.protocols.rmi_response(host, caller, ret_bytes));
        }
        steps
    }

    /// JNDI home lookup before a remote call. With stub caching
    /// (EJBHomeFactory) only the first call per `(node, component)` pays;
    /// without it every call does.
    fn bind_stub_resolution(
        &mut self,
        caller: NodeId,
        component: ComponentId,
        steps: &mut Vec<Step>,
    ) {
        let naming = self.descriptor.central_node;
        if self.descriptor.stub_caching && self.state.stub_cached(caller, component) {
            return;
        }
        if caller != naming {
            self.stats.jndi_lookups += 1;
            self.crossings.push(Crossing {
                from: caller,
                to: naming,
                kind: CrossingKind::Jndi,
            });
            steps.push(Step::cpu(caller, self.costs.jndi_lookup));
            steps.push(Step::exchange(caller, naming, 200, 800));
        }
        if self.descriptor.stub_caching {
            self.state.cache_stub(caller, component);
        }
    }

    fn bind_query(&mut self, host: NodeId, component: ComponentId, qa: &QueryAction) -> Vec<Step> {
        let spec = self.registry.spec(component);
        let placement = self.descriptor.placement(component);

        // Read-only entity replica path (§4.3).
        if spec.kind == ComponentKind::Entity && host != placement.primary {
            return self.bind_replica_read(host, component, qa);
        }

        // Edge query cache path (§4.4).
        if let Some(tag) = &qa.tag {
            if self.descriptor.query_cache.covers(host, tag) {
                if self.state.query_cached(host, &qa.query) {
                    self.stats.query_cache_hits += 1;
                    self.record_read(qa.query.table());
                    return vec![Step::cpu(host, self.costs.cache_hit)];
                }
                // Miss: fetch through the central façade, then cache. The
                // insert is a cold transition: a replay would hit instead.
                self.not_replayable();
                self.stats.query_cache_misses += 1;
                let mut steps = self.remote_fetch(host, &qa.query);
                self.state.cache_query(host, qa.query.clone());
                steps.push(Step::cpu(host, self.costs.push_apply));
                return steps;
            }
        }

        // Plain database access. Session-tier components never open remote
        // database connections: an edge-resident façade that cannot serve a
        // query locally dispatches it to its central counterpart in one RMI
        // (the paper's edge `Catalog` delegating to the central `Catalog`).
        // Only the legacy web tier (the original Pet Store) and components
        // co-located with the data issue JDBC directly.
        let direct_jdbc = spec.kind == ComponentKind::Web
            || host == self.descriptor.db_node
            || host == self.descriptor.central_node;
        if direct_jdbc {
            self.db_steps(host, qa)
        } else {
            self.remote_fetch(host, &qa.query)
        }
    }

    /// A read against a read-only entity replica at `host`.
    fn bind_replica_read(
        &mut self,
        host: NodeId,
        component: ComponentId,
        qa: &QueryAction,
    ) -> Vec<Step> {
        match &qa.query {
            Query::ByPk { id, .. } => match self.state.entity_row(component, host, *id) {
                RowCacheState::Valid => {
                    self.stats.entity_cache_hits += 1;
                    self.stats.staleness_observed += self.state.staleness(component, host, *id);
                    // The observed staleness is derived from row versions,
                    // which only change on writes to the entity's table — so
                    // the hit is memoizable under table-generation validity.
                    match self.registry.spec(component).table {
                        Some(t) => self.record_read(t),
                        None => self.not_replayable(),
                    }
                    vec![Step::cpu(host, self.costs.cache_hit)]
                }
                RowCacheState::Absent | RowCacheState::Invalid => {
                    // Cold transition: the fetch repopulates the replica row.
                    self.not_replayable();
                    self.stats.entity_cache_misses += 1;
                    let steps = self.remote_fetch(host, &qa.query);
                    self.state.load_entity_row(component, host, *id);
                    steps
                }
            },
            // Finder queries on a replica delegate to the primary each time:
            // home finders require the authoritative view.
            _ => self.remote_fetch(host, &qa.query),
        }
    }

    /// One RMI to the central façade which executes `query` next to the
    /// database and returns the result.
    fn remote_fetch(&mut self, host: NodeId, query: &Query) -> Vec<Step> {
        let central = self.descriptor.central_node;
        if host != central {
            // The façade RMI samples protocol overhead from the RNG stream.
            self.not_replayable();
        }
        self.record_read(query.table());
        let outcome = self.db.execute(query);
        self.stats.db_statements += 1;
        let db_node = self.descriptor.db_node;
        let mut steps = Vec::new();
        if host == central {
            steps.push(Step::cpu(db_node, outcome.cpu));
            steps.extend(
                self.protocols
                    .jdbc(central, db_node, 1, outcome.row_count()),
            );
        } else {
            self.crossings.push(Crossing {
                from: host,
                to: central,
                kind: CrossingKind::Fetch,
            });
            steps.extend(self.protocols.rmi_request(self.rng, host, central, 300));
            steps.push(Step::cpu(db_node, outcome.cpu));
            steps.extend(
                self.protocols
                    .jdbc(central, db_node, 1, outcome.row_count()),
            );
            steps.extend(self.protocols.rmi_response(central, host, outcome.bytes));
        }
        if central != db_node {
            self.crossings.push(Crossing {
                from: central,
                to: db_node,
                kind: CrossingKind::Jdbc { trips: 1 },
            });
        }
        steps
    }

    /// Direct database access from `host` (entity primary, central façade, or
    /// the original web tier's direct JDBC).
    fn db_steps(&mut self, host: NodeId, qa: &QueryAction) -> Vec<Step> {
        self.record_read(qa.query.table());
        let outcome = self.db.execute(&qa.query);
        self.stats.db_statements += 1;
        let db_node = self.descriptor.db_node;
        let mut steps = vec![Step::cpu(db_node, outcome.cpu)];
        if host != db_node {
            let trips = qa.access.round_trips(outcome.row_count());
            self.crossings.push(Crossing {
                from: host,
                to: db_node,
                kind: CrossingKind::Jdbc { trips },
            });
            steps.extend(
                self.protocols
                    .jdbc(host, db_node, trips, outcome.row_count()),
            );
        }
        steps
    }

    /// Executes a write and queues its propagation targets; the push itself
    /// is emitted at the transaction boundary by [`Self::flush_propagation`].
    fn bind_mutation(&mut self, host: NodeId, ma: &MutateAction) -> Vec<Step> {
        self.not_replayable();
        let effect = self.db.mutate(ma.mutation.clone());
        self.written_tables.push(effect.table);
        self.stats.db_statements += 1;
        let db_node = self.descriptor.db_node;
        let mut steps = vec![Step::cpu(db_node, effect.cpu)];
        if host != db_node {
            self.crossings.push(Crossing {
                from: host,
                to: db_node,
                kind: CrossingKind::Jdbc { trips: 1 },
            });
            steps.extend(self.protocols.jdbc(host, db_node, 1, 0));
        }
        if !effect.applied {
            return steps;
        }

        for entity in self.registry.entities_of_table(effect.table) {
            self.state.bump_version(entity, effect.row);
            let replicas: Vec<NodeId> = self.descriptor.replica_nodes(entity).collect();
            for node in replicas {
                if self.state.entity_row(entity, node, effect.row) != RowCacheState::Absent {
                    self.pending_entities.push((entity, node, effect.row));
                }
            }
        }
        if self.legacy_scan {
            // Pre-overhaul scan: clone every cached query at the node, then
            // filter — the cost the by-table index below removes.
            for &node in &self.descriptor.query_cache.nodes {
                for query in self.state.cached_queries(node) {
                    if affects(&effect, &query) {
                        self.pending_queries.push((node, query));
                    }
                }
            }
            return steps;
        }
        // Only queries on the written table can be affected; the by-table
        // index avoids cloning every cached query at the node per write.
        let state = &self.state;
        let pending = &mut self.pending_queries;
        for &node in &self.descriptor.query_cache.nodes {
            for query in state.cached_queries_on(node, effect.table) {
                if affects(&effect, query) {
                    pending.push((node, query.clone()));
                }
            }
        }
        steps
    }

    /// Emits the accumulated propagation of one transaction: one bulk push
    /// per destination node, blocking (`Parallel`), pull-invalidating, or
    /// detached JMS fan-out depending on the descriptor.
    fn flush_propagation(&mut self, host: NodeId) -> Vec<Step> {
        let mut entity_targets = std::mem::take(&mut self.pending_entities);
        let mut query_targets = std::mem::take(&mut self.pending_queries);
        entity_targets.sort_unstable();
        entity_targets.dedup();
        if self.legacy_scan {
            // Pre-overhaul canonical order: two `format!("{:?}")` heap
            // allocations per comparison (superseded by `Query: Ord`).
            query_targets.sort_unstable_by(|a, b| {
                (a.0, format!("{:?}", a.1)).cmp(&(b.0, format!("{:?}", b.1)))
            });
        } else {
            query_targets.sort_unstable();
        }
        query_targets.dedup();
        if entity_targets.is_empty() && query_targets.is_empty() {
            return Vec::new();
        }
        // Propagation mutates replica/cache state and may draw fork tags.
        self.not_replayable();

        // Bundle per destination node (the paper's bulk-RMI pushes).
        let mut per_node: PerNodePush = std::collections::BTreeMap::new();
        for &(entity, node, row) in &entity_targets {
            per_node.entry(node).or_default().0.push((entity, row));
        }
        for (node, query) in &query_targets {
            per_node.entry(*node).or_default().1.push(query.clone());
        }

        let mut steps = Vec::new();
        let mode = self.effective_propagation(&entity_targets, &query_targets);
        match mode {
            UpdatePropagation::None => {}
            UpdatePropagation::Invalidate => {
                for (&node, (rows, queries)) in &per_node {
                    self.stats.invalidate_nodes += 1;
                    for &(entity, row) in rows {
                        self.state.invalidate_entity_row(entity, node, row);
                    }
                    for q in queries {
                        self.state.invalidate_query(node, q);
                    }
                    // Invalidation control messages travel asynchronously.
                    steps.push(Step::Fork {
                        steps: vec![Step::transfer(host, node, 200)],
                        tag: None,
                    });
                }
            }
            UpdatePropagation::SyncPush => {
                let mut branches = Vec::new();
                for (&node, (rows, queries)) in &per_node {
                    self.stats.sync_push_nodes += 1;
                    branches.push(self.push_branch(host, node, rows, queries, true));
                    for &(entity, row) in rows {
                        self.state.load_entity_row(entity, node, row);
                    }
                    for q in queries {
                        self.state.cache_query(node, q.clone());
                    }
                }
                steps.push(Step::Parallel(branches));
            }
            UpdatePropagation::AsyncPush => {
                // The writer's only synchronous cost is handing the message
                // to the container; everything downstream rides in one
                // detached fork. The broker delivers to subscribers in turn
                // (sequential steps, not a `Step::Parallel` — a parallel
                // join here would model a blocking push, which §4.5
                // explicitly avoids), and the deferred apply fires when the
                // last delivery lands.
                let broker = self.descriptor.jms_broker;
                let tag = *self.next_tag;
                *self.next_tag += 1;
                let mut apply = DeferredApply::default();
                let mut fork = vec![Step::cpu(host, self.costs.jms_publish)];
                fork.extend(
                    self.protocols
                        .jms_publish(host, broker, self.push_bytes(&per_node)),
                );
                for (&node, (rows, queries)) in &per_node {
                    self.stats.async_push_nodes += 1;
                    fork.extend(self.protocols.jms_delivery(
                        broker,
                        node,
                        self.node_push_bytes(rows, queries),
                    ));
                    fork.push(Step::cpu(
                        node,
                        self.costs.mdb_delivery + self.costs.push_apply,
                    ));
                    for &(entity, row) in rows {
                        apply.entity_rows.push((entity, node, row));
                    }
                    for q in queries {
                        apply.queries.push((node, q.clone()));
                    }
                }
                self.deferred.push((tag, apply));
                steps.push(Step::Fork {
                    steps: fork,
                    tag: Some(tag),
                });
            }
        }
        steps
    }

    /// Picks the propagation mode: entity policy dominates; pure query-cache
    /// updates follow the query-cache policy.
    fn effective_propagation(
        &self,
        entity_targets: &[(ComponentId, NodeId, RowId)],
        query_targets: &[(NodeId, Query)],
    ) -> UpdatePropagation {
        if !entity_targets.is_empty() {
            self.descriptor.entity_propagation
        } else if !query_targets.is_empty() {
            self.descriptor.query_cache.propagation
        } else {
            UpdatePropagation::None
        }
    }

    /// One blocking push branch: bulk RMI to `node`, apply, acknowledge.
    fn push_branch(
        &mut self,
        from: NodeId,
        node: NodeId,
        rows: &[(ComponentId, RowId)],
        queries: &[Query],
        ack: bool,
    ) -> Vec<Step> {
        let bytes = self.node_push_bytes(rows, queries);
        let mut branch = self.protocols.rmi_request(self.rng, from, node, bytes);
        branch.push(Step::cpu(node, self.costs.push_apply));
        if ack {
            branch.extend(self.protocols.rmi_response(node, from, 50));
        }
        branch
    }

    fn node_push_bytes(&self, rows: &[(ComponentId, RowId)], queries: &[Query]) -> u64 {
        let row_bytes: u64 = rows
            .iter()
            .map(|(entity, _)| {
                self.registry
                    .spec(*entity)
                    .table
                    .map_or(100, |t| self.db.table(t).row_bytes())
            })
            .sum();
        // Pushed query deltas are small (single-row updates, §4.4).
        row_bytes + queries.len() as u64 * 150
    }

    fn push_bytes(&self, per_node: &PerNodePush) -> u64 {
        per_node
            .values()
            .map(|(rows, queries)| self.node_push_bytes(rows, queries))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_stats_merge_saturates() {
        let mut a = BindStats {
            remote_invocations: u32::MAX,
            jndi_lookups: u32::MAX - 1,
            db_statements: 7,
            staleness_observed: u64::MAX,
            ..BindStats::default()
        };
        let b = BindStats {
            remote_invocations: 3,
            jndi_lookups: 5,
            db_statements: 2,
            staleness_observed: 1,
            ..BindStats::default()
        };
        a.merge(&b);
        assert_eq!(a.remote_invocations, u32::MAX);
        assert_eq!(a.jndi_lookups, u32::MAX);
        assert_eq!(a.db_statements, 9);
        assert_eq!(a.staleness_observed, u64::MAX);
        assert_eq!(a.entity_cache_hits, 0);
    }

    #[test]
    fn crossing_round_trips() {
        let mut b = mutsvc_netsim::TopologyBuilder::new();
        let a = b.node("a", 1);
        let d = b.node("d", 1);
        let c = Crossing {
            from: a,
            to: d,
            kind: CrossingKind::Jdbc { trips: 4 },
        };
        assert_eq!(c.round_trips(), 4);
        let c = Crossing {
            from: a,
            to: d,
            kind: CrossingKind::Rmi,
        };
        assert_eq!(c.round_trips(), 1);
    }
}
