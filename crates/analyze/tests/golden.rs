//! Golden cross-validation: the static walker's crossing model must match
//! the binder's own warm-bind introspection, page by page, for every
//! application × configuration.
//!
//! Each page is statically walked first (against the current database
//! state), then bound twice from the edge-1 client; the second (warm) bind
//! represents steady state. Two properties are checked:
//!
//! * the static count of RMI crossings equals the binder's
//!   `remote_invocations` stat **exactly**;
//! * the sequence of wide-area crossings (from, to, kind, trips) is
//!   identical. LAN-only crossings are excluded because cold-bind mutations
//!   shift BMP finder row counts between the walk and the warm bind; those
//!   finders stay on the LAN in every paper configuration.

use mutsvc_analyze::{entry_node, node_label, walk_page};
use mutsvc_core::{AppKind, Config, Scenario};
use mutsvc_desim::SimRng;
use mutsvc_middleware::{Binder, ContainerCosts, ContainerState, Crossing, CrossingKind};

fn check_scenario(app: AppKind, config: Config) {
    let (mut input, nodes) = Scenario::quick(app, config).build();
    let pages = input.app.all_pages();
    let mut state = ContainerState::new();
    let mut rng = SimRng::seed_from_u64(7);
    let mut tag = 0u64;
    let costs = ContainerCosts::default();
    let is_wan = |a, b| nodes.is_wan(a, b);

    for page in &pages {
        let entry = entry_node(&input.descriptor, nodes.edge1, nodes.main, page);
        let walk = walk_page(
            &input.registry,
            &input.descriptor,
            &input.db,
            &is_wan,
            entry,
            page,
        );

        let mut warm = None;
        for _ in 0..2 {
            let bound = Binder::new(
                &input.registry,
                &input.descriptor,
                &input.protocols,
                &costs,
                &mut input.db,
                &mut state,
                &mut rng,
                &mut tag,
            )
            .bind_page(nodes.client_edge1, entry, page);
            warm = Some(bound);
        }
        let warm = warm.expect("two binds");

        let label = format!("{}/{}/{}", app.name(), config.name(), page.page);

        let static_rmi = walk
            .crossings
            .iter()
            .filter(|c| c.kind == CrossingKind::Rmi)
            .count() as u32;
        assert_eq!(
            static_rmi, warm.stats.remote_invocations,
            "{label}: static RMI crossings vs binder remote_invocations"
        );

        let wan_only = |crossings: &[Crossing]| -> Vec<Crossing> {
            crossings
                .iter()
                .copied()
                .filter(|c| nodes.is_wan(c.from, c.to))
                .collect()
        };
        let static_wan = wan_only(&walk.crossings);
        let dynamic_wan = wan_only(&warm.crossings);
        assert_eq!(
            static_wan.len(),
            dynamic_wan.len(),
            "{label}: WAN crossing count (static {static_wan:?} vs dynamic {dynamic_wan:?})"
        );
        for (s, d) in static_wan.iter().zip(&dynamic_wan) {
            assert_eq!(
                s,
                d,
                "{label}: WAN crossing mismatch ({} -> {} {:?} vs {} -> {} {:?})",
                node_label(&nodes, s.from),
                node_label(&nodes, s.to),
                s.kind,
                node_label(&nodes, d.from),
                node_label(&nodes, d.to),
                d.kind
            );
        }

        let static_total: u32 = static_wan.iter().map(Crossing::round_trips).sum();
        assert_eq!(
            static_total,
            walk.wan_round_trips(is_wan),
            "{label}: PageWalk::wan_round_trips consistency"
        );
    }
}

#[test]
fn petstore_static_walk_matches_warm_binds() {
    for config in Config::all() {
        check_scenario(AppKind::PetStore, config);
    }
}

#[test]
fn rubis_static_walk_matches_warm_binds() {
    for config in Config::all() {
        check_scenario(AppKind::Rubis, config);
    }
}
