//! Verifier-level acceptance properties: the analyzer's output is
//! byte-stable (identical on repeated runs and pinned against a committed
//! golden transcript so CI can diff it verbatim), the staleness dataflow
//! reaches its fixpoint on every paper cell without hitting the iteration
//! cap, and `cross_check_traced_wan` handles its edge cases (empty traces,
//! unknown pages, the exact ±1-round-trip boundary).

use mutsvc_analyze::{analyze_target, cross_check_traced_wan};
use mutsvc_core::{AppKind, Config};

/// The text transcript for every cell, concatenated in CLI `--all` order
/// (applications outer, configurations inner).
fn all_cells_text() -> String {
    let mut out = String::new();
    for app in AppKind::all() {
        for config in Config::all() {
            out.push_str(&analyze_target(app, config).render_text());
        }
    }
    out
}

#[test]
fn analyzer_output_matches_committed_golden() {
    let golden = include_str!("../golden/all_cells.txt");
    assert_eq!(
        all_cells_text(),
        golden,
        "analyzer output drifted from crates/analyze/golden/all_cells.txt — \
         if the change is intentional, regenerate with \
         `cargo run -p mutsvc-analyze -- --all > crates/analyze/golden/all_cells.txt`"
    );
}

#[test]
fn repeated_analysis_is_byte_identical() {
    for app in AppKind::all() {
        for config in Config::all() {
            let first = analyze_target(app, config);
            let second = analyze_target(app, config);
            assert_eq!(
                first.render_text(),
                second.render_text(),
                "{}/{}: text output not byte-stable",
                app.name(),
                config.name()
            );
            assert_eq!(
                first.to_json(),
                second.to_json(),
                "{}/{}: JSON output not byte-stable",
                app.name(),
                config.name()
            );
        }
    }
}

#[test]
fn staleness_fixpoint_converges_on_every_cell() {
    for app in AppKind::all() {
        for config in Config::all() {
            let report = analyze_target(app, config);
            assert!(
                report.staleness_converged,
                "{}/{}: staleness dataflow bailed out at the iteration cap",
                app.name(),
                config.name()
            );
            // The cap mirrors dataflow::iteration_cap over the page count;
            // a healthy fixpoint lands well under it.
            let cap = 2 * report.pages.len() as u32 + 8;
            assert!(
                (1..=cap).contains(&report.staleness_iterations),
                "{}/{}: {} sweeps (cap {cap})",
                app.name(),
                config.name(),
                report.staleness_iterations
            );
        }
    }
}

#[test]
fn cross_check_traced_wan_handles_edge_cases() {
    let mut report = analyze_target(AppKind::PetStore, Config::RemoteFacade);
    assert!(!report.codes().contains(&"W108"));

    // An empty traced set is a no-op.
    assert_eq!(cross_check_traced_wan(&mut report, &[]), 0);
    assert!(!report.codes().contains(&"W108"));

    // Pages in the trace but unknown to the static walk are ignored, no
    // matter how wild their counts.
    let unknown = vec![("NoSuchPage".to_string(), 99.0)];
    assert_eq!(cross_check_traced_wan(&mut report, &unknown), 0);
    assert!(!report.codes().contains(&"W108"));

    // The boundary is strict: exactly one round trip of disagreement is
    // protocol-level tolerance in either direction…
    let item = report.pages.iter().find(|p| p.page == "Item").unwrap();
    let page = item.page.clone();
    let static_rts = f64::from(item.wan_round_trips);
    let at_boundary = vec![
        (page.clone(), static_rts + 1.0),
        (page.clone(), static_rts - 1.0),
    ];
    assert_eq!(cross_check_traced_wan(&mut report, &at_boundary), 0);
    assert!(!report.codes().contains(&"W108"));

    // …while anything beyond it trips the check.
    let over = vec![(page.clone(), static_rts + 1.001)];
    assert_eq!(cross_check_traced_wan(&mut report, &over), 1);
    assert!(report.codes().contains(&"W108"), "{}", report.render_text());
}
