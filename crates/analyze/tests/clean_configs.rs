//! The paper's own deployments must lint clean: every configuration of §4,
//! for both applications, produces **zero** diagnostics — no errors (the
//! acceptance bar) and no warnings (the descriptors follow their own
//! advice). The one deliberate exception is the centralized baseline, the
//! paper's motivating strawman: it *is* a wide-area single point of failure,
//! and the linter says so (`W109`) — exactly that warning and nothing else.

use mutsvc_analyze::analyze_target;
use mutsvc_core::{AppKind, Config};
use proptest::proptest;

#[test]
fn every_paper_deployment_is_diagnostic_free() {
    for app in AppKind::all() {
        for config in Config::all() {
            let report = analyze_target(app, config);
            if config == Config::Centralized {
                assert_eq!(
                    report.codes(),
                    vec!["W109"],
                    "{}/centralized should warn about its single point of failure \
                     and nothing else:\n{}",
                    app.name(),
                    report.render_text()
                );
            } else {
                assert!(
                    report.diagnostics.is_empty(),
                    "{}/{} should lint clean:\n{}",
                    app.name(),
                    config.name(),
                    report.render_text()
                );
            }
            assert!(!report.has_errors());
            // Every page stays within its §4.2 budget with room to spare
            // already checked; the summary must cover the full page set.
            assert!(!report.pages.is_empty());
            for page in &report.pages {
                assert!(
                    page.wan_round_trips <= page.limit,
                    "{}/{} {}: {} > {}",
                    app.name(),
                    config.name(),
                    page.page,
                    page.wan_round_trips,
                    page.limit
                );
            }
        }
    }
}

proptest! {
    /// Property form: any sampled application × configuration pair yields a
    /// report without error-severity diagnostics.
    #[test]
    fn sampled_deployments_have_no_errors(app_idx in 0usize..2, cfg_idx in 0usize..5) {
        let app = AppKind::all()[app_idx];
        let config = Config::all()[cfg_idx];
        let report = analyze_target(app, config);
        proptest::prop_assert!(
            !report.has_errors(),
            "{}/{} reported errors: {:?}",
            app.name(),
            config.name(),
            report.codes()
        );
    }
}
