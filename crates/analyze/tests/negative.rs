//! Negative coverage: deliberately broken descriptors must trip the lints.
//! Each test takes a paper scenario, damages one aspect of its deployment,
//! and asserts the corresponding diagnostic code fires.

use std::collections::BTreeSet;

use mutsvc_analyze::{analyze, AnalyzeInput};
use mutsvc_core::{wan_invariant, AppKind, Config, Scenario};
use mutsvc_desim::SimDuration;
use mutsvc_middleware::{Call, DbAccess, PageRequest, Placement, UpdatePropagation};
use mutsvc_relstore::{Mutation, Query, Value};

fn report_for(
    app: AppKind,
    config: Config,
    damage: impl FnOnce(&mut mutsvc_workload::ExperimentInput, &mutsvc_core::PaperNodes),
) -> mutsvc_analyze::Report {
    let (mut input, nodes) = Scenario::quick(app, config).build();
    damage(&mut input, &nodes);
    let pages = input.app.all_pages();
    let flows = input.app.session_flows();
    analyze(&AnalyzeInput {
        app_name: app.name(),
        registry: &input.registry,
        descriptor: &input.descriptor,
        db: &input.db,
        nodes: &nodes,
        topology: &input.topology,
        pages: &pages,
        flows: &flows,
        invariant: wan_invariant(config),
        fault_context: None,
    })
}

#[test]
fn e001_write_primary_across_the_wan() {
    // The Commit page writes the inventory table; marooning InventoryEJB's
    // primary on an edge puts every write across the WAN.
    let report = report_for(AppKind::PetStore, Config::RemoteFacade, |input, nodes| {
        let inventory = input.registry.by_name("InventoryEJB").unwrap();
        input.descriptor.placements.insert(
            inventory,
            Placement {
                primary: nodes.edge1,
                replicas: BTreeSet::new(),
            },
        );
    });
    assert!(report.has_errors());
    assert!(report.codes().contains(&"E001"), "{}", report.render_text());
}

#[test]
fn e002_push_propagation_without_replicas() {
    // Remote-façade keeps every entity centralized; declaring SyncPush
    // propagation gives the pusher nothing to push to.
    let report = report_for(AppKind::PetStore, Config::RemoteFacade, |input, _| {
        input.descriptor.entity_propagation = UpdatePropagation::SyncPush;
    });
    assert!(report.codes().contains(&"E002"), "{}", report.render_text());
}

#[test]
fn e002_async_push_without_subscribers() {
    // Async-updates relies on the UpdateSubscriber MDB at each replica
    // node; unplacing it from the edges leaves pushes with no receiver.
    let report = report_for(AppKind::PetStore, Config::AsyncUpdates, |input, nodes| {
        let mdb = input.registry.by_name("UpdateSubscriber").unwrap();
        input.descriptor.placements.insert(
            mdb,
            Placement {
                primary: nodes.main,
                replicas: BTreeSet::new(),
            },
        );
    });
    assert!(report.codes().contains(&"E002"), "{}", report.render_text());
}

#[test]
fn e003_budget_exceeded_when_caches_are_stripped() {
    // Stripping the Item/Inventory replicas from stateful-caching while
    // keeping its budget of one makes the Item page fetch twice.
    let report = report_for(AppKind::PetStore, Config::StatefulCaching, |input, _| {
        for name in ["ItemEJB", "InventoryEJB"] {
            let id = input.registry.by_name(name).unwrap();
            let primary = input.descriptor.placement(id).primary;
            input.descriptor.placements.insert(
                id,
                Placement {
                    primary,
                    replicas: BTreeSet::new(),
                },
            );
        }
    });
    assert!(report.codes().contains(&"E003"), "{}", report.render_text());
}

#[test]
fn e004_unplaced_and_misplaced_components() {
    let report = report_for(AppKind::PetStore, Config::RemoteFacade, |input, nodes| {
        let catalog = input.registry.by_name("Catalog").unwrap();
        input.descriptor.placements.remove(&catalog);
        let customer = input.registry.by_name("Customer").unwrap();
        input.descriptor.placements.insert(
            customer,
            Placement {
                primary: nodes.router,
                replicas: BTreeSet::new(),
            },
        );
    });
    let codes = report.codes();
    assert!(
        codes.iter().filter(|&&c| c == "E004").count() >= 2,
        "{}",
        report.render_text()
    );
    // Validity errors stop the analysis before any page walk.
    assert!(report.pages.is_empty());
}

#[test]
fn w101_bmp_finder_over_the_wan() {
    // The §4.1 baseline application (direct-JDBC web tier, BMP finders)
    // deployed naively to an edge: every finder row costs a WAN round trip.
    let report = report_for(AppKind::PetStore, Config::Centralized, |input, nodes| {
        for name in ["web", "ShoppingClientController", "ShoppingCart"] {
            let id = input.registry.by_name(name).unwrap();
            input.descriptor.placements.insert(
                id,
                Placement {
                    primary: nodes.edge1,
                    replicas: BTreeSet::new(),
                },
            );
        }
    });
    assert!(report.codes().contains(&"W101"), "{}", report.render_text());
}

#[test]
fn w102_session_facade_writing_across_the_wan() {
    // Replicating the Customer façade to the edges makes the Commit page
    // run its order mutations from edge1, across the WAN from the database.
    let report = report_for(AppKind::PetStore, Config::RemoteFacade, |input, nodes| {
        let customer = input.registry.by_name("Customer").unwrap();
        input.descriptor.placements.insert(
            customer,
            Placement {
                primary: nodes.main,
                replicas: [nodes.edge1, nodes.edge2].into_iter().collect(),
            },
        );
    });
    assert!(report.codes().contains(&"W102"), "{}", report.render_text());
}

#[test]
fn w105_read_your_writes_under_async_push() {
    // A page that updates an item and then re-reads it from the edge
    // replica: under AsyncPush the replica still holds the pre-write value
    // when the response renders.
    let (input, nodes) = Scenario::quick(AppKind::PetStore, Config::AsyncUpdates).build();
    let mutsvc_apps::App::PetStore(ps) = &input.app else {
        unreachable!()
    };
    let params = ps.representative_params();
    let t = ps.tables.item;
    let item = ps.components.item;
    let web = ps.components.web;
    let root = Call::new(web, "editItem", SimDuration::ZERO)
        .invoke(
            Call::new(item, "update", SimDuration::ZERO).mutate(Mutation::Update {
                table: t,
                id: params.item,
                column: 2,
                value: Value::Int(1),
            }),
            100,
            100,
        )
        .invoke(
            Call::new(item, "load", SimDuration::ZERO).query(
                Query::ByPk {
                    table: t,
                    id: params.item,
                },
                DbAccess::Single,
            ),
            100,
            400,
        );
    let page = PageRequest::new("EditItem", root, 8_000);
    let pages = vec![page];
    let report = analyze(&AnalyzeInput {
        app_name: "petstore",
        registry: &input.registry,
        descriptor: &input.descriptor,
        db: &input.db,
        nodes: &nodes,
        topology: &input.topology,
        pages: &pages,
        flows: &[],
        invariant: wan_invariant(Config::AsyncUpdates),
        fault_context: None,
    });
    assert!(report.codes().contains(&"W105"), "{}", report.render_text());
    assert!(!report.has_errors(), "{}", report.render_text());
}

#[test]
fn w103_disabled_stub_caching() {
    let report = report_for(AppKind::PetStore, Config::RemoteFacade, |input, _| {
        input.descriptor.stub_caching = false;
    });
    assert!(report.codes().contains(&"W103"), "{}", report.render_text());
}

#[test]
fn w104_dead_and_undeclared_tags() {
    let report = report_for(AppKind::PetStore, Config::QueryCaching, |input, _| {
        input
            .descriptor
            .query_cache
            .cacheable_tags
            .remove("ps:items-by-product");
        input
            .descriptor
            .query_cache
            .cacheable_tags
            .insert("no-such-tag".to_string());
    });
    let codes = report.codes();
    assert!(
        codes.iter().filter(|&&c| c == "W104").count() >= 2,
        "{}",
        report.render_text()
    );
}

#[test]
fn w107_caching_machinery_with_no_memoizable_page() {
    // Async-updates provisions entity replicas and edge query caches; narrow
    // the application to a single writing page and no bind can ever be
    // certified replayable, leaving the bound-program cache permanently idle.
    let (input, nodes) = Scenario::quick(AppKind::PetStore, Config::AsyncUpdates).build();
    let mutsvc_apps::App::PetStore(ps) = &input.app else {
        unreachable!()
    };
    let params = ps.representative_params();
    let root = Call::new(ps.components.web, "editItem", SimDuration::ZERO).invoke(
        Call::new(ps.components.item, "update", SimDuration::ZERO).mutate(Mutation::Update {
            table: ps.tables.item,
            id: params.item,
            column: 2,
            value: Value::Int(1),
        }),
        100,
        100,
    );
    let pages = vec![PageRequest::new("EditItem", root, 8_000)];
    let report = analyze(&AnalyzeInput {
        app_name: "petstore",
        registry: &input.registry,
        descriptor: &input.descriptor,
        db: &input.db,
        nodes: &nodes,
        topology: &input.topology,
        pages: &pages,
        flows: &[],
        invariant: wan_invariant(Config::AsyncUpdates),
        fault_context: None,
    });
    assert!(report.codes().contains(&"W107"), "{}", report.render_text());
}

#[test]
fn w108_traced_wan_rts_disagreeing_with_the_static_walk() {
    use mutsvc_analyze::cross_check_traced_wan;
    let mut report = report_for(AppKind::PetStore, Config::RemoteFacade, |_, _| {});
    assert!(!report.codes().contains(&"W108"));

    // Agreement (and sub-RT protocol jitter) stays silent.
    let agreeing: Vec<(String, f64)> = report
        .pages
        .iter()
        .map(|p| (p.page.clone(), f64::from(p.wan_round_trips) + 0.4))
        .collect();
    assert_eq!(cross_check_traced_wan(&mut report, &agreeing), 0);

    // A traced run observing two extra WAN round trips on Item — say a
    // replica that silently stopped covering it — must trip the check.
    let item_static = f64::from(
        report
            .pages
            .iter()
            .find(|p| p.page == "Item")
            .unwrap()
            .wan_round_trips,
    );
    let disagreeing = vec![
        ("Item".to_string(), item_static + 2.0),
        ("NotAPage".to_string(), 99.0), // unknown pages are ignored
    ];
    assert_eq!(cross_check_traced_wan(&mut report, &disagreeing), 1);
    assert!(report.codes().contains(&"W108"), "{}", report.render_text());
    let w108 = report
        .diagnostics
        .iter()
        .find(|d| d.code == "W108")
        .unwrap();
    assert_eq!(w108.span.page.as_deref(), Some("Item"));
    assert!(w108.message.contains("not behaving as analyzed"));
}

#[test]
fn w113_slo_latency_objective_below_the_wan_floor() {
    use mutsvc_analyze::check_slo_reachability;
    use mutsvc_core::SloSpec;

    let mut report = report_for(AppKind::PetStore, Config::RemoteFacade, |_, _| {});
    assert!(!report.codes().contains(&"W113"));
    let (input, _) = Scenario::quick(AppKind::PetStore, Config::RemoteFacade).build();

    // Remote-façade serves Item through one wide-area façade call, so the
    // static walk prices it at least one 200 ms round trip on the paper
    // topology's 100 ms WAN legs.
    let item_rts = report
        .pages
        .iter()
        .find(|p| p.page == "Item")
        .unwrap()
        .wan_round_trips;
    assert!(item_rts >= 1, "remote-façade Item must cross the WAN");
    let floor = f64::from(item_rts) * 200.0;

    // Reachable objectives — and objectives naming unknown pages — stay
    // silent.
    let fine = SloSpec::new()
        .page("Item", floor + 50.0, 0.95)
        .page("NotAPage", 1.0, 0.5);
    assert_eq!(
        check_slo_reachability(&mut report, &fine, &input.topology),
        0
    );
    assert!(!report.codes().contains(&"W113"));

    // A threshold under the static floor can never be met on this topology.
    let hopeless = SloSpec::new().page("Item", floor - 100.0, 0.95);
    assert_eq!(
        check_slo_reachability(&mut report, &hopeless, &input.topology),
        1
    );
    assert!(report.codes().contains(&"W113"), "{}", report.render_text());
    let w113 = report
        .diagnostics
        .iter()
        .find(|d| d.code == "W113")
        .unwrap();
    assert_eq!(w113.span.page.as_deref(), Some("Item"));
    assert!(w113.message.contains("unsatisfiable"));
}

#[test]
fn w114_adaptive_controller_blind_to_every_episode() {
    use mutsvc_analyze::check_adaptive_observability;
    use mutsvc_core::FaultCase;
    use mutsvc_workload::{AdaptiveSettings, MetricsSettings};

    let (input, nodes) = Scenario::quick(AppKind::PetStore, Config::StatefulCaching).build();
    let warmup = SimDuration::from_secs(10);
    let metrics = MetricsSettings::windowed(SimDuration::from_secs(5));

    // The standard suite's episodes are active for half their run window.
    let episodes: Vec<_> = FaultCase::all()
        .iter()
        .map(|case| case.view(&input.topology, &nodes, warmup, SimDuration::from_secs(120)))
        .collect();
    assert!(episodes.iter().all(|e| !e.active().is_zero()));

    // A controller folding telemetry well inside the episodes stays silent,
    // as does a disabled controller no matter how slow its cadence reads.
    let mut report = report_for(AppKind::PetStore, Config::StatefulCaching, |_, _| {});
    let nimble = AdaptiveSettings::every(SimDuration::from_secs(10));
    assert_eq!(
        check_adaptive_observability(&mut report, &nimble, &metrics, &episodes),
        0
    );
    assert_eq!(
        check_adaptive_observability(&mut report, &AdaptiveSettings::off(), &metrics, &episodes),
        0
    );
    // Steady-state drift is a legitimate target: no episodes, no warning.
    let sluggish = AdaptiveSettings::every(SimDuration::from_secs(90));
    assert_eq!(
        check_adaptive_observability(&mut report, &sluggish, &metrics, &[]),
        0
    );
    assert!(!report.codes().contains(&"W114"));

    // A 90 s cadence outlasts every 60 s-active episode: the controller can
    // never observe the faults it is deployed to ride out.
    assert_eq!(
        check_adaptive_observability(&mut report, &sluggish, &metrics, &episodes),
        1
    );
    assert!(report.codes().contains(&"W114"), "{}", report.render_text());
    let w114 = report
        .diagnostics
        .iter()
        .find(|d| d.code == "W114")
        .unwrap();
    assert!(w114
        .message
        .contains("heals before the controller can observe"));

    // Armed controller with the recorder off: no telemetry, no round.
    let mut blind = report_for(AppKind::PetStore, Config::StatefulCaching, |_, _| {});
    assert_eq!(
        check_adaptive_observability(&mut blind, &nimble, &MetricsSettings::off(), &episodes),
        1
    );
    assert!(blind.codes().contains(&"W114"), "{}", blind.render_text());
}

#[test]
fn w106_replicated_stateful_session_off_the_central_node() {
    let report = report_for(
        AppKind::PetStore,
        Config::StatefulCaching,
        |input, nodes| {
            let cart = input.registry.by_name("ShoppingCart").unwrap();
            input.descriptor.placements.insert(
                cart,
                Placement {
                    primary: nodes.edge1,
                    replicas: [nodes.edge2].into_iter().collect(),
                },
            );
        },
    );
    assert!(report.codes().contains(&"W106"), "{}", report.render_text());
}

#[test]
fn w109_centralized_is_a_wide_area_single_point_of_failure() {
    use mutsvc_analyze::analyze_target;
    // The paper's strawman: every page — reads included — dies with the WAN.
    let report = analyze_target(AppKind::PetStore, Config::Centralized);
    assert!(report.codes().contains(&"W109"), "{}", report.render_text());
    let w109 = report
        .diagnostics
        .iter()
        .find(|d| d.code == "W109")
        .unwrap();
    assert!(w109.message.contains("WAN partition"));

    // §4.3 replicas keep catalog reads local: no single point of failure
    // for reads, in either application.
    for app in AppKind::all() {
        let report = analyze_target(app, Config::StatefulCaching);
        assert!(
            !report.codes().contains(&"W109"),
            "{}: {}",
            app.name(),
            report.render_text()
        );
    }
}

#[test]
fn w110_unbounded_staleness_when_propagation_is_stripped() {
    // Keep the §4.3 entity replicas but delete the propagation mode that
    // maintains them: every replica-served read site degrades to Unbounded
    // on the staleness lattice and the dataflow reports each one.
    let report = report_for(AppKind::PetStore, Config::StatefulCaching, |input, _| {
        input.descriptor.entity_propagation = UpdatePropagation::None;
    });
    assert!(report.codes().contains(&"W110"), "{}", report.render_text());
    // The per-page staleness column degrades with the sites.
    assert!(
        report.pages.iter().any(|p| p.staleness == "unbounded"),
        "{}",
        report.render_text()
    );
}

#[test]
fn w111_failover_target_unreachable_during_its_episode() {
    use mutsvc_analyze::FaultContext;
    // Damage the edge-crash episode so the central server dies with the
    // edge: the resilient policy's edge→main failover edge then has nowhere
    // to land exactly when it is supposed to be taken.
    let scenario = Scenario::quick(AppKind::PetStore, Config::StatefulCaching);
    let (warmup, duration) = (scenario.warmup, scenario.duration);
    let (input, nodes) = scenario.build();
    let pages = input.app.all_pages();
    let flows = input.app.session_flows();
    let mut ctx = FaultContext::standard(&input.topology, &nodes, warmup, duration);
    for view in &mut ctx.episodes {
        if view.name == "edge-crash" {
            view.dead_nodes.push(nodes.main);
        }
    }
    let report = analyze(&AnalyzeInput {
        app_name: "petstore",
        registry: &input.registry,
        descriptor: &input.descriptor,
        db: &input.db,
        nodes: &nodes,
        topology: &input.topology,
        pages: &pages,
        flows: &flows,
        invariant: wan_invariant(Config::StatefulCaching),
        fault_context: Some(ctx),
    });
    assert!(report.codes().contains(&"W111"), "{}", report.render_text());
    let w111 = report
        .diagnostics
        .iter()
        .find(|d| d.code == "W111")
        .unwrap();
    assert!(w111.message.contains("edge-crash"), "{}", w111.message);
}

#[test]
fn w112_relayed_crossing_through_two_wan_hops() {
    // Maroon the Catalog's only instance on edge-2: pages entered at edge-1
    // must relay through the router across both wide-area legs, and each
    // round trip is charged twice against the §4.2 budget.
    let report = report_for(AppKind::PetStore, Config::RemoteFacade, |input, nodes| {
        let catalog = input.registry.by_name("Catalog").unwrap();
        input.descriptor.placements.insert(
            catalog,
            Placement {
                primary: nodes.edge2,
                replicas: BTreeSet::new(),
            },
        );
    });
    assert!(report.codes().contains(&"W112"), "{}", report.render_text());
    let w112 = report
        .diagnostics
        .iter()
        .find(|d| d.code == "W112")
        .unwrap();
    assert!(
        w112.message.contains("2 wide-area hops"),
        "{}",
        w112.message
    );
    // The budget check prices the same relay, so the hop-weighted E003
    // fires alongside the lint that explains it.
    assert!(report.codes().contains(&"E003"), "{}", report.render_text());
}

#[test]
fn e005_own_write_rolled_back_when_the_propagation_path_partitions() {
    use mutsvc_analyze::FaultContext;
    use mutsvc_apps::{SessionFlow, SessionKind};
    // A two-page session: EditItem writes the item table at the center,
    // ItemAgain re-reads the same table from the edge replica. Under
    // asynchronous propagation the replica trails the write, and the
    // main-link partition severs the JMS path while the resilient policy
    // keeps serving from the edge — the session observes its own write
    // rolled back.
    let scenario = Scenario::quick(AppKind::PetStore, Config::AsyncUpdates);
    let (warmup, duration) = (scenario.warmup, scenario.duration);
    let (input, nodes) = scenario.build();
    let mutsvc_apps::App::PetStore(ps) = &input.app else {
        unreachable!()
    };
    let params = ps.representative_params();
    let t = ps.tables.item;
    let item = ps.components.item;
    let web = ps.components.web;
    let write_root = Call::new(web, "editItem", SimDuration::ZERO).invoke(
        Call::new(item, "update", SimDuration::ZERO).mutate(Mutation::Update {
            table: t,
            id: params.item,
            column: 2,
            value: Value::Int(1),
        }),
        100,
        100,
    );
    let read_root = Call::new(web, "viewItem", SimDuration::ZERO).invoke(
        Call::new(item, "load", SimDuration::ZERO).query(
            Query::ByPk {
                table: t,
                id: params.item,
            },
            DbAccess::Single,
        ),
        100,
        400,
    );
    let pages = vec![
        PageRequest::new("EditItem", write_root, 8_000),
        PageRequest::new("ItemAgain", read_root, 8_000),
    ];
    let flows = vec![SessionFlow {
        pattern: "Editor",
        kind: SessionKind::Transactional,
        pages: vec!["EditItem", "ItemAgain"],
        chain: true,
        weights: vec![0.5, 0.5],
    }];
    let ctx = FaultContext::standard(&input.topology, &nodes, warmup, duration);
    let report = analyze(&AnalyzeInput {
        app_name: "petstore",
        registry: &input.registry,
        descriptor: &input.descriptor,
        db: &input.db,
        nodes: &nodes,
        topology: &input.topology,
        pages: &pages,
        flows: &flows,
        invariant: wan_invariant(Config::AsyncUpdates),
        fault_context: Some(ctx),
    });
    assert!(report.has_errors());
    assert!(report.codes().contains(&"E005"), "{}", report.render_text());
    let e005 = report
        .diagnostics
        .iter()
        .find(|d| d.code == "E005")
        .unwrap();
    assert!(e005.message.contains("Editor"), "{}", e005.message);
    assert!(
        e005.message.contains("main-link-partition"),
        "{}",
        e005.message
    );
    assert_eq!(e005.span.page.as_deref(), Some("ItemAgain"));
}

#[test]
fn w109_fires_when_damage_pins_every_read_to_the_center() {
    // Undo §4.3: strip every entity replica from the stateful-caching
    // deployment. Catalog reads fall back to the center and the edge is
    // again one cut away from serving nothing.
    let report = report_for(
        AppKind::PetStore,
        Config::StatefulCaching,
        |input, nodes| {
            input.descriptor.entity_propagation = UpdatePropagation::None;
            for placement in input.descriptor.placements.values_mut() {
                placement.replicas.remove(&nodes.edge1);
                placement.replicas.remove(&nodes.edge2);
            }
        },
    );
    assert!(report.codes().contains(&"W109"), "{}", report.render_text());
}
