//! Multi-hop WAN path costs over an arbitrary weighted topology.
//!
//! The original walker judged a crossing "WAN or not" through the star
//! topology's node-name classification ([`mutsvc_core::PaperNodes::is_wan`]),
//! which silently assumes every wide-area crossing traverses exactly one
//! WAN leg. [`PathModel`] replaces that with shortest-path reasoning over
//! the topology graph itself: a crossing's wide-area cost is the number of
//! WAN *hops* on its route (links whose one-way propagation latency is
//! strictly above [`WAN_HOP_THRESHOLD`]), so the §4.2 budget check stays
//! correct
//! on meshes where an edge-to-edge call relays through several points of
//! presence. On the paper's star the two models agree link-for-link (an
//! equivalence the test below pins), except for the deliberately uncovered
//! edge↔edge direction, which the star walker never produces but a mesh
//! would: that route crosses two WAN legs and costs — and warns (`W112`) —
//! accordingly.

use mutsvc_desim::time::SimDuration;
use mutsvc_netsim::{NodeId, Topology, WAN_LATENCY_THRESHOLD};

/// One-way link propagation latency above which a link counts as a
/// wide-area hop — *the same constant* the engine uses everywhere a
/// WAN/LAN judgement is made ([`mutsvc_netsim::WAN_LATENCY_THRESHOLD`]):
/// `Topology::regions()` merges links at or below it, the
/// conservative-parallel engine's lookahead (`min_wan_latency`) and this
/// hop counter take links strictly above it. One definition, complementary
/// comparisons — the analyzer, the placement layer's region coarsening and
/// the shard lookahead can never classify a link differently.
pub const WAN_HOP_THRESHOLD: SimDuration = WAN_LATENCY_THRESHOLD;

/// Shortest-path wide-area cost model over a weighted topology.
pub struct PathModel<'a> {
    topology: &'a Topology,
    threshold: SimDuration,
}

impl<'a> PathModel<'a> {
    /// A model over `topology` with the standard [`WAN_HOP_THRESHOLD`].
    pub fn new(topology: &'a Topology) -> PathModel<'a> {
        PathModel {
            topology,
            threshold: WAN_HOP_THRESHOLD,
        }
    }

    /// The number of wide-area hops on the routed path `from → to`
    /// (0 when the nodes coincide or no route exists).
    pub fn wan_hops(&self, from: NodeId, to: NodeId) -> u32 {
        if from == to {
            return 0;
        }
        self.topology.route(from, to).map_or(0, |route| {
            route
                .iter()
                .filter(|&&l| self.topology.link(l).latency > self.threshold)
                .count() as u32
        })
    }

    /// Whether the routed path crosses the wide area at all.
    pub fn is_wan(&self, from: NodeId, to: NodeId) -> bool {
        self.wan_hops(from, to) > 0
    }

    /// Round-trip propagation latency between two nodes.
    pub fn rtt(&self, a: NodeId, b: NodeId) -> SimDuration {
        self.topology.rtt(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mutsvc_core::paper_topology;

    /// On the star, hop counting and the node-name classifier agree for
    /// every pair the walker can produce; the edge↔edge direction (which
    /// the star walker never routes) is the one genuinely multi-hop pair.
    #[test]
    fn star_hops_match_node_classification() {
        for petstore in [false, true] {
            let (t, n) = paper_topology(petstore);
            let model = PathModel::new(&t);
            for from in t.node_ids() {
                for to in t.node_ids() {
                    if from == to {
                        assert_eq!(model.wan_hops(from, to), 0);
                        continue;
                    }
                    let edge_edge = (from == n.edge1 && to == n.edge2)
                        || (from == n.edge2 && to == n.edge1)
                        || (from == n.client_edge1 && to == n.client_edge2)
                        || (from == n.client_edge2 && to == n.client_edge1)
                        || ((from == n.edge1 || from == n.client_edge1)
                            && (to == n.edge2 || to == n.client_edge2))
                        || ((from == n.edge2 || from == n.client_edge2)
                            && (to == n.edge1 || to == n.client_edge1));
                    if edge_edge {
                        assert_eq!(model.wan_hops(from, to), 2, "{from} -> {to}");
                        assert!(model.is_wan(from, to));
                    } else {
                        assert_eq!(model.is_wan(from, to), n.is_wan(from, to), "{from} -> {to}");
                        assert!(model.wan_hops(from, to) <= 1, "{from} -> {to}");
                    }
                }
            }
        }
    }

    #[test]
    fn rtt_reflects_wan_latency() {
        let (t, n) = paper_topology(false);
        let model = PathModel::new(&t);
        assert!(model.rtt(n.edge1, n.main) >= SimDuration::from_millis(200));
        assert!(model.rtt(n.main, n.router) < SimDuration::from_millis(2));
    }
}
