//! `mutsvc-analyze` — the static deployment linter CLI.
//!
//! ```text
//! mutsvc-analyze [--app petstore|rubis] [--config NAME] [--all]
//!                [--format text|json|sarif]
//!                [--check-faults [--smoke]]
//!                [--explain CODE]
//! ```
//!
//! With no selection flags, `--all` is assumed (both applications × all five
//! configurations). `--explain CODE` prints the registered documentation
//! for one diagnostic code and exits. `--check-faults` additionally runs
//! the fault-suite simulations for every selected cell and cross-checks the
//! analyzer's predicted per-episode availability against the simulated
//! figure (`--smoke` shortens the simulated windows to CI wall-clock and
//! widens the tolerance accordingly). Exits `1` when any analyzed
//! deployment has errors or a cross-check misses, `2` on usage errors.

use std::process::ExitCode;

use mutsvc_analyze::{analyze_target_windows, explain, sarif_document, Report};
use mutsvc_core::{AppKind, Config, FaultCase, Scenario};
use mutsvc_desim::time::SimDuration;
use mutsvc_workload::FaultPolicy;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Sarif,
}

struct Options {
    app: Option<AppKind>,
    config: Option<Config>,
    all: bool,
    format: Format,
    explain: Option<String>,
    check_faults: bool,
    smoke: bool,
}

fn usage() -> String {
    let configs: Vec<&str> = Config::all().iter().map(|c| c.name()).collect();
    format!(
        "usage: mutsvc-analyze [--app petstore|rubis] [--config NAME] [--all] \
         [--format text|json|sarif] [--check-faults [--smoke]] [--explain CODE]\n\
         configs: {}",
        configs.join(", ")
    )
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        app: None,
        config: None,
        all: false,
        format: Format::Text,
        explain: None,
        check_faults: false,
        smoke: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--app" => {
                let value = it.next().ok_or("--app needs a value")?;
                opts.app = Some(match value.as_str() {
                    "petstore" => AppKind::PetStore,
                    "rubis" => AppKind::Rubis,
                    other => return Err(format!("unknown application `{other}`")),
                });
            }
            "--config" => {
                let value = it.next().ok_or("--config needs a value")?;
                opts.config = Some(
                    Config::all()
                        .iter()
                        .copied()
                        .find(|c| c.name() == value.as_str())
                        .ok_or_else(|| format!("unknown configuration `{value}`"))?,
                );
            }
            "--all" => opts.all = true,
            "--format" => {
                let value = it.next().ok_or("--format needs a value")?;
                opts.format = match value.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    "sarif" => Format::Sarif,
                    other => return Err(format!("unknown format `{other}`")),
                };
            }
            "--explain" => {
                let value = it.next().ok_or("--explain needs a code")?;
                opts.explain = Some(value.clone());
            }
            "--check-faults" => opts.check_faults = true,
            "--smoke" => opts.smoke = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if opts.smoke && !opts.check_faults {
        return Err("--smoke only applies to --check-faults".to_string());
    }
    Ok(opts)
}

fn print_explain(code: &str) -> ExitCode {
    match explain(code) {
        Some(doc) => {
            println!("{}: {}  ({})", doc.code, doc.summary, doc.section);
            println!();
            // Re-flow the explain paragraph to honest line lengths.
            let mut line = String::new();
            for word in doc.explain.split_whitespace() {
                if !line.is_empty() && line.len() + 1 + word.len() > 76 {
                    println!("{line}");
                    line.clear();
                }
                if !line.is_empty() {
                    line.push(' ');
                }
                line.push_str(word);
            }
            if !line.is_empty() {
                println!("{line}");
            }
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("error: unknown diagnostic code `{code}`");
            ExitCode::from(2)
        }
    }
}

/// Cross-checks one cell: predicted availability per episode against a
/// resilient-arm simulation of the same episode and windows. Returns the
/// number of misses.
fn check_faults_cell(
    app: AppKind,
    config: Config,
    report: &Report,
    warmup: SimDuration,
    duration: SimDuration,
    tolerance: f64,
) -> usize {
    let mut misses = 0;
    for case in FaultCase::all() {
        let Some(row) = report
            .availability
            .iter()
            .find(|r| r.episode == case.name())
        else {
            println!(
                "  {:<9} {:<17} {:<20} no prediction  MISS",
                app.name(),
                config.name(),
                case.name()
            );
            misses += 1;
            continue;
        };
        let mut scenario = Scenario::quick(app, config);
        scenario.warmup = warmup;
        scenario.duration = duration;
        let scenario = scenario.with_fault_case(case, FaultPolicy::resilient());
        let simulated = scenario
            .run()
            .stats
            .outcome("remote1")
            .map_or(f64::NAN, mutsvc_workload::GroupOutcome::availability);
        let diff = (row.availability - simulated).abs();
        let ok = diff.is_finite() && diff <= tolerance;
        println!(
            "  {:<9} {:<17} {:<20} predicted {:.4}  simulated {:.4}  diff {:.4}  {}",
            app.name(),
            config.name(),
            case.name(),
            row.availability,
            simulated,
            diff,
            if ok { "ok" } else { "MISS" }
        );
        if !ok {
            misses += 1;
        }
    }
    misses
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            eprintln!("{}", usage());
            return ExitCode::from(2);
        }
    };

    if let Some(code) = &opts.explain {
        return print_explain(code);
    }

    let apps: Vec<AppKind> = match (opts.all, opts.app) {
        (false, Some(app)) => vec![app],
        _ => AppKind::all().to_vec(),
    };
    let configs: Vec<Config> = match (opts.all, opts.config) {
        (false, Some(config)) => vec![config],
        _ => Config::all().to_vec(),
    };

    // Predictions must line up with the simulated windows, so in smoke mode
    // the analysis itself runs against the shortened schedule.
    let quick = Scenario::quick(AppKind::PetStore, Config::Centralized);
    let (warmup, duration) = if opts.smoke {
        (SimDuration::from_secs(10), SimDuration::from_secs(40))
    } else {
        (quick.warmup, quick.duration)
    };
    // Smoke windows issue only a handful of requests per session, so the
    // simulated fraction is quantized; the full windows earn the tight bound.
    let tolerance = if opts.smoke { 0.08 } else { 0.01 };

    let mut failed = false;
    let mut misses = 0;
    let mut reports = Vec::new();
    for &app in &apps {
        for &config in &configs {
            let report = analyze_target_windows(app, config, warmup, duration);
            failed |= report.has_errors();
            match opts.format {
                Format::Text => print!("{}", report.render_text()),
                Format::Json | Format::Sarif => {}
            }
            reports.push((app, config, report));
        }
    }
    match opts.format {
        Format::Text => {}
        Format::Json => {
            let docs: Vec<String> = reports.iter().map(|(_, _, r)| r.to_json()).collect();
            println!("[{}]", docs.join(","));
        }
        Format::Sarif => {
            let docs: Vec<Report> = reports.iter().map(|(_, _, r)| r.clone()).collect();
            println!("{}", sarif_document(&docs));
        }
    }

    if opts.check_faults {
        println!(
            "fault cross-check (windows {}s+{}s, tolerance {:.2}):",
            warmup.as_secs_f64(),
            duration.as_secs_f64(),
            tolerance
        );
        for (app, config, report) in &reports {
            misses += check_faults_cell(*app, *config, report, warmup, duration, tolerance);
        }
        if misses > 0 {
            eprintln!("error: {misses} fault cross-check misses");
        } else {
            println!("fault cross-check: all cells within {tolerance:.2}");
        }
    }

    if failed || misses > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
