//! `mutsvc-analyze` — the static deployment linter CLI.
//!
//! ```text
//! mutsvc-analyze [--app petstore|rubis] [--config NAME] [--all] [--format text|json]
//! ```
//!
//! With no selection flags, `--all` is assumed (both applications × all five
//! configurations). Exits `1` when any analyzed deployment has errors, `2`
//! on usage errors.

use std::process::ExitCode;

use mutsvc_analyze::analyze_target;
use mutsvc_core::{AppKind, Config};

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
}

struct Options {
    app: Option<AppKind>,
    config: Option<Config>,
    all: bool,
    format: Format,
}

fn usage() -> String {
    let configs: Vec<&str> = Config::all().iter().map(|c| c.name()).collect();
    format!(
        "usage: mutsvc-analyze [--app petstore|rubis] [--config NAME] [--all] \
         [--format text|json]\nconfigs: {}",
        configs.join(", ")
    )
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        app: None,
        config: None,
        all: false,
        format: Format::Text,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--app" => {
                let value = it.next().ok_or("--app needs a value")?;
                opts.app = Some(match value.as_str() {
                    "petstore" => AppKind::PetStore,
                    "rubis" => AppKind::Rubis,
                    other => return Err(format!("unknown application `{other}`")),
                });
            }
            "--config" => {
                let value = it.next().ok_or("--config needs a value")?;
                opts.config = Some(
                    Config::all()
                        .iter()
                        .copied()
                        .find(|c| c.name() == value.as_str())
                        .ok_or_else(|| format!("unknown configuration `{value}`"))?,
                );
            }
            "--all" => opts.all = true,
            "--format" => {
                let value = it.next().ok_or("--format needs a value")?;
                opts.format = match value.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format `{other}`")),
                };
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            eprintln!("{}", usage());
            return ExitCode::from(2);
        }
    };

    let apps: Vec<AppKind> = match (opts.all, opts.app) {
        (false, Some(app)) => vec![app],
        _ => AppKind::all().to_vec(),
    };
    let configs: Vec<Config> = match (opts.all, opts.config) {
        (false, Some(config)) => vec![config],
        _ => Config::all().to_vec(),
    };

    let mut failed = false;
    let mut json_reports = Vec::new();
    for &app in &apps {
        for &config in &configs {
            let report = analyze_target(app, config);
            failed |= report.has_errors();
            match opts.format {
                Format::Text => print!("{}", report.render_text()),
                Format::Json => json_reports.push(report.to_json()),
            }
        }
    }
    if opts.format == Format::Json {
        println!("[{}]", json_reports.join(","));
    }
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
