//! # mutsvc-analyze — static wide-area deployment linter
//!
//! Walks every page's logical invocation tree against a deployment
//! descriptor **without executing the simulator** and checks the paper's
//! design rules:
//!
//! * the §4.2 invariant — remote-façade pages make at most one wide-area
//!   round trip (two for Pet Store's *VerifySignIn*), zero for the
//!   centralized baseline;
//! * descriptor validity — every component placed, on a hosting node, with
//!   the propagation machinery its declarations require;
//! * wide-area anti-pattern lints — `n+1` BMP finders over the WAN (the
//!   paper's motivating pathology), session façades writing across the WAN,
//!   disabled stub caching, dead or uncovered cacheable-query tags, and
//!   read-your-writes staleness hazards under asynchronous propagation.
//!
//! The static walker mirrors the binder's resolution rules under steady
//! state; a golden test cross-validates its crossing sequences against
//! [`mutsvc_middleware::Binder`]'s own warm-bind introspection, so the
//! linter cannot drift from the executable semantics.
//!
//! Diagnostic codes are stable:
//!
//! | Code | Meaning |
//! |------|---------|
//! | `E001` | writes to a table land across the WAN from the database |
//! | `E002` | push propagation declared without the machinery it needs |
//! | `E003` | page exceeds its §4.2 wide-area round-trip budget |
//! | `E004` | component unplaced or placed on a non-hosting node |
//! | `W101` | BMP-style `n+1` finder issued over the WAN |
//! | `W102` | session façade writes across the WAN |
//! | `W103` | stub caching disabled while remote calls exist |
//! | `W104` | cacheable tag never issued, or issued tag not declared |
//! | `W105` | read-your-writes staleness hazard under async propagation |
//! | `W106` | replicated stateful session not hosted on the central node |
//! | `W107` | caching machinery deployed but no page is ever memoizable |
//! | `W108` | traced WAN round trips disagree with the static walk |
//! | `W109` | every read-only page needs the wide area: a WAN partition blanks the edges |
//! | `E005` | a page can observe its own write rolled back after failover |
//! | `W110` | unbounded staleness reachable on a read path |
//! | `W111` | failover target statically unreachable during its episode |
//! | `W112` | binder crossing routes through ≥2 WAN hops (one-hop budget assumption broken) |
//! | `W113` | SLO latency objective below the static WAN round-trip floor |
//! | `W114` | adaptive controller's observation period outlasts every fault episode |
//!
//! Beyond the flat walk, three dataflow analyses run over the walked pages:
//! a staleness lattice ([`dataflow`]) abstract-interprets every cached read
//! against the propagation machinery and propagates written tables across
//! pages along the service-usage flow graphs; a reachability analysis
//! ([`reachability`]) predicts per-episode availability under the standard
//! fault suite; and a multi-hop path model ([`paths`]) prices every
//! crossing by its shortest-path WAN hop count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataflow;
pub mod diagnostics;
pub mod explain;
pub mod paths;
pub mod reachability;
pub mod walker;

use std::collections::BTreeSet;

use mutsvc_apps::SessionFlow;
use mutsvc_core::{
    wan_invariant, AppKind, Config, EpisodeView, PaperNodes, Scenario, WanInvariant,
};
use mutsvc_middleware::{
    ComponentKind, ComponentRegistry, CrossingKind, DeploymentDescriptor, PageRequest,
    UpdatePropagation,
};
use mutsvc_netsim::{NodeId, Topology};
use mutsvc_relstore::Database;
use mutsvc_workload::{AdaptiveSettings, MetricsSettings, SloSpec};

pub use dataflow::{analyze_staleness, site_staleness, Staleness, StalenessAnalysis};
pub use diagnostics::{
    sarif_document, AvailabilityRow, CrossingNote, Diagnostic, PageWanCost, Report, Severity, Span,
};
pub use explain::{explain, CodeDoc, CODES};
pub use paths::{PathModel, WAN_HOP_THRESHOLD};
pub use reachability::{
    predict_availability, AvailabilityAnalysis, EpisodePrediction, FaultContext, PageFate,
};
pub use walker::{entry_node, walk_page, CachedRead, PageWalk, ReadVia, WalkEvent, WalkEventKind};

/// Everything the analyzer needs about one application × configuration.
pub struct AnalyzeInput<'a> {
    /// Application name for reporting.
    pub app_name: &'a str,
    /// Component inventory.
    pub registry: &'a ComponentRegistry,
    /// The deployment under analysis.
    pub descriptor: &'a DeploymentDescriptor,
    /// Populated database (read-only; used for finder result-set sizes).
    pub db: &'a Database,
    /// The paper topology's named nodes (entry wiring and reporting labels).
    pub nodes: &'a PaperNodes,
    /// The weighted topology graph (multi-hop WAN path costs, episode
    /// reachability).
    pub topology: &'a Topology,
    /// Every page to walk.
    pub pages: &'a [PageRequest],
    /// The service-usage patterns' page-flow graphs (inter-page dataflow
    /// and availability page weights).
    pub flows: &'a [SessionFlow],
    /// The §4.2 budget to enforce.
    pub invariant: WanInvariant,
    /// Fault model to verify availability against (`None` skips the
    /// reachability analysis and E005/W111).
    pub fault_context: Option<FaultContext>,
}

/// The human-readable name of a paper-topology node.
pub fn node_label(nodes: &PaperNodes, id: NodeId) -> String {
    let named = [
        (nodes.main, "main"),
        (nodes.edge1, "edge1"),
        (nodes.edge2, "edge2"),
        (nodes.db, "db"),
        (nodes.router, "router"),
        (nodes.client_local, "client-local"),
        (nodes.client_edge1, "client-edge1"),
        (nodes.client_edge2, "client-edge2"),
    ];
    named
        .iter()
        .find(|&&(n, _)| n == id)
        .map_or_else(|| id.to_string(), |&(_, label)| label.to_string())
}

fn kind_label(kind: CrossingKind) -> &'static str {
    match kind {
        CrossingKind::Rmi => "rmi",
        CrossingKind::Jndi => "jndi",
        CrossingKind::Fetch => "fetch",
        CrossingKind::Jdbc { .. } => "jdbc",
    }
}

/// Analyzes one deployment: validity first, then a static walk of every
/// page, then the budget check and lints. Returns the full report; callers
/// decide what to do with errors ([`Report::has_errors`]).
pub fn analyze(input: &AnalyzeInput<'_>) -> Report {
    let mut report = Report {
        app: input.app_name.to_string(),
        config: input.descriptor.name.clone(),
        pages: Vec::new(),
        diagnostics: Vec::new(),
        availability: Vec::new(),
        staleness_iterations: 0,
        staleness_converged: true,
    };

    check_placements(input, &mut report);
    if report.has_errors() {
        // Unplaced components would panic the walker; stop at validity.
        report.sort_diagnostics();
        return report;
    }

    let model = PathModel::new(input.topology);
    let walks = walk_all_pages(input, &model, &mut report);
    check_wan_budget(input, &model, &walks, &mut report);
    check_multi_hop_crossings(input, &model, &walks, &mut report);
    check_write_locality(input, &walks, &mut report);
    check_propagation_machinery(input, &mut report);
    check_stub_caching(input, &walks, &mut report);
    check_query_tags(input, &walks, &mut report);
    check_stateful_replicas(input, &mut report);
    check_plan_cacheability(input, &walks, &mut report);
    check_wan_single_point_of_failure(input, &walks, &mut report);
    emit_walk_lints(input, &walks, &mut report);

    let staleness = analyze_staleness(input.descriptor, input.flows, &walks);
    report.staleness_iterations = staleness.iterations;
    report.staleness_converged = staleness.converged;
    for page in &mut report.pages {
        if let Some(bound) = staleness.page_bounds.get(&page.page) {
            page.staleness = bound.label();
        }
    }
    emit_staleness_lints(input, &staleness, &mut report);

    if let Some(ctx) = &input.fault_context {
        let analysis = predict_availability(input, ctx, &walks);
        emit_fault_lints(input, ctx, &staleness, &analysis, &mut report);
        report.availability = analysis
            .episodes
            .iter()
            .map(|e| AvailabilityRow {
                episode: e.episode.clone(),
                availability: e.availability,
            })
            .collect();
    }

    report.sort_diagnostics();
    report
}

/// Builds the full analysis for a paper scenario: application, descriptor,
/// topology, usage flows, invariant table and standard fault suite exactly
/// as the simulator would assemble them.
pub fn analyze_target(app: AppKind, config: Config) -> Report {
    let scenario = Scenario::quick(app, config);
    analyze_target_windows(app, config, scenario.warmup, scenario.duration)
}

/// [`analyze_target`] under explicit warm-up/measured windows — the fault
/// episodes are scheduled relative to these, so predictions line up with a
/// suite run that shortened them (the bench smoke mode).
pub fn analyze_target_windows(
    app: AppKind,
    config: Config,
    warmup: mutsvc_desim::time::SimDuration,
    duration: mutsvc_desim::time::SimDuration,
) -> Report {
    let mut scenario = Scenario::quick(app, config);
    scenario.warmup = warmup;
    scenario.duration = duration;
    let (input, nodes) = scenario.build();
    let pages = input.app.all_pages();
    let flows = input.app.session_flows();
    let fault_context = FaultContext::standard(&input.topology, &nodes, warmup, duration);
    analyze(&AnalyzeInput {
        app_name: app.name(),
        registry: &input.registry,
        descriptor: &input.descriptor,
        db: &input.db,
        nodes: &nodes,
        topology: &input.topology,
        pages: &pages,
        flows: &flows,
        invariant: wan_invariant(config),
        fault_context: Some(fault_context),
    })
}

/// W108: cross-checks a traced run's per-page WAN round trips against the
/// static walker's counts.
///
/// `traced` holds `(page, mean WAN round trips)` pairs from a traced
/// simulator run — the *logical* accounting the tracer records from the
/// binder's crossing list, which is defined on the same terms as the static
/// walk (synchronous call tree, HTTP/TCP envelope and sampled DGC chatter
/// excluded; the trace's measured critical-path decomposition reports those
/// separately). A disagreement beyond one round trip means the deployment
/// is not executing the calls the analyzer reasoned about — a stale
/// descriptor, a diverged walker, or a misconfigured run — and appends a
/// `W108` warning for the page. Returns the number of warnings added;
/// pages absent from the static report are ignored.
pub fn cross_check_traced_wan(report: &mut Report, traced: &[(String, f64)]) -> usize {
    let mut added = 0;
    for (page, traced_rts) in traced {
        let Some(cost) = report.pages.iter().find(|p| &p.page == page) else {
            continue;
        };
        let static_rts = f64::from(cost.wan_round_trips);
        if (static_rts - traced_rts).abs() > 1.0 {
            report.diagnostics.push(Diagnostic {
                code: "W108",
                severity: Severity::Warning,
                component: None,
                node: None,
                message: format!(
                    "page `{page}` averaged {traced_rts:.2} wide-area round trips in the \
                     traced run but the static walk counts {static_rts:.0}; the deployment \
                     is not behaving as analyzed"
                ),
                span: Span::page(page.clone(), "traced run vs static walk"),
            });
            added += 1;
        }
    }
    if added > 0 {
        report.sort_diagnostics();
    }
    added
}

/// W113: a latency objective the wide area makes unsatisfiable.
///
/// Each hop-weighted wide-area round trip the static walker counts for a
/// page costs at least two traversals of the topology's cheapest WAN leg,
/// so `wan_round_trips × 2 × min WAN one-way latency` lower-bounds the
/// page's response time regardless of seed, load or caching luck. A
/// latency objective whose threshold sits below that floor can never be
/// met — every run would grade it as missed — so the spec is flagged
/// statically before simulation time is spent, mirroring what
/// [`cross_check_traced_wan`] (W108) does for traced round-trip counts.
/// Objectives naming pages the static report does not cost, and
/// topologies with no WAN legs at all, produce no warnings. Returns the
/// number of warnings added.
pub fn check_slo_reachability(report: &mut Report, slo: &SloSpec, topology: &Topology) -> usize {
    let Some(min_leg) = topology.min_wan_latency() else {
        return 0;
    };
    let rtt_ms = min_leg.as_millis_f64() * 2.0;
    let mut added = 0;
    for obj in &slo.objectives {
        let Some(cost) = report.pages.iter().find(|p| p.page == obj.page) else {
            continue;
        };
        let floor = f64::from(cost.wan_round_trips) * rtt_ms;
        if obj.latency_ms < floor {
            report.diagnostics.push(Diagnostic {
                code: "W113",
                severity: Severity::Warning,
                component: None,
                node: None,
                message: format!(
                    "SLO wants {:.1}% of `{}` under {:.0} ms, but its {} static wide-area \
                     round trips cost at least {floor:.0} ms on this topology's cheapest \
                     WAN leg ({rtt_ms:.0} ms per round trip); the objective is \
                     unsatisfiable as deployed",
                    obj.target * 100.0,
                    obj.page,
                    obj.latency_ms,
                    cost.wan_round_trips,
                ),
                span: Span::page(obj.page.clone(), "SLO objective vs static WAN floor"),
            });
            added += 1;
        }
    }
    if added > 0 {
        report.sort_diagnostics();
    }
    added
}

/// W114: the adaptive controller is armed but can never observe the fault
/// episodes it is meant to react to.
///
/// The live-migration controller only sees the world through closed metric
/// windows, and it only folds them in once per cadence — so the shortest
/// interval between a condition appearing and the controller being able to
/// act on it is `max(cadence, metrics window)`, one full observation
/// period. If every scripted fault episode heals in less time than that,
/// the controller is dead weight: each episode is over before a single
/// round can see it, yet the run still pays the controller's rounds and
/// any migrations it commits against post-heal telemetry. The check also
/// flags the degenerate wiring where the controller is armed with the
/// windowed recorder off — then there is no telemetry at all and no round
/// can ever commit a move. Runs with no scripted episodes are left alone
/// (steady-state drift is a legitimate target). Returns the number of
/// warnings added.
pub fn check_adaptive_observability(
    report: &mut Report,
    adaptive: &AdaptiveSettings,
    metrics: &MetricsSettings,
    episodes: &[EpisodeView],
) -> usize {
    if !adaptive.active() {
        return 0;
    }
    if !metrics.active() {
        report.diagnostics.push(Diagnostic {
            code: "W114",
            severity: Severity::Warning,
            component: None,
            node: None,
            message: "adaptive controller is enabled but the windowed metrics recorder is \
                      off: rounds have no telemetry to fold in, so no migration can ever \
                      be decided"
                .to_string(),
            span: Span::descriptor("spec.adaptive vs spec.metrics"),
        });
        report.sort_diagnostics();
        return 1;
    }
    if episodes.is_empty() {
        return 0;
    }
    let period = adaptive.cadence.max(metrics.window);
    let longest = episodes
        .iter()
        .max_by_key(|e| e.active())
        .expect("episodes is non-empty");
    if longest.active() >= period {
        return 0;
    }
    report.diagnostics.push(Diagnostic {
        code: "W114",
        severity: Severity::Warning,
        component: None,
        node: None,
        message: format!(
            "adaptive controller folds telemetry in every {:.0} s (max of its cadence and \
             the metrics window), but the longest fault episode (`{}`) is active for only \
             {:.0} s — every episode heals before the controller can observe it, so the \
             controller reacts only to post-heal transients",
            period.as_secs_f64(),
            longest.name,
            longest.active().as_secs_f64(),
        ),
        span: Span::descriptor("spec.adaptive vs fault schedule"),
    });
    report.sort_diagnostics();
    1
}

/// E004: every component must be placed, and only on hosting nodes (the
/// three application servers and the database host — never the router or a
/// client LAN), and every page root must sit on an entry server.
fn check_placements(input: &AnalyzeInput<'_>, report: &mut Report) {
    let nodes = input.nodes;
    let valid_hosts = [nodes.main, nodes.edge1, nodes.edge2, nodes.db];
    for id in input.registry.ids() {
        let spec = input.registry.spec(id);
        match input.descriptor.placements.get(&id) {
            None => report.diagnostics.push(Diagnostic {
                code: "E004",
                severity: Severity::Error,
                component: Some(spec.name.clone()),
                node: None,
                message: format!("component `{}` is not placed on any node", spec.name),
                span: Span::descriptor("descriptor.placements"),
            }),
            Some(placement) => {
                for node in placement.nodes() {
                    if !valid_hosts.contains(&node) {
                        report.diagnostics.push(Diagnostic {
                            code: "E004",
                            severity: Severity::Error,
                            component: Some(spec.name.clone()),
                            node: Some(node_label(nodes, node)),
                            message: format!(
                                "component `{}` is placed on `{}`, which is not an \
                                 application hosting node",
                                spec.name,
                                node_label(nodes, node)
                            ),
                            span: Span::descriptor("descriptor.placements"),
                        });
                    }
                }
            }
        }
    }
    for page in input.pages {
        let Some(placement) = input.descriptor.placements.get(&page.root.component) else {
            continue; // already reported above
        };
        if !placement.hosts(nodes.edge1) && !placement.hosts(nodes.main) {
            let spec = input.registry.spec(page.root.component);
            report.diagnostics.push(Diagnostic {
                code: "E004",
                severity: Severity::Error,
                component: Some(spec.name.clone()),
                node: None,
                message: format!(
                    "root web component `{}` of page `{}` is deployed on neither an edge \
                     entry server nor the central server",
                    spec.name, page.page
                ),
                span: Span::page(page.page.clone(), String::new()),
            });
        }
    }
}

fn walk_all_pages(
    input: &AnalyzeInput<'_>,
    model: &PathModel<'_>,
    report: &mut Report,
) -> Vec<PageWalk> {
    let nodes = input.nodes;
    let is_wan = |a, b| nodes.is_wan(a, b);
    let mut walks = Vec::with_capacity(input.pages.len());
    for page in input.pages {
        let entry = entry_node(input.descriptor, nodes.edge1, nodes.main, page);
        let walk = walk_page(
            input.registry,
            input.descriptor,
            input.db,
            &is_wan,
            entry,
            page,
        );
        let crossings = walk
            .crossings
            .iter()
            .map(|c| {
                let hops = model.wan_hops(c.from, c.to);
                CrossingNote {
                    from: node_label(nodes, c.from),
                    to: node_label(nodes, c.to),
                    kind: kind_label(c.kind).to_string(),
                    trips: c.round_trips(),
                    wan: hops > 0,
                    wan_hops: hops,
                }
            })
            .collect();
        report.pages.push(PageWanCost {
            page: walk.page.clone(),
            entry: node_label(nodes, entry),
            wan_round_trips: hop_weighted_wan_trips(model, &walk),
            limit: input.invariant.page_limit(&walk.page),
            staleness: "fresh".to_string(),
            crossings,
        });
        walks.push(walk);
    }
    walks
}

/// Hop-weighted wide-area cost of a walk: every crossing is charged one
/// round trip per WAN hop its shortest path traverses, so a relayed
/// edge-to-edge call costs both wide-area legs (§4.2 on multi-hop
/// topologies). On the paper's star this equals the flat WAN trip count.
fn hop_weighted_wan_trips(model: &PathModel<'_>, walk: &PageWalk) -> u32 {
    walk.crossings
        .iter()
        .map(|c| c.round_trips() * model.wan_hops(c.from, c.to))
        .sum()
}

/// E003: the §4.2 invariant — each page within its wide-area budget.
fn check_wan_budget(
    input: &AnalyzeInput<'_>,
    model: &PathModel<'_>,
    walks: &[PageWalk],
    report: &mut Report,
) {
    let nodes = input.nodes;
    for walk in walks {
        let wan = hop_weighted_wan_trips(model, walk);
        let limit = input.invariant.page_limit(&walk.page);
        if wan > limit {
            report.diagnostics.push(Diagnostic {
                code: "E003",
                severity: Severity::Error,
                component: None,
                node: Some(node_label(nodes, walk.entry)),
                message: format!(
                    "page `{}` makes {wan} wide-area round trips from entry `{}` \
                     (budget: {limit})",
                    walk.page,
                    node_label(nodes, walk.entry)
                ),
                span: Span::page(walk.page.clone(), String::new()),
            });
        }
    }
}

/// E001: the authoritative (read-write) instance of every written entity
/// must sit next to the database — a WAN-separated primary means every
/// write from it crosses the wide area, so the node holds what is
/// effectively a read-only replica.
fn check_write_locality(input: &AnalyzeInput<'_>, walks: &[PageWalk], report: &mut Report) {
    let written: BTreeSet<_> = walks
        .iter()
        .flat_map(|w| w.written_tables.iter().copied())
        .collect();
    let db_node = input.descriptor.db_node;
    for table in written {
        for entity in input.registry.entities_of_table(table) {
            let primary = input.descriptor.placement(entity).primary;
            if input.nodes.is_wan(primary, db_node) {
                let spec = input.registry.spec(entity);
                report.diagnostics.push(Diagnostic {
                    code: "E001",
                    severity: Severity::Error,
                    component: Some(spec.name.clone()),
                    node: Some(node_label(input.nodes, primary)),
                    message: format!(
                        "writes to table `{}` go through entity `{}` whose primary `{}` is \
                         across the WAN from the database `{}`",
                        input.db.table(table).name(),
                        spec.name,
                        node_label(input.nodes, primary),
                        node_label(input.nodes, db_node)
                    ),
                    span: Span::descriptor("descriptor.placements"),
                });
            }
        }
    }
}

/// E002: push-mode propagation needs its machinery — replicas to push to,
/// a placed JMS broker, and message-driven receivers at every push target.
fn check_propagation_machinery(input: &AnalyzeInput<'_>, report: &mut Report) {
    let d = input.descriptor;
    let registry = input.registry;
    let entity_replica_nodes: BTreeSet<NodeId> = registry
        .ids()
        .filter(|&id| registry.spec(id).kind == ComponentKind::Entity)
        .flat_map(|id| d.placement(id).replicas.iter().copied().collect::<Vec<_>>())
        .collect();

    if matches!(
        d.entity_propagation,
        UpdatePropagation::SyncPush | UpdatePropagation::AsyncPush
    ) && entity_replica_nodes.is_empty()
    {
        report.diagnostics.push(Diagnostic {
            code: "E002",
            severity: Severity::Error,
            component: None,
            node: None,
            message: format!(
                "entity propagation `{:?}` is declared but no entity has read-only replicas",
                d.entity_propagation
            ),
            span: Span::descriptor("descriptor.entity_propagation"),
        });
    }

    let mut async_targets: BTreeSet<NodeId> = BTreeSet::new();
    if d.entity_propagation == UpdatePropagation::AsyncPush {
        async_targets.extend(entity_replica_nodes.iter().copied());
    }
    if d.query_cache.propagation == UpdatePropagation::AsyncPush {
        async_targets.extend(d.query_cache.nodes.iter().copied());
    }
    if async_targets.is_empty() {
        return;
    }

    let hosted_anywhere: BTreeSet<NodeId> = d
        .placements
        .values()
        .flat_map(|p| p.nodes().collect::<Vec<_>>())
        .collect();
    if !hosted_anywhere.contains(&d.jms_broker) {
        report.diagnostics.push(Diagnostic {
            code: "E002",
            severity: Severity::Error,
            component: None,
            node: Some(node_label(input.nodes, d.jms_broker)),
            message: format!(
                "asynchronous propagation is declared but the JMS broker node `{}` hosts no \
                 application components",
                node_label(input.nodes, d.jms_broker)
            ),
            span: Span::descriptor("descriptor.jms_broker"),
        });
    }
    for &node in &async_targets {
        let has_mdb = registry.ids().any(|id| {
            registry.spec(id).kind == ComponentKind::MessageDriven && d.placement(id).hosts(node)
        });
        if !has_mdb {
            report.diagnostics.push(Diagnostic {
                code: "E002",
                severity: Severity::Error,
                component: None,
                node: Some(node_label(input.nodes, node)),
                message: format!(
                    "node `{}` receives asynchronous pushes but hosts no message-driven \
                     component to apply them",
                    node_label(input.nodes, node)
                ),
                span: Span::descriptor("descriptor.placements"),
            });
        }
    }
}

/// W103: remote calls without stub caching pay a JNDI exchange each time.
fn check_stub_caching(input: &AnalyzeInput<'_>, walks: &[PageWalk], report: &mut Report) {
    if input.descriptor.stub_caching {
        return;
    }
    let any_remote = walks
        .iter()
        .any(|w| w.crossings.iter().any(|c| c.kind == CrossingKind::Rmi));
    if any_remote {
        report.diagnostics.push(Diagnostic {
            code: "W103",
            severity: Severity::Warning,
            component: None,
            node: None,
            message: "stub caching is disabled: every remote invocation pays an extra JNDI \
                      round trip (§4.2 recommends EJBHomeFactory caching)"
                .to_string(),
            span: Span::descriptor("descriptor.stub_caching"),
        });
    }
}

/// W104: declared-but-dead and issued-but-undeclared cacheable tags.
fn check_query_tags(input: &AnalyzeInput<'_>, walks: &[PageWalk], report: &mut Report) {
    let policy = &input.descriptor.query_cache;
    if policy.nodes.is_empty() {
        return;
    }
    let issued: BTreeSet<&str> = walks
        .iter()
        .flat_map(|w| w.tags_issued.iter().map(String::as_str))
        .collect();
    for tag in &policy.cacheable_tags {
        if !issued.contains(tag.as_str()) {
            report.diagnostics.push(Diagnostic {
                code: "W104",
                severity: Severity::Warning,
                component: None,
                node: None,
                message: format!(
                    "cacheable query tag `{tag}` is declared but never issued by any page"
                ),
                span: Span::descriptor("descriptor.query_cache.cacheable_tags"),
            });
        }
    }
    for tag in issued {
        if !policy.cacheable_tags.contains(tag) {
            report.diagnostics.push(Diagnostic {
                code: "W104",
                severity: Severity::Warning,
                component: None,
                node: None,
                message: format!(
                    "query tag `{tag}` is issued by the application but not declared \
                     cacheable — its queries always travel to the central site"
                ),
                span: Span::descriptor("descriptor.query_cache.cacheable_tags"),
            });
        }
    }
}

/// W106: a replicated stateful session bean should keep an instance on the
/// central node when entity propagation is active, so conversational state
/// stays reachable from the write path.
fn check_stateful_replicas(input: &AnalyzeInput<'_>, report: &mut Report) {
    let d = input.descriptor;
    if d.entity_propagation == UpdatePropagation::None {
        return;
    }
    for id in input.registry.ids() {
        let spec = input.registry.spec(id);
        if spec.kind != ComponentKind::StatefulSession {
            continue;
        }
        let placement = d.placement(id);
        if !placement.replicas.is_empty() && !placement.hosts(d.central_node) {
            report.diagnostics.push(Diagnostic {
                code: "W106",
                severity: Severity::Warning,
                component: Some(spec.name.clone()),
                node: Some(node_label(input.nodes, d.central_node)),
                message: format!(
                    "stateful session bean `{}` is replicated but has no instance on the \
                     central node while entity propagation is active",
                    spec.name
                ),
                span: Span::descriptor("descriptor.placements"),
            });
        }
    }
}

/// W107: the descriptor deploys edge-caching machinery (entity replicas or
/// query-cache nodes), yet no page can ever be served from a memoized bound
/// program. The binder certifies a bind replayable only when the page writes
/// no table and makes no node crossing other than direct JDBC — RMI samples
/// protocol overhead from the RNG stream, JNDI and façade fetches take cold
/// transitions — so if every page trips one of those, the bound-program
/// cache never engages and each request pays the full bind walk.
fn check_plan_cacheability(input: &AnalyzeInput<'_>, walks: &[PageWalk], report: &mut Report) {
    let d = input.descriptor;
    let registry = input.registry;
    let has_entity_replicas = registry.ids().any(|id| {
        registry.spec(id).kind == ComponentKind::Entity && !d.placement(id).replicas.is_empty()
    });
    if !has_entity_replicas && d.query_cache.nodes.is_empty() {
        return; // no caching machinery to leave idle
    }
    let memoizable = |walk: &PageWalk| {
        walk.written_tables.is_empty()
            && walk
                .crossings
                .iter()
                .all(|c| matches!(c.kind, CrossingKind::Jdbc { .. }))
    };
    if walks.iter().any(memoizable) {
        return;
    }
    report.diagnostics.push(Diagnostic {
        code: "W107",
        severity: Severity::Warning,
        component: None,
        node: None,
        message: format!(
            "the deployment provisions {} but every page either writes a table or \
             crosses nodes, so no bind is ever replayable and the bound-program \
             cache cannot engage",
            if has_entity_replicas && !d.query_cache.nodes.is_empty() {
                "entity replicas and edge query caches"
            } else if has_entity_replicas {
                "entity replicas"
            } else {
                "edge query caches"
            }
        ),
        span: Span::descriptor("descriptor.placements"),
    });
}

/// W109: the central site is a wide-area single point of failure for reads.
///
/// A read-only page is *partition-servable* when an edge entry can complete
/// it without any wide-area crossing — precisely the pages that keep
/// answering when the WAN leg to the central site is cut (the fault suite's
/// main-link partition). Writes legitimately need the center, so only
/// read-only pages (no written tables) are considered. If a deployment
/// leaves edge clients with *no* partition-servable read page, every
/// interaction dies with the WAN and the warning fires — the centralized
/// baseline by construction, while §4.3's entity replicas already keep
/// catalog reads local.
fn check_wan_single_point_of_failure(
    input: &AnalyzeInput<'_>,
    walks: &[PageWalk],
    report: &mut Report,
) {
    let nodes = input.nodes;
    let read_pages: Vec<&PageWalk> = walks
        .iter()
        .filter(|w| w.written_tables.is_empty())
        .collect();
    if read_pages.is_empty() {
        return;
    }
    let partition_servable = |w: &PageWalk| {
        (w.entry == nodes.edge1 || w.entry == nodes.edge2)
            && !w.crossings.iter().any(|c| nodes.is_wan(c.from, c.to))
    };
    if read_pages.iter().any(|w| partition_servable(w)) {
        return;
    }
    report.diagnostics.push(Diagnostic {
        code: "W109",
        severity: Severity::Warning,
        component: None,
        node: Some(node_label(nodes, nodes.edge1)),
        message: format!(
            "all {} read-only pages need the wide area to complete — a WAN partition \
             between the edges and the central site leaves edge clients with no servable \
             page; deploy entity replicas or query caches (§4.3–§4.4) to keep reads local",
            read_pages.len()
        ),
        span: Span::descriptor("descriptor.placements"),
    });
}

fn via_label(via: ReadVia) -> &'static str {
    match via {
        ReadVia::Replica => "entity replica",
        ReadVia::QueryCache => "query cache",
    }
}

/// W112: a crossing whose shortest path traverses two or more wide-area
/// hops. The §4.2 budget and the descriptors were written assuming one hop
/// per crossing; the budget check already charges the hop-weighted cost,
/// and this lint points at the crossing whose placement multiplied it.
fn check_multi_hop_crossings(
    input: &AnalyzeInput<'_>,
    model: &PathModel<'_>,
    walks: &[PageWalk],
    report: &mut Report,
) {
    for walk in walks {
        let mut seen = BTreeSet::new();
        for c in &walk.crossings {
            let hops = model.wan_hops(c.from, c.to);
            if hops < 2 || !seen.insert((c.from, c.to)) {
                continue;
            }
            let from = node_label(input.nodes, c.from);
            let to = node_label(input.nodes, c.to);
            report.diagnostics.push(Diagnostic {
                code: "W112",
                severity: Severity::Warning,
                component: None,
                node: Some(to.clone()),
                message: format!(
                    "page `{}` makes a {} crossing `{from}` → `{to}` whose route traverses \
                     {hops} wide-area hops — each round trip is charged {hops}× against the \
                     §4.2 budget",
                    walk.page,
                    kind_label(c.kind)
                ),
                span: Span::page(walk.page.clone(), format!("{from} -> {to}")),
            });
        }
    }
}

/// W110: cached read sites with unbounded staleness.
fn emit_staleness_lints(
    input: &AnalyzeInput<'_>,
    staleness: &StalenessAnalysis,
    report: &mut Report,
) {
    for (page, site) in &staleness.unbounded_sites {
        let spec = input.registry.spec(site.component);
        let node = node_label(input.nodes, site.node);
        report.diagnostics.push(Diagnostic {
            code: "W110",
            severity: Severity::Warning,
            component: Some(spec.name.clone()),
            node: Some(node.clone()),
            message: format!(
                "page `{page}` reads table `{}` from a {} on `{node}` that no propagation \
                 ever refreshes — served staleness is unbounded; declare a propagation mode \
                 or remove the replica",
                input.db.table(site.table).name(),
                via_label(site.via)
            ),
            span: Span::page(page.clone(), site.path.clone()),
        });
    }
}

/// W111 from broken failover edges, and E005 from inter-page
/// read-your-writes hazards whose propagation path some episode severs
/// while the policy keeps serving.
fn emit_fault_lints(
    input: &AnalyzeInput<'_>,
    ctx: &FaultContext,
    staleness: &StalenessAnalysis,
    analysis: &AvailabilityAnalysis,
    report: &mut Report,
) {
    for broken in &analysis.broken_failovers {
        report.diagnostics.push(Diagnostic {
            code: "W111",
            severity: Severity::Warning,
            component: None,
            node: Some(node_label(input.nodes, broken.target)),
            message: format!(
                "the fault policy fails requests for dead entry `{}` over to `{}`, but \
                 during episode `{}` the target is itself dead or unreachable from the edge \
                 clients — the failover edge can never be taken when it is needed",
                node_label(input.nodes, broken.dead_entry),
                node_label(input.nodes, broken.target),
                broken.episode
            ),
            span: Span::descriptor("fault policy failover"),
        });
    }

    // E005 needs a fault arm that keeps answering through the episode —
    // strict fail-everything policies surface the inconsistency as an error
    // to the user instead of serving it.
    if !(ctx.policy.stale_serve || ctx.policy.failover) {
        return;
    }
    for hazard in &staleness.hazards {
        let propagation = match hazard.site.via {
            ReadVia::Replica => input.descriptor.entity_propagation,
            ReadVia::QueryCache => input.descriptor.query_cache.propagation,
        };
        let source = if propagation == UpdatePropagation::AsyncPush {
            input.descriptor.jms_broker
        } else {
            input.descriptor.central_node
        };
        let Some(view) = ctx
            .episodes
            .iter()
            .find(|view| reachability::severed(input.topology, view, source, hazard.site.node))
        else {
            continue;
        };
        let spec = input.registry.spec(hazard.site.component);
        report.diagnostics.push(Diagnostic {
            code: "E005",
            severity: Severity::Error,
            component: Some(spec.name.clone()),
            node: Some(node_label(input.nodes, hazard.site.node)),
            message: format!(
                "session pattern `{}` can write table `{}` on an earlier page and read it \
                 back on page `{}` from a {} on `{}` ({}); episode `{}` severs the \
                 propagation path while the policy keeps serving, so the session observes \
                 its own write rolled back",
                hazard.pattern,
                input.db.table(hazard.site.table).name(),
                hazard.page,
                via_label(hazard.site.via),
                node_label(input.nodes, hazard.site.node),
                hazard.staleness.label(),
                view.name
            ),
            span: Span::page(hazard.page.clone(), hazard.site.path.clone()),
        });
    }
}

/// W101, W102, W105 from per-page walk events.
fn emit_walk_lints(input: &AnalyzeInput<'_>, walks: &[PageWalk], report: &mut Report) {
    for walk in walks {
        for event in &walk.events {
            let spec = input.registry.spec(event.component);
            let node = node_label(input.nodes, event.node);
            let span = Span::page(walk.page.clone(), event.path.clone());
            let diagnostic = match &event.kind {
                WalkEventKind::FinderOverWan { table } => Diagnostic {
                    code: "W101",
                    severity: Severity::Warning,
                    component: Some(spec.name.clone()),
                    node: Some(node.clone()),
                    message: format!(
                        "`{}` runs an n+1-style BMP finder on `{}` over the WAN against table \
                         `{}` — each returned row costs a wide-area round trip",
                        spec.name,
                        node,
                        input.db.table(*table).name()
                    ),
                    span,
                },
                WalkEventKind::SessionWriteOverWan { table } => Diagnostic {
                    code: "W102",
                    severity: Severity::Warning,
                    component: Some(spec.name.clone()),
                    node: Some(node.clone()),
                    message: format!(
                        "session façade `{}` on `{}` writes table `{}` across the WAN — \
                         writers belong next to the rows they mutate",
                        spec.name,
                        node,
                        input.db.table(*table).name()
                    ),
                    span,
                },
                WalkEventKind::StaleReadAfterWrite { table, via } => Diagnostic {
                    code: "W105",
                    severity: Severity::Warning,
                    component: Some(spec.name.clone()),
                    node: Some(node.clone()),
                    message: format!(
                        "page `{}` reads table `{}` from a local {} on `{}` after writing it \
                         under asynchronous propagation — the response can observe the \
                         pre-write value (read-your-writes hazard, §4.5)",
                        walk.page,
                        input.db.table(*table).name(),
                        match via {
                            ReadVia::Replica => "entity replica",
                            ReadVia::QueryCache => "query cache",
                        },
                        node
                    ),
                    span,
                },
            };
            report.diagnostics.push(diagnostic);
        }
    }
}
