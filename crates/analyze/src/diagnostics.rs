//! Diagnostic types and rendering.
//!
//! Diagnostics carry stable codes (`E001`…, `W101`…) so CI and editors can
//! filter on them; rendering mimics rustc's `severity[code]: message` shape
//! with `-->` location lines. JSON output is emitted by hand (the vendored
//! `serde` stub has no derive support), with proper string escaping.

use std::fmt::Write as _;

/// Diagnostic severity. Errors fail the build (`mutsvc-analyze` exits
/// nonzero); warnings are advisory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Violates a hard §4 invariant or makes the deployment unrunnable.
    Error,
    /// A wide-area performance or staleness hazard.
    Warning,
}

impl Severity {
    /// The rustc-style label.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// Where a diagnostic was found: the page (if page-scoped) and the
/// invocation path within its call tree.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Span {
    /// Page name, when the diagnostic is tied to one page's tree.
    pub page: Option<String>,
    /// Invocation path (`web.doGet > Catalog.getItem`), or a descriptor
    /// location for deployment-level findings.
    pub path: String,
}

impl Span {
    /// A descriptor-level span (no page).
    pub fn descriptor(path: impl Into<String>) -> Self {
        Span {
            page: None,
            path: path.into(),
        }
    }

    /// A page-scoped span.
    pub fn page(page: impl Into<String>, path: impl Into<String>) -> Self {
        Span {
            page: Some(page.into()),
            path: path.into(),
        }
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code (`E001`, `W105`, …).
    pub code: &'static str,
    /// Severity.
    pub severity: Severity,
    /// The component involved, if one.
    pub component: Option<String>,
    /// The node involved, if one.
    pub node: Option<String>,
    /// Human-readable explanation.
    pub message: String,
    /// Location.
    pub span: Span,
}

/// One recorded node crossing, rendered with node names.
#[derive(Debug, Clone)]
pub struct CrossingNote {
    /// Originating node name.
    pub from: String,
    /// Destination node name.
    pub to: String,
    /// Interaction kind label (`rmi`, `jndi`, `fetch`, `jdbc`).
    pub kind: String,
    /// Round trips this crossing costs.
    pub trips: u32,
    /// Whether the crossing traverses the wide area at all.
    pub wan: bool,
    /// Wide-area hops on the crossing's shortest path (0 = LAN-only; 2 or
    /// more means the crossing relays through multiple WAN legs, W112).
    pub wan_hops: u32,
}

/// The wide-area cost summary of one page.
#[derive(Debug, Clone)]
pub struct PageWanCost {
    /// Page name.
    pub page: String,
    /// Entry server name for the analyzed (remote) client.
    pub entry: String,
    /// Hop-weighted wide-area round trips in the call tree (HTTP envelope
    /// excluded); on a one-hop star this equals the plain WAN trip count.
    pub wan_round_trips: u32,
    /// The §4.2 budget that applies to this page.
    pub limit: u32,
    /// The page's staleness bound: the lattice join over its cached read
    /// sites (`fresh` when nothing is served from caches).
    pub staleness: String,
    /// Every node crossing on the synchronous path.
    pub crossings: Vec<CrossingNote>,
}

/// One row of the predicted fault-availability table.
#[derive(Debug, Clone)]
pub struct AvailabilityRow {
    /// Episode name (`main-link-partition`, …).
    pub episode: String,
    /// Predicted availability of the remote edge-1 group.
    pub availability: f64,
}

/// The result of analyzing one application × configuration.
#[derive(Debug, Clone)]
pub struct Report {
    /// Application name.
    pub app: String,
    /// Configuration name.
    pub config: String,
    /// Per-page wide-area cost summaries.
    pub pages: Vec<PageWanCost>,
    /// Findings, errors first.
    pub diagnostics: Vec<Diagnostic>,
    /// Predicted per-episode availability (empty without a fault context).
    pub availability: Vec<AvailabilityRow>,
    /// Worklist sweeps until the staleness dataflow reached fixpoint.
    pub staleness_iterations: u32,
    /// Whether the staleness dataflow converged within its iteration cap.
    pub staleness_converged: bool,
}

impl Report {
    /// Whether any error-severity diagnostic was found.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// The codes of all diagnostics, in report order.
    pub fn codes(&self) -> Vec<&'static str> {
        self.diagnostics.iter().map(|d| d.code).collect()
    }

    /// Sorts diagnostics into a byte-stable order — errors first, then by
    /// (code, node, page, path, component, message) — and drops exact
    /// duplicates, so repeated runs render identical output.
    pub fn sort_diagnostics(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            (
                a.severity,
                a.code,
                &a.node,
                &a.span.page,
                &a.span.path,
                &a.component,
                &a.message,
            )
                .cmp(&(
                    b.severity,
                    b.code,
                    &b.node,
                    &b.span.page,
                    &b.span.path,
                    &b.component,
                    &b.message,
                ))
        });
        self.diagnostics.dedup();
    }

    /// Renders the report in rustc-style plain text.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "analyzing {} / {}", self.app, self.config);
        for d in &self.diagnostics {
            let _ = writeln!(out, "{}[{}]: {}", d.severity.label(), d.code, d.message);
            let loc = match &d.span.page {
                Some(page) if d.span.path.is_empty() => page.clone(),
                Some(page) => format!("{page}: {}", d.span.path),
                None => d.span.path.clone(),
            };
            let _ = writeln!(out, "  --> {}/{}: {loc}", self.app, self.config);
            if let Some(c) = &d.component {
                let _ = writeln!(out, "   = component: {c}");
            }
            if let Some(n) = &d.node {
                let _ = writeln!(out, "   = node: {n}");
            }
        }
        let errors = self
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count();
        let warnings = self.diagnostics.len() - errors;
        let _ = writeln!(
            out,
            "{} page(s) analyzed, {errors} error(s), {warnings} warning(s)",
            self.pages.len()
        );
        for p in &self.pages {
            let _ = writeln!(
                out,
                "  {:<16} entry {:<6} WAN round trips {}/{}  staleness {}",
                p.page, p.entry, p.wan_round_trips, p.limit, p.staleness
            );
        }
        if !self.pages.is_empty() {
            let _ = writeln!(
                out,
                "staleness fixpoint: {} sweep(s){}",
                self.staleness_iterations,
                if self.staleness_converged {
                    ""
                } else {
                    " (DID NOT CONVERGE)"
                }
            );
        }
        for row in &self.availability {
            let _ = writeln!(
                out,
                "  predicted availability {:<20} {:.4}",
                row.episode, row.availability
            );
        }
        out
    }

    /// Renders the report as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push('{');
        let _ = write!(out, "\"app\":{},", json_str(&self.app));
        let _ = write!(out, "\"config\":{},", json_str(&self.config));
        out.push_str("\"pages\":[");
        for (i, p) in self.pages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"page\":{},\"entry\":{},\"wan_round_trips\":{},\"limit\":{},\"staleness\":{},\"crossings\":[",
                json_str(&p.page),
                json_str(&p.entry),
                p.wan_round_trips,
                p.limit,
                json_str(&p.staleness)
            );
            for (j, c) in p.crossings.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"from\":{},\"to\":{},\"kind\":{},\"trips\":{},\"wan\":{},\"wan_hops\":{}}}",
                    json_str(&c.from),
                    json_str(&c.to),
                    json_str(&c.kind),
                    c.trips,
                    c.wan,
                    c.wan_hops
                );
            }
            out.push_str("]}");
        }
        out.push_str("],\"availability\":[");
        for (i, row) in self.availability.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"episode\":{},\"availability\":{:.4}}}",
                json_str(&row.episode),
                row.availability
            );
        }
        let _ = write!(
            out,
            "],\"staleness_iterations\":{},\"staleness_converged\":{},",
            self.staleness_iterations, self.staleness_converged
        );
        out.push_str("\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"code\":{},\"severity\":{},\"message\":{},\"component\":{},\"node\":{},\"page\":{},\"path\":{}}}",
                json_str(d.code),
                json_str(d.severity.label()),
                json_str(&d.message),
                json_opt(d.component.as_deref()),
                json_opt(d.node.as_deref()),
                json_opt(d.span.page.as_deref()),
                json_str(&d.span.path)
            );
        }
        out.push_str("]}");
        out
    }

    /// Renders this report as a single-run SARIF 2.1.0 document.
    pub fn to_sarif(&self) -> String {
        sarif_document(std::slice::from_ref(self))
    }

    /// This report's findings as a SARIF `run` object.
    fn sarif_run(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"tool\":{\"driver\":{\"name\":\"mutsvc-analyze\",");
        let _ = write!(
            out,
            "\"informationUri\":{},\"rules\":[",
            json_str("https://github.com/mutsvc/mutsvc")
        );
        for (i, doc) in crate::explain::CODES.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"id\":{},\"shortDescription\":{{\"text\":{}}},\"fullDescription\":{{\"text\":{}}},\"helpUri\":{}}}",
                json_str(doc.code),
                json_str(doc.summary),
                json_str(doc.explain),
                json_str(&format!("paper:{}", doc.section))
            );
        }
        out.push_str("]}},\"results\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let location = match &d.span.page {
                Some(page) if d.span.path.is_empty() => {
                    format!("{}/{}/{page}", self.app, self.config)
                }
                Some(page) => format!("{}/{}/{page}: {}", self.app, self.config, d.span.path),
                None => format!("{}/{}: {}", self.app, self.config, d.span.path),
            };
            let _ = write!(
                out,
                "{{\"ruleId\":{},\"level\":{},\"message\":{{\"text\":{}}},\"locations\":[{{\"logicalLocations\":[{{\"fullyQualifiedName\":{}}}]}}]}}",
                json_str(d.code),
                json_str(match d.severity {
                    Severity::Error => "error",
                    Severity::Warning => "warning",
                }),
                json_str(&d.message),
                json_str(&location)
            );
        }
        out.push_str("]}");
        out
    }
}

/// Renders a set of reports as one SARIF 2.1.0 document, one run per
/// report — the shape GitHub code-scanning ingests for PR annotations.
pub fn sarif_document(reports: &[Report]) -> String {
    let mut out = String::new();
    out.push_str("{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",");
    out.push_str("\"version\":\"2.1.0\",\"runs\":[");
    for (i, report) in reports.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&report.sarif_run());
    }
    out.push_str("]}");
    out
}

fn json_opt(s: Option<&str>) -> String {
    match s {
        Some(s) => json_str(s),
        None => "null".to_string(),
    }
}

/// Escapes a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            app: "petstore".into(),
            config: "remote-facade".into(),
            pages: vec![PageWanCost {
                page: "Item".into(),
                entry: "edge1".into(),
                wan_round_trips: 1,
                limit: 1,
                staleness: "fresh".into(),
                crossings: vec![CrossingNote {
                    from: "edge1".into(),
                    to: "main".into(),
                    kind: "rmi".into(),
                    trips: 1,
                    wan: true,
                    wan_hops: 1,
                }],
            }],
            diagnostics: vec![Diagnostic {
                code: "W103",
                severity: Severity::Warning,
                component: None,
                node: None,
                message: "stub \"caching\" disabled".into(),
                span: Span::descriptor("descriptor.stub_caching"),
            }],
            availability: vec![AvailabilityRow {
                episode: "main-link-partition".into(),
                availability: 0.9876,
            }],
            staleness_iterations: 2,
            staleness_converged: true,
        }
    }

    #[test]
    fn text_rendering_is_rustc_shaped() {
        let text = sample().render_text();
        assert!(text.contains("warning[W103]:"), "{text}");
        assert!(text.contains("--> petstore/remote-facade"), "{text}");
        assert!(
            text.contains("1 error(s)") || text.contains("0 error(s)"),
            "{text}"
        );
    }

    #[test]
    fn json_escapes_and_nests() {
        let json = sample().to_json();
        assert!(json.contains("\"code\":\"W103\""), "{json}");
        assert!(json.contains("stub \\\"caching\\\" disabled"), "{json}");
        assert!(json.contains("\"wan\":true"), "{json}");
        assert!(json.contains("\"component\":null"), "{json}");
    }

    #[test]
    fn sort_puts_errors_first() {
        let mut r = sample();
        r.diagnostics.push(Diagnostic {
            code: "E001",
            severity: Severity::Error,
            component: None,
            node: None,
            message: "x".into(),
            span: Span::default(),
        });
        r.sort_diagnostics();
        assert_eq!(r.diagnostics[0].code, "E001");
        assert!(r.has_errors());
        assert_eq!(r.codes(), vec!["E001", "W103"]);
    }

    #[test]
    fn sort_is_total_and_dedupes() {
        let mk = |code: &'static str, node: Option<&str>, page: Option<&str>| Diagnostic {
            code,
            severity: Severity::Warning,
            component: None,
            node: node.map(String::from),
            message: "m".into(),
            span: Span {
                page: page.map(String::from),
                path: String::new(),
            },
        };
        let mut r = sample();
        r.diagnostics = vec![
            mk("W105", Some("edge2"), Some("Item")),
            mk("W101", Some("edge1"), Some("Main")),
            mk("W101", Some("edge1"), Some("Main")), // exact duplicate
            mk("W101", Some("edge1"), Some("Item")),
        ];
        r.sort_diagnostics();
        let keys: Vec<_> = r
            .diagnostics
            .iter()
            .map(|d| (d.code, d.span.page.clone().unwrap()))
            .collect();
        assert_eq!(
            keys,
            vec![
                ("W101", "Item".to_string()),
                ("W101", "Main".to_string()),
                ("W105", "Item".to_string()),
            ],
            "sorted by (code, node, page) with duplicates dropped"
        );
        // Idempotent: a second sort changes nothing (byte stability).
        let before = r.render_text();
        r.sort_diagnostics();
        assert_eq!(before, r.render_text());
    }

    #[test]
    fn sarif_has_2_1_0_shape() {
        let sarif = sample().to_sarif();
        // Document envelope.
        assert!(sarif.starts_with("{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\""));
        assert!(sarif.contains("\"version\":\"2.1.0\""));
        assert!(sarif.contains("\"runs\":[{"));
        // Tool driver with the full rule registry.
        assert!(sarif.contains("\"tool\":{\"driver\":{\"name\":\"mutsvc-analyze\""));
        for doc in crate::explain::CODES {
            assert!(
                sarif.contains(&format!("\"id\":\"{}\"", doc.code)),
                "rule {} missing",
                doc.code
            );
        }
        // Results reference rules by id with level and logical location.
        assert!(sarif.contains("\"ruleId\":\"W103\""));
        assert!(sarif.contains("\"level\":\"warning\""));
        assert!(sarif.contains("\"logicalLocations\":[{\"fullyQualifiedName\":"));
        // Multi-report documents hold one run per report.
        let two = sarif_document(&[sample(), sample()]);
        assert_eq!(two.matches("\"results\":[").count(), 2);
    }

    #[test]
    fn text_renders_staleness_and_availability() {
        let text = sample().render_text();
        assert!(text.contains("staleness fresh"), "{text}");
        assert!(text.contains("staleness fixpoint: 2 sweep(s)"), "{text}");
        assert!(
            text.contains("predicted availability main-link-partition"),
            "{text}"
        );
        assert!(text.contains("0.9876"), "{text}");
        let json = sample().to_json();
        assert!(json.contains("\"staleness\":\"fresh\""), "{json}");
        assert!(json.contains("\"wan_hops\":1"), "{json}");
        assert!(
            json.contains(
                "\"availability\":[{\"episode\":\"main-link-partition\",\"availability\":0.9876}]"
            ),
            "{json}"
        );
        assert!(json.contains("\"staleness_converged\":true"), "{json}");
    }
}
