//! Diagnostic types and rendering.
//!
//! Diagnostics carry stable codes (`E001`…, `W101`…) so CI and editors can
//! filter on them; rendering mimics rustc's `severity[code]: message` shape
//! with `-->` location lines. JSON output is emitted by hand (the vendored
//! `serde` stub has no derive support), with proper string escaping.

use std::fmt::Write as _;

/// Diagnostic severity. Errors fail the build (`mutsvc-analyze` exits
/// nonzero); warnings are advisory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Violates a hard §4 invariant or makes the deployment unrunnable.
    Error,
    /// A wide-area performance or staleness hazard.
    Warning,
}

impl Severity {
    /// The rustc-style label.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// Where a diagnostic was found: the page (if page-scoped) and the
/// invocation path within its call tree.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Span {
    /// Page name, when the diagnostic is tied to one page's tree.
    pub page: Option<String>,
    /// Invocation path (`web.doGet > Catalog.getItem`), or a descriptor
    /// location for deployment-level findings.
    pub path: String,
}

impl Span {
    /// A descriptor-level span (no page).
    pub fn descriptor(path: impl Into<String>) -> Self {
        Span {
            page: None,
            path: path.into(),
        }
    }

    /// A page-scoped span.
    pub fn page(page: impl Into<String>, path: impl Into<String>) -> Self {
        Span {
            page: Some(page.into()),
            path: path.into(),
        }
    }
}

/// One finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Stable code (`E001`, `W105`, …).
    pub code: &'static str,
    /// Severity.
    pub severity: Severity,
    /// The component involved, if one.
    pub component: Option<String>,
    /// The node involved, if one.
    pub node: Option<String>,
    /// Human-readable explanation.
    pub message: String,
    /// Location.
    pub span: Span,
}

/// One recorded node crossing, rendered with node names.
#[derive(Debug, Clone)]
pub struct CrossingNote {
    /// Originating node name.
    pub from: String,
    /// Destination node name.
    pub to: String,
    /// Interaction kind label (`rmi`, `jndi`, `fetch`, `jdbc`).
    pub kind: String,
    /// Round trips this crossing costs.
    pub trips: u32,
    /// Whether the crossing traverses a WAN leg.
    pub wan: bool,
}

/// The wide-area cost summary of one page.
#[derive(Debug, Clone)]
pub struct PageWanCost {
    /// Page name.
    pub page: String,
    /// Entry server name for the analyzed (remote) client.
    pub entry: String,
    /// Wide-area round trips in the call tree (HTTP envelope excluded).
    pub wan_round_trips: u32,
    /// The §4.2 budget that applies to this page.
    pub limit: u32,
    /// Every node crossing on the synchronous path.
    pub crossings: Vec<CrossingNote>,
}

/// The result of analyzing one application × configuration.
#[derive(Debug, Clone)]
pub struct Report {
    /// Application name.
    pub app: String,
    /// Configuration name.
    pub config: String,
    /// Per-page wide-area cost summaries.
    pub pages: Vec<PageWanCost>,
    /// Findings, errors first.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Whether any error-severity diagnostic was found.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// The codes of all diagnostics, in report order.
    pub fn codes(&self) -> Vec<&'static str> {
        self.diagnostics.iter().map(|d| d.code).collect()
    }

    /// Sorts diagnostics errors-first (stable within a severity).
    pub fn sort_diagnostics(&mut self) {
        self.diagnostics.sort_by_key(|d| d.severity);
    }

    /// Renders the report in rustc-style plain text.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "analyzing {} / {}", self.app, self.config);
        for d in &self.diagnostics {
            let _ = writeln!(out, "{}[{}]: {}", d.severity.label(), d.code, d.message);
            let loc = match &d.span.page {
                Some(page) if d.span.path.is_empty() => page.clone(),
                Some(page) => format!("{page}: {}", d.span.path),
                None => d.span.path.clone(),
            };
            let _ = writeln!(out, "  --> {}/{}: {loc}", self.app, self.config);
            if let Some(c) = &d.component {
                let _ = writeln!(out, "   = component: {c}");
            }
            if let Some(n) = &d.node {
                let _ = writeln!(out, "   = node: {n}");
            }
        }
        let errors = self
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count();
        let warnings = self.diagnostics.len() - errors;
        let _ = writeln!(
            out,
            "{} page(s) analyzed, {errors} error(s), {warnings} warning(s)",
            self.pages.len()
        );
        for p in &self.pages {
            let _ = writeln!(
                out,
                "  {:<16} entry {:<6} WAN round trips {}/{}",
                p.page, p.entry, p.wan_round_trips, p.limit
            );
        }
        out
    }

    /// Renders the report as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push('{');
        let _ = write!(out, "\"app\":{},", json_str(&self.app));
        let _ = write!(out, "\"config\":{},", json_str(&self.config));
        out.push_str("\"pages\":[");
        for (i, p) in self.pages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"page\":{},\"entry\":{},\"wan_round_trips\":{},\"limit\":{},\"crossings\":[",
                json_str(&p.page),
                json_str(&p.entry),
                p.wan_round_trips,
                p.limit
            );
            for (j, c) in p.crossings.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"from\":{},\"to\":{},\"kind\":{},\"trips\":{},\"wan\":{}}}",
                    json_str(&c.from),
                    json_str(&c.to),
                    json_str(&c.kind),
                    c.trips,
                    c.wan
                );
            }
            out.push_str("]}");
        }
        out.push_str("],\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"code\":{},\"severity\":{},\"message\":{},\"component\":{},\"node\":{},\"page\":{},\"path\":{}}}",
                json_str(d.code),
                json_str(d.severity.label()),
                json_str(&d.message),
                json_opt(d.component.as_deref()),
                json_opt(d.node.as_deref()),
                json_opt(d.span.page.as_deref()),
                json_str(&d.span.path)
            );
        }
        out.push_str("]}");
        out
    }
}

fn json_opt(s: Option<&str>) -> String {
    match s {
        Some(s) => json_str(s),
        None => "null".to_string(),
    }
}

/// Escapes a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            app: "petstore".into(),
            config: "remote-facade".into(),
            pages: vec![PageWanCost {
                page: "Item".into(),
                entry: "edge1".into(),
                wan_round_trips: 1,
                limit: 1,
                crossings: vec![CrossingNote {
                    from: "edge1".into(),
                    to: "main".into(),
                    kind: "rmi".into(),
                    trips: 1,
                    wan: true,
                }],
            }],
            diagnostics: vec![Diagnostic {
                code: "W103",
                severity: Severity::Warning,
                component: None,
                node: None,
                message: "stub \"caching\" disabled".into(),
                span: Span::descriptor("descriptor.stub_caching"),
            }],
        }
    }

    #[test]
    fn text_rendering_is_rustc_shaped() {
        let text = sample().render_text();
        assert!(text.contains("warning[W103]:"), "{text}");
        assert!(text.contains("--> petstore/remote-facade"), "{text}");
        assert!(
            text.contains("1 error(s)") || text.contains("0 error(s)"),
            "{text}"
        );
    }

    #[test]
    fn json_escapes_and_nests() {
        let json = sample().to_json();
        assert!(json.contains("\"code\":\"W103\""), "{json}");
        assert!(json.contains("stub \\\"caching\\\" disabled"), "{json}");
        assert!(json.contains("\"wan\":true"), "{json}");
        assert!(json.contains("\"component\":null"), "{json}");
    }

    #[test]
    fn sort_puts_errors_first() {
        let mut r = sample();
        r.diagnostics.push(Diagnostic {
            code: "E001",
            severity: Severity::Error,
            component: None,
            node: None,
            message: "x".into(),
            span: Span::default(),
        });
        r.sort_diagnostics();
        assert_eq!(r.diagnostics[0].code, "E001");
        assert!(r.has_errors());
        assert_eq!(r.codes(), vec!["E001", "W103"]);
    }
}
