//! `--explain`-style documentation for every diagnostic code.
//!
//! One registered entry per stable code, with the paper section the rule
//! derives from — the analyzer's counterpart of `rustc --explain`. A test
//! pins that every code the analyzer can emit has explain text, so a new
//! lint cannot ship undocumented.

/// One registered diagnostic code.
#[derive(Debug, Clone, Copy)]
pub struct CodeDoc {
    /// The stable code (`E001`, `W110`, …).
    pub code: &'static str,
    /// One-line summary (the lint-table row).
    pub summary: &'static str,
    /// The paper section the rule derives from.
    pub section: &'static str,
    /// One explanatory paragraph.
    pub explain: &'static str,
}

/// Every code the analyzer can emit, in code order.
pub const CODES: &[CodeDoc] = &[
    CodeDoc {
        code: "E001",
        summary: "writes to a table land across the WAN from the database",
        section: "§4.2",
        explain: "The authoritative (read-write) instance of an entity whose table the \
                  application writes is placed across the wide area from the database. Every \
                  write it performs then crosses the WAN, and the node effectively holds a \
                  read-only replica pretending to be a primary. The paper's deployments keep \
                  writers next to the rows they mutate and distribute only reads; move the \
                  primary to the database's site and replicate read-only instances outward.",
    },
    CodeDoc {
        code: "E002",
        summary: "push propagation declared without the machinery it needs",
        section: "§4.3–§4.5",
        explain: "The descriptor declares push-mode update propagation (synchronous or \
                  asynchronous), but the deployment lacks a required piece of machinery: \
                  read-only replicas to push to, a placed JMS broker for the asynchronous \
                  queue, or a message-driven receiver at a push target. Updates would be \
                  produced and never applied; the cached state the configuration's whole \
                  point is to keep warm would silently diverge.",
    },
    CodeDoc {
        code: "E003",
        summary: "page exceeds its §4.2 wide-area round-trip budget",
        section: "§4.2",
        explain: "A page's call tree makes more wide-area round trips than the invariant \
                  table allows (one per page for remote-façade deployments, two for Pet \
                  Store's VerifySignIn, zero for the centralized baseline). On a multi-hop \
                  topology each crossing is charged its shortest-path WAN hop count, so a \
                  relayed edge-to-edge call costs every wide-area leg it traverses. Wide-area \
                  latency dominates response time; a page over budget will miss the paper's \
                  latency targets no matter how fast the servers are.",
    },
    CodeDoc {
        code: "E004",
        summary: "component unplaced or placed on a non-hosting node",
        section: "§2.2",
        explain: "Every component must be placed on at least one application hosting node \
                  (the three servers or the database host) before the binder can resolve a \
                  call to it, and every page's root web component must sit on an entry \
                  server. An unplaced component — or one placed on a router or client LAN — \
                  makes the deployment unrunnable, so analysis stops at this error.",
    },
    CodeDoc {
        code: "E005",
        summary: "a page can observe its own write rolled back after failover",
        section: "§4.5",
        explain: "A session-flow path writes a table and a later page of the same session \
                  reads that table from a cached site that is not synchronously maintained, \
                  while the fault policy keeps serving from caches during partitions or \
                  fails requests over to other replicas. If the episode severs the \
                  propagation path before the push is applied, the session first observes \
                  its write and then a cached state from before it — the write appears \
                  rolled back. Either propagate synchronously, disable stale serving, or \
                  pin the session's reads to the write path.",
    },
    CodeDoc {
        code: "W101",
        summary: "BMP-style n+1 finder issued over the WAN",
        section: "§2.3/§4.1",
        explain: "A bean-managed-persistence finder runs over the wide area: after the \
                  finder query, each returned row is loaded with its own remote round trip \
                  — the paper's motivating pathology, which turned a one-query page into \
                  dozens of WAN crossings. Use a façade that returns the rows in bulk, or \
                  co-locate the finder with the database.",
    },
    CodeDoc {
        code: "W102",
        summary: "session façade writes across the WAN",
        section: "§4.2",
        explain: "A session-tier component executes a table write across the wide area. \
                  Writers belong next to the rows they mutate; a WAN-crossing write adds a \
                  wide-area round trip to every transactional page and serializes commits \
                  behind wide-area latency.",
    },
    CodeDoc {
        code: "W103",
        summary: "stub caching disabled while remote calls exist",
        section: "§4.2",
        explain: "The deployment makes remote invocations but stub caching is off, so every \
                  remote call pays an extra JNDI naming exchange before the invocation \
                  itself. The paper's deployments cache home stubs (the EJBHomeFactory \
                  pattern); enabling the descriptor knob removes one round trip per call.",
    },
    CodeDoc {
        code: "W104",
        summary: "cacheable tag never issued, or issued tag not declared",
        section: "§4.4",
        explain: "The query-cache policy and the application disagree about a cacheable \
                  tag: a declared tag is never issued by any page (dead configuration), or \
                  an issued tag is not declared cacheable (its queries always travel to the \
                  central site even where a cache is deployed). Either direction usually \
                  indicates a stale descriptor.",
    },
    CodeDoc {
        code: "W105",
        summary: "read-your-writes staleness hazard under async propagation",
        section: "§4.5",
        explain: "Within a single page, a table is written and then read back from a \
                  locally cached copy that is only asynchronously maintained. When the \
                  response is assembled the cache still holds the pre-write value, so the \
                  page can answer with state from before its own write. The inter-page \
                  generalisation over whole sessions is E005.",
    },
    CodeDoc {
        code: "W106",
        summary: "replicated stateful session not hosted on the central node",
        section: "§4.3",
        explain: "A stateful session bean is replicated but keeps no instance on the \
                  central node while entity propagation is active. Conversational state \
                  then lives only at the edges, unreachable from the write path that \
                  propagation serves.",
    },
    CodeDoc {
        code: "W107",
        summary: "caching machinery deployed but no page is ever memoizable",
        section: "§4.3–§4.4",
        explain: "The deployment provisions entity replicas or edge query caches, yet \
                  every page either writes a table or makes a non-JDBC crossing, so the \
                  binder never certifies a bind replayable and the bound-program cache \
                  cannot engage. The caching machinery costs propagation traffic without \
                  ever serving a memoized request.",
    },
    CodeDoc {
        code: "W108",
        summary: "traced WAN round trips disagree with the static walk",
        section: "§4.2",
        explain: "A traced simulator run averaged a per-page wide-area round-trip count \
                  more than one trip away from the static walker's figure. Both sides \
                  count the same logical crossings, so a disagreement means the deployment \
                  is not executing the calls the analyzer reasoned about — a stale \
                  descriptor, a diverged walker, or a misconfigured run.",
    },
    CodeDoc {
        code: "W109",
        summary: "every read-only page needs the wide area to complete",
        section: "§4.3",
        explain: "No read-only page can be completed by an edge entry without crossing the \
                  wide area, so a WAN partition leaves edge clients with no servable page \
                  at all — the centralized baseline by construction. Entity replicas or \
                  query caches keep catalog reads local and let the edges keep answering \
                  through the partition.",
    },
    CodeDoc {
        code: "W110",
        summary: "unbounded staleness reachable on a read path",
        section: "§4.5",
        explain: "A page serves a read from a cached site that nothing ever refreshes: the \
                  descriptor deploys the cache but declares no propagation for it, so the \
                  staleness lattice assigns the site ⊤ (Unbounded) — the served value's \
                  age grows without bound from deployment warm-up onward. Declare a \
                  propagation mode for the cache, or remove the replica so reads go to the \
                  authoritative copy.",
    },
    CodeDoc {
        code: "W111",
        summary: "failover target statically unreachable during its episode",
        section: "§4.2",
        explain: "The fault policy declares failover to the central server for crashed \
                  edge entries, but during an episode the policy is meant to survive the \
                  target itself is dead or the clients' route to it crosses a severed \
                  link. The failover edge can never be taken when it is needed; requests \
                  re-targeted along it fail exactly as if no failover were configured.",
    },
    CodeDoc {
        code: "W112",
        summary: "binder crossing routes through ≥2 WAN hops",
        section: "§4.2",
        explain: "A call-tree crossing's shortest path traverses two or more wide-area \
                  legs, but the §4.2 round-trip budget and the descriptor were written \
                  assuming one hop per crossing. On a relayed topology the crossing costs \
                  every WAN leg it traverses — the budget check charges hop-weighted round \
                  trips, and this warning points at the crossing whose placement silently \
                  multiplied its cost.",
    },
    CodeDoc {
        code: "W113",
        summary: "SLO latency objective below the static WAN round-trip floor",
        section: "§4.2",
        explain: "A service-level latency objective demands responses faster than the \
                  deployment can physically deliver: the page's hop-weighted wide-area \
                  round trips, each costing at least twice the topology's cheapest WAN \
                  one-way latency, already exceed the objective's threshold. No seed, \
                  cache-hit pattern or load level can bring the page under the target, so \
                  every run would grade the objective as missed. Loosen the threshold, or \
                  redeploy (replicas, query caches) so the page sheds wide-area round \
                  trips.",
    },
    CodeDoc {
        code: "W114",
        summary: "adaptive controller's observation period outlasts every fault episode",
        section: "§6.8",
        explain: "The live-migration controller only sees the deployment through closed \
                  metric windows folded in once per cadence, so the soonest it can react \
                  to a condition is one observation period — the larger of its cadence \
                  and the metrics window — after the condition appears. Every scripted \
                  fault episode here heals in less time than that: each episode is over \
                  before a single controller round can observe it, and any migrations the \
                  controller does commit are priced against post-heal telemetry. Shorten \
                  the cadence or the metrics window below the shortest episode you want \
                  the controller to ride out, or disable the controller and keep the \
                  static placement. The same code fires when the controller is armed with \
                  the windowed recorder off entirely — no telemetry, no possible round.",
    },
];

/// Looks up a code's documentation (case-sensitive, `E…`/`W…`).
pub fn explain(code: &str) -> Option<&'static CodeDoc> {
    CODES.iter().find(|d| d.code == code)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_sorted_unique_and_documented() {
        for pair in CODES.windows(2) {
            assert!(pair[0].code < pair[1].code, "registry sorted by code");
        }
        for doc in CODES {
            assert!(doc.explain.len() > 100, "{} explain too short", doc.code);
            assert!(doc.section.starts_with('§'), "{}", doc.code);
            assert!(!doc.summary.is_empty(), "{}", doc.code);
        }
        assert!(explain("W110").is_some());
        assert!(explain("w110").is_none(), "lookup is case-sensitive");
        assert!(explain("E999").is_none());
    }
}
