//! The static page walker.
//!
//! Mirrors the binder's resolution rules ([`mutsvc_middleware::binding`])
//! over a page's logical call tree *without* executing the simulator,
//! assuming **steady state**: stubs cached (when the descriptor enables
//! caching), entity replica rows valid, covered query-cache entries
//! populated. The binder's own warm (second) bind of the same page makes the
//! identical decisions, which is what the golden cross-validation test
//! checks crossing-by-crossing.

use std::collections::BTreeSet;

use mutsvc_middleware::{
    Action, Call, ComponentId, ComponentKind, ComponentRegistry, Crossing, CrossingKind, DbAccess,
    DeploymentDescriptor, MutateAction, PageRequest, QueryAction, UpdatePropagation,
};
use mutsvc_netsim::NodeId;
use mutsvc_relstore::{Database, Query, TableId};

/// How a read was served locally (for staleness lint context).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadVia {
    /// From a read-only entity replica row.
    Replica,
    /// From an edge query cache.
    QueryCache,
}

/// One lint-relevant event observed during the walk, with the invocation
/// path where it happened.
#[derive(Debug, Clone)]
pub struct WalkEvent {
    /// The component executing the action.
    pub component: ComponentId,
    /// The node it executed on.
    pub node: NodeId,
    /// Invocation path (`web.doGet > Catalog.getItem`).
    pub path: String,
    /// What happened.
    pub kind: WalkEventKind,
}

/// Lint-relevant event kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalkEventKind {
    /// An `n+1`-style BMP finder issued direct JDBC across the WAN (W101).
    FinderOverWan {
        /// The queried table.
        table: TableId,
    },
    /// A session-tier component executed a write across the WAN (W102).
    SessionWriteOverWan {
        /// The written table.
        table: TableId,
    },
    /// A locally cached read of data this page wrote earlier, under
    /// asynchronous propagation (W105).
    StaleReadAfterWrite {
        /// The read table.
        table: TableId,
        /// How the read was served.
        via: ReadVia,
    },
}

/// One read served from locally cached state (entity replica row or edge
/// query cache) during the walk — the program points the staleness dataflow
/// abstract-interprets.
#[derive(Debug, Clone)]
pub struct CachedRead {
    /// The table read.
    pub table: TableId,
    /// How the read was served.
    pub via: ReadVia,
    /// The node holding the cached state.
    pub node: NodeId,
    /// The component issuing the read.
    pub component: ComponentId,
    /// Invocation path of the read site.
    pub path: String,
}

/// The result of statically walking one page from one entry server.
#[derive(Debug)]
pub struct PageWalk {
    /// Page name.
    pub page: String,
    /// Entry server used.
    pub entry: NodeId,
    /// Node crossings on the synchronous path, in call-tree order — the same
    /// sequence the binder records on a warm bind.
    pub crossings: Vec<Crossing>,
    /// Lint-relevant events.
    pub events: Vec<WalkEvent>,
    /// Cacheable tags issued by this page's queries.
    pub tags_issued: BTreeSet<String>,
    /// Tables this page writes.
    pub written_tables: BTreeSet<TableId>,
    /// Every read served from cached state, in call-tree order.
    pub cached_reads: Vec<CachedRead>,
}

impl PageWalk {
    /// Wide-area round trips in the call tree, judged by `is_wan`.
    pub fn wan_round_trips(&self, is_wan: impl Fn(NodeId, NodeId) -> bool) -> u32 {
        self.crossings
            .iter()
            .filter(|c| is_wan(c.from, c.to))
            .map(Crossing::round_trips)
            .fold(0u32, u32::saturating_add)
    }
}

/// The entry server a remote edge-1 client uses for `page`: the edge when
/// the root web component is deployed there, otherwise the main server
/// (mirrors the workload driver's group wiring).
pub fn entry_node(
    descriptor: &DeploymentDescriptor,
    edge: NodeId,
    central: NodeId,
    page: &PageRequest,
) -> NodeId {
    if descriptor.placement(page.root.component).hosts(edge) {
        edge
    } else {
        central
    }
}

/// Statically walks `page` as served from `entry`.
pub fn walk_page(
    registry: &ComponentRegistry,
    descriptor: &DeploymentDescriptor,
    db: &Database,
    is_wan: &dyn Fn(NodeId, NodeId) -> bool,
    entry: NodeId,
    page: &PageRequest,
) -> PageWalk {
    let mut walker = Walker {
        registry,
        descriptor,
        db,
        is_wan,
        crossings: Vec::new(),
        events: Vec::new(),
        tags_issued: BTreeSet::new(),
        written_tables: BTreeSet::new(),
        cached_reads: Vec::new(),
        path: Vec::new(),
    };
    walker.walk_call(entry, &page.root);
    PageWalk {
        page: page.page.clone(),
        entry,
        crossings: walker.crossings,
        events: walker.events,
        tags_issued: walker.tags_issued,
        written_tables: walker.written_tables,
        cached_reads: walker.cached_reads,
    }
}

struct Walker<'a> {
    registry: &'a ComponentRegistry,
    descriptor: &'a DeploymentDescriptor,
    db: &'a Database,
    is_wan: &'a dyn Fn(NodeId, NodeId) -> bool,
    crossings: Vec<Crossing>,
    events: Vec<WalkEvent>,
    tags_issued: BTreeSet<String>,
    written_tables: BTreeSet<TableId>,
    cached_reads: Vec<CachedRead>,
    path: Vec<String>,
}

impl Walker<'_> {
    /// Identical to the binder's host choice: entity writes go to the
    /// primary, reads prefer a co-located instance, sessions prefer the
    /// caller's node.
    fn resolve_host(&self, caller: NodeId, call: &Call) -> NodeId {
        let placement = self.descriptor.placement(call.component);
        match self.registry.spec(call.component).kind {
            ComponentKind::Entity => {
                if call.has_writes() {
                    placement.primary
                } else if placement.hosts(caller) {
                    caller
                } else {
                    placement.primary
                }
            }
            _ => {
                if placement.hosts(caller) {
                    caller
                } else {
                    placement.primary
                }
            }
        }
    }

    fn path_string(&self) -> String {
        self.path.join(" > ")
    }

    fn walk_call(&mut self, caller: NodeId, call: &Call) {
        let host = self.resolve_host(caller, call);
        let spec = self.registry.spec(call.component);
        self.path.push(format!("{}.{}", spec.name, call.op));
        if host != caller {
            // Steady state: with stub caching the home stub is already held;
            // without it, every remote call pays a JNDI exchange first.
            let naming = self.descriptor.central_node;
            if !self.descriptor.stub_caching && caller != naming {
                self.crossings.push(Crossing {
                    from: caller,
                    to: naming,
                    kind: CrossingKind::Jndi,
                });
            }
            self.crossings.push(Crossing {
                from: caller,
                to: host,
                kind: CrossingKind::Rmi,
            });
        }
        for action in &call.actions {
            match action {
                Action::Invoke(invoke) => self.walk_call(host, &invoke.call),
                Action::Query(qa) => self.walk_query(host, call.component, qa),
                Action::Mutate(ma) => self.walk_mutation(host, call.component, ma),
            }
        }
        self.path.pop();
    }

    fn walk_query(&mut self, host: NodeId, component: ComponentId, qa: &QueryAction) {
        if let Some(tag) = &qa.tag {
            self.tags_issued.insert(tag.clone());
        }
        let spec = self.registry.spec(component);
        let placement = self.descriptor.placement(component);
        let table = qa.query.table();

        // Read-only entity replica (§4.3): warm by-pk reads are local hits,
        // finders always delegate to the authoritative primary.
        if spec.kind == ComponentKind::Entity && host != placement.primary {
            match &qa.query {
                Query::ByPk { .. } => {
                    self.note_cached_read(host, component, table, ReadVia::Replica);
                }
                _ => self.remote_fetch(host),
            }
            return;
        }

        // Edge query cache (§4.4): warm covered queries are local hits.
        if let Some(tag) = &qa.tag {
            if self.descriptor.query_cache.covers(host, tag) {
                self.note_cached_read(host, component, table, ReadVia::QueryCache);
                return;
            }
        }

        // Plain database access, with the binder's delegation rule: only the
        // legacy web tier and data-adjacent hosts open JDBC directly.
        let db_node = self.descriptor.db_node;
        let direct_jdbc = spec.kind == ComponentKind::Web
            || host == db_node
            || host == self.descriptor.central_node;
        if direct_jdbc {
            if host != db_node {
                let trips = qa
                    .access
                    .round_trips(self.db.execute(&qa.query).row_count());
                self.crossings.push(Crossing {
                    from: host,
                    to: db_node,
                    kind: CrossingKind::Jdbc { trips },
                });
                if qa.access == DbAccess::BmpFinder && (self.is_wan)(host, db_node) {
                    self.events.push(WalkEvent {
                        component,
                        node: host,
                        path: self.path_string(),
                        kind: WalkEventKind::FinderOverWan { table },
                    });
                }
            }
        } else {
            self.remote_fetch(host);
        }
    }

    /// One delegated fetch through the central façade, plus its LAN JDBC leg.
    fn remote_fetch(&mut self, host: NodeId) {
        let central = self.descriptor.central_node;
        let db_node = self.descriptor.db_node;
        if host != central {
            self.crossings.push(Crossing {
                from: host,
                to: central,
                kind: CrossingKind::Fetch,
            });
        }
        if central != db_node {
            self.crossings.push(Crossing {
                from: central,
                to: db_node,
                kind: CrossingKind::Jdbc { trips: 1 },
            });
        }
    }

    fn walk_mutation(&mut self, host: NodeId, component: ComponentId, ma: &MutateAction) {
        let db_node = self.descriptor.db_node;
        let table = ma.mutation.table();
        if host != db_node {
            self.crossings.push(Crossing {
                from: host,
                to: db_node,
                kind: CrossingKind::Jdbc { trips: 1 },
            });
        }
        self.written_tables.insert(table);
        let kind = self.registry.spec(component).kind;
        let session_tier = matches!(
            kind,
            ComponentKind::StatefulSession | ComponentKind::StatelessSession
        );
        if session_tier && (self.is_wan)(host, db_node) {
            self.events.push(WalkEvent {
                component,
                node: host,
                path: self.path_string(),
                kind: WalkEventKind::SessionWriteOverWan { table },
            });
        }
    }

    /// A read served from local cached state: always recorded as a
    /// [`CachedRead`] site for the staleness dataflow, and flagged inline
    /// when this page already wrote the same table and propagation is
    /// asynchronous — the warm cache still holds the pre-write value when
    /// the response is assembled (W105).
    fn note_cached_read(
        &mut self,
        host: NodeId,
        component: ComponentId,
        table: TableId,
        via: ReadVia,
    ) {
        self.cached_reads.push(CachedRead {
            table,
            via,
            node: host,
            component,
            path: self.path_string(),
        });
        if !self.written_tables.contains(&table) {
            return;
        }
        let propagation = match via {
            ReadVia::Replica => self.descriptor.entity_propagation,
            ReadVia::QueryCache => self.descriptor.query_cache.propagation,
        };
        if propagation == UpdatePropagation::AsyncPush {
            self.events.push(WalkEvent {
                component,
                node: host,
                path: self.path_string(),
                kind: WalkEventKind::StaleReadAfterWrite { table, via },
            });
        }
    }
}
