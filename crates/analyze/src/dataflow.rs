//! Staleness-lattice dataflow over bound-page programs.
//!
//! Each cached read site (entity replica row, edge query cache) serves data
//! whose distance from the authoritative database is bounded by the
//! descriptor's propagation mode. The analysis abstract-interprets every
//! page over a per-table lattice
//!
//! ```text
//!        Fresh  <  Bounded(g)  <  Unbounded
//! ```
//!
//! — `Fresh`: the site always observes the latest committed value
//! (synchronous push, or invalidation followed by a refetch);
//! `Bounded(g)`: at most `g` propagation generations behind (asynchronous
//! push applies each update after a queued delay); `Unbounded`: nothing
//! ever refreshes the site, staleness grows without bound. Join is max.
//!
//! On top of the per-site facts, an inter-page fixpoint propagates *written
//! tables* along each service-usage pattern's page-flow graph
//! ([`mutsvc_apps::SessionFlow`]): `IN[p]` is the set of tables some
//! earlier page of the same session may have written, computed as the union
//! of `OUT` over `p`'s predecessors until the worklist converges. A cached
//! read of a table in `IN[p]` whose site is not `Fresh` is a
//! read-your-writes hazard *across pages* — the inter-page generalisation
//! of the syntactic W105 — and becomes `E005` when the fault context shows
//! the write is revocable (see [`crate::reachability`]).

use std::collections::{BTreeMap, BTreeSet};

use mutsvc_apps::SessionFlow;
use mutsvc_middleware::{DeploymentDescriptor, UpdatePropagation};
use mutsvc_relstore::TableId;

use crate::walker::{CachedRead, PageWalk, ReadVia};

/// Abstract staleness of a cached read site: how far behind the
/// authoritative database the served value can be.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Staleness {
    /// The site always observes the latest committed value.
    Fresh,
    /// At most this many propagation generations behind.
    Bounded(u32),
    /// Nothing refreshes the site; staleness grows without bound.
    Unbounded,
}

impl Staleness {
    /// Lattice join (least upper bound): the worse of the two.
    pub fn join(self, other: Staleness) -> Staleness {
        self.max(other)
    }

    /// Short rendering label (`fresh`, `bounded(1)`, `unbounded`).
    pub fn label(self) -> String {
        match self {
            Staleness::Fresh => "fresh".to_string(),
            Staleness::Bounded(g) => format!("bounded({g})"),
            Staleness::Unbounded => "unbounded".to_string(),
        }
    }
}

/// The abstract staleness of one cached read site, derived from the
/// propagation mode that maintains it: synchronous push and invalidation
/// are `Fresh` (an invalidated entry refetches before serving), an
/// asynchronous push trails by one queued generation, and no propagation
/// at all leaves the site `Unbounded`.
pub fn site_staleness(descriptor: &DeploymentDescriptor, via: ReadVia) -> Staleness {
    let propagation = match via {
        ReadVia::Replica => descriptor.entity_propagation,
        ReadVia::QueryCache => descriptor.query_cache.propagation,
    };
    match propagation {
        UpdatePropagation::SyncPush | UpdatePropagation::Invalidate => Staleness::Fresh,
        UpdatePropagation::AsyncPush => Staleness::Bounded(1),
        UpdatePropagation::None => Staleness::Unbounded,
    }
}

/// A cached read of a table some earlier page of the same session may have
/// written, at a site that is not `Fresh` — the session can observe state
/// from before its own write.
#[derive(Debug, Clone)]
pub struct InterPageHazard {
    /// The usage pattern whose flow graph carries the write.
    pub pattern: &'static str,
    /// The page performing the cached read.
    pub page: String,
    /// The read site.
    pub site: CachedRead,
    /// Site staleness (never `Fresh`).
    pub staleness: Staleness,
}

/// The result of the staleness dataflow over all pages and flows.
#[derive(Debug)]
pub struct StalenessAnalysis {
    /// Per-page staleness bound: the join over the page's cached read
    /// sites (`Fresh` when the page reads nothing from caches).
    pub page_bounds: BTreeMap<String, Staleness>,
    /// Read sites with unbounded staleness (W110), in walk order.
    pub unbounded_sites: Vec<(String, CachedRead)>,
    /// Inter-page read-your-writes hazards over the session flow graphs.
    pub hazards: Vec<InterPageHazard>,
    /// Worklist sweeps until the inter-page fixpoint stabilised (max over
    /// flows).
    pub iterations: u32,
    /// Whether every flow reached its fixpoint within the iteration cap.
    pub converged: bool,
}

/// Sweeps the iteration cap: generous, and only reachable by a bug — the
/// carried-write sets grow monotonically, so |pages| × |tables| sweeps
/// already overshoot the tallest possible chain.
fn iteration_cap(pages: usize) -> u32 {
    (2 * pages + 8) as u32
}

/// Runs the staleness dataflow: per-site lattice facts, then the inter-page
/// carried-write fixpoint over each session flow graph.
pub fn analyze_staleness(
    descriptor: &DeploymentDescriptor,
    flows: &[SessionFlow],
    walks: &[PageWalk],
) -> StalenessAnalysis {
    let by_label: BTreeMap<&str, &PageWalk> = walks.iter().map(|w| (w.page.as_str(), w)).collect();

    let mut page_bounds = BTreeMap::new();
    let mut unbounded_sites = Vec::new();
    for walk in walks {
        let mut bound = Staleness::Fresh;
        for site in &walk.cached_reads {
            let s = site_staleness(descriptor, site.via);
            bound = bound.join(s);
            if s == Staleness::Unbounded {
                unbounded_sites.push((walk.page.clone(), site.clone()));
            }
        }
        page_bounds.insert(walk.page.clone(), bound);
    }

    let mut hazards = Vec::new();
    let mut iterations = 0u32;
    let mut converged = true;
    for flow in flows {
        let pages: Vec<&PageWalk> = flow
            .pages
            .iter()
            .filter_map(|p| by_label.get(p).copied())
            .collect();
        if pages.is_empty() {
            continue;
        }
        let n = pages.len();
        let writes: Vec<&BTreeSet<TableId>> = pages.iter().map(|w| &w.written_tables).collect();
        let mut in_sets: Vec<BTreeSet<TableId>> = vec![BTreeSet::new(); n];
        let mut out_sets: Vec<BTreeSet<TableId>> = vec![BTreeSet::new(); n];
        let cap = iteration_cap(n);
        let mut sweeps = 0u32;
        loop {
            let mut changed = false;
            for i in 0..n {
                // Predecessors: in a chain, only the previous page; in a
                // mixed session any page can precede any other (including
                // re-reaching the fixed first page mid-session).
                let mut incoming = BTreeSet::new();
                if flow.chain {
                    if i > 0 {
                        incoming.extend(out_sets[i - 1].iter().copied());
                    }
                } else {
                    for out in &out_sets {
                        incoming.extend(out.iter().copied());
                    }
                }
                if incoming != in_sets[i] {
                    in_sets[i] = incoming;
                    changed = true;
                }
                let mut outgoing = in_sets[i].clone();
                outgoing.extend(writes[i].iter().copied());
                if outgoing != out_sets[i] {
                    out_sets[i] = outgoing;
                    changed = true;
                }
            }
            sweeps += 1;
            if !changed {
                break;
            }
            if sweeps >= cap {
                converged = false;
                break;
            }
        }
        iterations = iterations.max(sweeps);

        for (i, walk) in pages.iter().enumerate() {
            for site in &walk.cached_reads {
                if !in_sets[i].contains(&site.table) {
                    continue;
                }
                let staleness = site_staleness(descriptor, site.via);
                if staleness == Staleness::Fresh {
                    continue;
                }
                hazards.push(InterPageHazard {
                    pattern: flow.pattern,
                    page: walk.page.clone(),
                    site: site.clone(),
                    staleness,
                });
            }
        }
    }

    StalenessAnalysis {
        page_bounds,
        unbounded_sites,
        hazards,
        iterations,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_is_ordered_and_join_is_max() {
        use Staleness::*;
        assert!(Fresh < Bounded(1));
        assert!(Bounded(1) < Bounded(2));
        assert!(Bounded(2) < Unbounded);
        assert_eq!(Fresh.join(Bounded(1)), Bounded(1));
        assert_eq!(Bounded(3).join(Bounded(2)), Bounded(3));
        assert_eq!(Unbounded.join(Fresh), Unbounded);
        assert_eq!(Fresh.join(Fresh), Fresh);
        assert_eq!(Bounded(1).label(), "bounded(1)");
    }
}
