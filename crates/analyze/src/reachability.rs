//! Static fault availability: per-page reachability under fault episodes.
//!
//! For each [`EpisodeView`] the analysis replays the driver's fault
//! semantics *statically*: it removes the episode's dead links and nodes
//! from the placement graph, applies the [`FaultPolicy`]'s failover edge
//! (new requests to a crashed edge entry re-target the central server, and
//! the page is re-walked from there), and classifies every page a remote
//! edge-1 client can issue:
//!
//! * **hard-failed** — the HTTP leg or some call-tree crossing routes over
//!   a dead link or lands on a dead node. Requests fail after the retry
//!   ladder; only requests issued within the ladder's span of the heal
//!   instant are recovered by a post-heal retry.
//! * **stale-gated** — the page completes at an entry cut off from the
//!   central server, served from cached state (caches deployed, bind
//!   replayable). The policy's `stale_serve` knob decides whether these
//!   count as stale successes or strict-consistency failures.
//! * **lossy** — every message over a lossy link is dropped independently;
//!   an attempt fails if any of its messages is lost and the request fails
//!   when all `1 + max_retries` attempts do.
//!
//! Folding the per-page failure probabilities over the service-usage-mix
//! page weights yields a predicted availability per episode — the static
//! counterpart of the simulated availability table in `BENCH_faults.json`,
//! cross-checked the same way W108 cross-checks traced WAN round trips.

use mutsvc_apps::SessionFlow;
use mutsvc_core::EpisodeView;
use mutsvc_desim::time::SimDuration;
use mutsvc_middleware::{CrossingKind, UpdatePropagation};
use mutsvc_netsim::{NodeId, Topology};
use mutsvc_workload::FaultPolicy;

use crate::walker::{walk_page, PageWalk};
use crate::AnalyzeInput;

/// Fraction of a group's requests issued by browser sessions (the paper's
/// §3.3 load: 8 of 10 requests/second per group; see
/// `mutsvc_workload::paper_groups`).
pub const BROWSER_REQUEST_SHARE: f64 = 0.8;

/// The fault model the analyzer verifies a deployment against: the policy
/// arm, the RMI timeout, the episodes, and the measured window the
/// availability denominator spans.
#[derive(Debug, Clone)]
pub struct FaultContext {
    /// Retry/failover/stale-serve policy.
    pub policy: FaultPolicy,
    /// RMI timeout before a lost attempt is noticed.
    pub timeout: SimDuration,
    /// The episodes to verify against.
    pub episodes: Vec<EpisodeView>,
    /// Measured window the availability fraction is taken over.
    pub window: SimDuration,
}

impl FaultContext {
    /// The standard verification context: the resilient policy arm against
    /// the full `core::faultsuite`, scheduled exactly as
    /// [`mutsvc_core::FaultCase::schedule`] scripts it for these windows.
    pub fn standard(
        topology: &Topology,
        nodes: &mutsvc_core::PaperNodes,
        warmup: SimDuration,
        duration: SimDuration,
    ) -> FaultContext {
        FaultContext {
            policy: FaultPolicy::resilient(),
            timeout: mutsvc_workload::FaultSettings::off().timeout,
            episodes: mutsvc_core::FaultCase::all()
                .into_iter()
                .map(|case| case.view(topology, nodes, warmup, duration))
                .collect(),
            window: duration,
        }
    }

    /// The same context under a different policy arm.
    pub fn with_policy(mut self, policy: FaultPolicy) -> FaultContext {
        self.policy = policy;
        self
    }

    /// The retry ladder's span: how long after issue the last retry starts.
    /// A hard-failed request recovers iff that instant lands after heal.
    pub fn ladder(&self) -> SimDuration {
        let mut span = SimDuration::default();
        for attempt in 1..=self.policy.max_retries {
            span += self.timeout + self.policy.backoff(attempt);
        }
        span
    }
}

/// How one page fares during one episode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PageFate {
    /// Unaffected (or saved by failover / stale serving).
    Ok,
    /// Completes from cached state with a recorded staleness bound.
    OkStale,
    /// Crosses a dead link or node: fails after the retry ladder.
    HardFailed,
    /// Completes but the strict policy rejects the stale response.
    StaleRejected,
    /// Subject to message loss with this per-request failure probability.
    Lossy(f64),
}

/// One page's predicted behaviour during one episode.
#[derive(Debug, Clone)]
pub struct PagePrediction {
    /// Page name.
    pub page: String,
    /// Entry node actually used (after any failover).
    pub entry: NodeId,
    /// Whether failover re-targeted the page to the central server.
    pub failover: bool,
    /// The fate.
    pub fate: PageFate,
    /// Stationary weight of the page in the request mix.
    pub weight: f64,
}

/// The predicted availability of the remote edge-1 group over one episode.
#[derive(Debug, Clone)]
pub struct EpisodePrediction {
    /// Episode name.
    pub episode: String,
    /// Predicted fraction of measured requests that succeed.
    pub availability: f64,
    /// Per-page classification.
    pub pages: Vec<PagePrediction>,
}

impl EpisodePrediction {
    /// The prediction for one page, if the page exists.
    pub fn page(&self, page: &str) -> Option<&PagePrediction> {
        self.pages.iter().find(|p| p.page == page)
    }
}

/// A failover policy edge that cannot work: the declared target is itself
/// unreachable during an episode the policy is meant to survive (W111).
#[derive(Debug, Clone)]
pub struct BrokenFailover {
    /// The episode.
    pub episode: String,
    /// The dead entry node failover abandons.
    pub dead_entry: NodeId,
    /// The unreachable target.
    pub target: NodeId,
}

/// Everything the reachability analysis concluded.
#[derive(Debug)]
pub struct AvailabilityAnalysis {
    /// One prediction per episode, in context order.
    pub episodes: Vec<EpisodePrediction>,
    /// Failover edges declared but statically unreachable (W111).
    pub broken_failovers: Vec<BrokenFailover>,
}

struct EpisodeGraph<'a> {
    topology: &'a Topology,
    view: &'a EpisodeView,
}

impl EpisodeGraph<'_> {
    fn node_dead(&self, node: NodeId) -> bool {
        self.view.dead_nodes.contains(&node)
    }

    /// Whether the static route between two nodes survives, both ways.
    /// Mirrors the driver: routes are fixed (no re-routing around dead
    /// links), and every crossing needs its response path too.
    fn route_up(&self, from: NodeId, to: NodeId) -> bool {
        if from == to {
            return true;
        }
        let dir = |a, b| {
            self.topology
                .route(a, b)
                .is_some_and(|r| r.iter().all(|l| !self.view.dead_links.contains(l)))
        };
        dir(from, to) && dir(to, from)
    }

    /// Messages one leg sends over lossy links: `trips` each way, counted
    /// per direction the route actually crosses a lossy link.
    fn lossy_messages(&self, from: NodeId, to: NodeId, trips: u32) -> Vec<(f64, u32)> {
        let mut out = Vec::new();
        for (a, b) in [(from, to), (to, from)] {
            if let Some(route) = self.topology.route(a, b) {
                for &(lossy, p) in &self.view.lossy_links {
                    if route.contains(&lossy) {
                        out.push((p, trips));
                    }
                }
            }
        }
        out
    }
}

/// Whether an episode severs the static-route path between two nodes:
/// either endpoint dead, or a dead link on the fixed route in either
/// direction (the driver never re-routes around dead links).
pub fn severed(topology: &Topology, view: &EpisodeView, from: NodeId, to: NodeId) -> bool {
    let graph = EpisodeGraph { topology, view };
    graph.node_dead(from) || graph.node_dead(to) || !graph.route_up(from, to)
}

/// Runs the reachability analysis for every episode in the context.
///
/// `walks` must be the steady-state walks of `input.pages`, in the same
/// order (failover re-walks pages from the central server as the driver's
/// re-targeting does).
pub fn predict_availability(
    input: &AnalyzeInput<'_>,
    ctx: &FaultContext,
    walks: &[PageWalk],
) -> AvailabilityAnalysis {
    let nodes = input.nodes;
    let descriptor = input.descriptor;
    let client = nodes.client_edge1;
    let central = descriptor.central_node;
    let caches_serve = descriptor.entity_propagation != UpdatePropagation::None;
    let ladder = ctx.ladder();
    let is_wan = |a, b| nodes.is_wan(a, b);

    let mut episodes = Vec::new();
    let mut broken_failovers = Vec::new();
    for view in &ctx.episodes {
        let graph = EpisodeGraph {
            topology: input.topology,
            view,
        };
        let active = view.active();
        let active_s = active.as_secs_f64();
        let window_s = ctx.window.as_secs_f64().max(f64::MIN_POSITIVE);
        let hard_fail_p = (active.saturating_sub(ladder)).as_secs_f64().min(active_s) / window_s;
        let full_fail_p = active_s / window_s;

        // W111: the policy promises failover off a dead entry, but the
        // target itself is dead or unreachable from the clients while the
        // episode is active.
        if ctx.policy.failover {
            for &dead in &view.dead_nodes {
                let entry_for_some_page = walks.iter().any(|w| w.entry == dead);
                if !entry_for_some_page {
                    continue;
                }
                if graph.node_dead(central) || !graph.route_up(client, central) {
                    broken_failovers.push(BrokenFailover {
                        episode: view.name.clone(),
                        dead_entry: dead,
                        target: central,
                    });
                }
            }
        }

        let mut pages = Vec::new();
        let mut availability = 1.0;
        for (walk, page) in walks.iter().zip(input.pages) {
            let weight = page_weight(input.flows, &walk.page);

            // Failover: new requests to a crashed entry re-target the
            // central server and the binder walks the page from there.
            let mut entry = walk.entry;
            let mut failover = false;
            let rewalked;
            let mut effective: &PageWalk = walk;
            if graph.node_dead(entry) && ctx.policy.failover {
                entry = central;
                failover = true;
                rewalked = walk_page(input.registry, descriptor, input.db, &is_wan, central, page);
                effective = &rewalked;
            }

            let fate = classify_page(
                &graph,
                effective,
                client,
                entry,
                central,
                caches_serve,
                &ctx.policy,
            );
            let fail_p = match fate {
                PageFate::Ok | PageFate::OkStale => 0.0,
                PageFate::HardFailed => hard_fail_p,
                PageFate::StaleRejected => full_fail_p,
                PageFate::Lossy(q) => q * full_fail_p,
            };
            availability -= weight * fail_p;
            pages.push(PagePrediction {
                page: walk.page.clone(),
                entry,
                failover,
                fate,
                weight,
            });
        }
        episodes.push(EpisodePrediction {
            episode: view.name.clone(),
            availability,
            pages,
        });
    }
    AvailabilityAnalysis {
        episodes,
        broken_failovers,
    }
}

/// The request-mix weight of a page: browser and transactional session
/// flows weighted by the §3.3 request shares.
pub fn page_weight(flows: &[SessionFlow], page: &str) -> f64 {
    flows
        .iter()
        .map(|flow| {
            let share = match flow.kind {
                mutsvc_apps::SessionKind::Browser => BROWSER_REQUEST_SHARE,
                mutsvc_apps::SessionKind::Transactional => 1.0 - BROWSER_REQUEST_SHARE,
            };
            share * flow.weight_of(page)
        })
        .sum()
}

/// Whether the binder certifies this walk's bind replayable: reads only,
/// and no crossing beyond direct JDBC (RMI/JNDI/fetch draw protocol
/// samples from the RNG stream). Mirrors `check_plan_cacheability`.
pub fn replayable(walk: &PageWalk) -> bool {
    walk.written_tables.is_empty()
        && walk
            .crossings
            .iter()
            .all(|c| matches!(c.kind, CrossingKind::Jdbc { .. }))
}

fn classify_page(
    graph: &EpisodeGraph<'_>,
    walk: &PageWalk,
    client: NodeId,
    entry: NodeId,
    central: NodeId,
    caches_serve: bool,
    policy: &FaultPolicy,
) -> PageFate {
    // The HTTP leg plus every call-tree crossing, as (from, to, trips).
    let legs = std::iter::once((client, entry, 1)).chain(
        walk.crossings
            .iter()
            .map(|c| (c.from, c.to, c.round_trips())),
    );

    let mut lossy_ok = 1.0f64;
    for (from, to, trips) in legs {
        if graph.node_dead(from) || graph.node_dead(to) || !graph.route_up(from, to) {
            return PageFate::HardFailed;
        }
        for (p, msgs) in graph.lossy_messages(from, to, trips) {
            lossy_ok *= (1.0 - p).powi(msgs as i32);
        }
    }

    // Completed at an entry cut off from the central server: the staleness
    // gate fires for cache-served replayable reads.
    if (!graph.route_up(entry, central) || graph.node_dead(central))
        && caches_serve
        && replayable(walk)
    {
        if policy.stale_serve {
            return PageFate::OkStale;
        }
        return PageFate::StaleRejected;
    }

    let q_attempt = 1.0 - lossy_ok;
    if q_attempt > 0.0 {
        let q_request = q_attempt.powi(policy.max_retries as i32 + 1);
        return PageFate::Lossy(q_request);
    }
    PageFate::Ok
}
