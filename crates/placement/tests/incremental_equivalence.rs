//! Equivalence property test: the incremental [`CostEvaluator`] must agree
//! with the from-scratch [`cost_breakdown`] sweep — termwise, within a
//! relative 1e-9 — at *every* step of long randomized move/undo sequences,
//! on both the paper-derived applications and random synthetic graphs.
//!
//! This is the safety net under the whole perf optimisation: every search
//! algorithm now trusts `apply`/`undo` deltas instead of re-sweeping the
//! graph, so any drift here would silently corrupt placement decisions.
//!
//! Run it in release in CI (`cargo test -p mutsvc-placement --release
//! --test incremental_equivalence`); the debug build covers a reduced
//! number of steps so `cargo test -q` stays fast.

use mutsvc_desim::rng::SimRng;
use mutsvc_placement::graph::{
    Component, ComponentGraph, CostParams, Host, HostId, Placement, PlacementProblem, Role,
};
use mutsvc_placement::{cost_breakdown, CostBreakdown, CostEvaluator, Move};
use petgraph::graph::NodeIndex;

#[cfg(debug_assertions)]
const STEPS: usize = 120;
#[cfg(not(debug_assertions))]
const STEPS: usize = 600;

/// Relative tolerance: the evaluator's Kahan accumulators keep drift at the
/// last-bit level, but summation *order* still differs from the sweep.
fn assert_close(term: &str, incremental: f64, full: f64, step: usize) {
    let tolerance = 1e-9 * full.abs().max(1.0);
    assert!(
        (incremental - full).abs() <= tolerance,
        "step {step}: {term} diverged: incremental {incremental:.15e} vs full {full:.15e}"
    );
}

fn assert_breakdown_close(incremental: &CostBreakdown, full: &CostBreakdown, step: usize) {
    assert_close(
        "communication",
        incremental.communication,
        full.communication,
        step,
    );
    assert_close(
        "consistency",
        incremental.consistency,
        full.consistency,
        step,
    );
    assert_close("overload", incremental.overload, full.overload, step);
    assert_close("total", incremental.total(), full.total(), step);
}

/// A synthetic wide-area problem: 3–6 hosts (some with finite CPU capacity
/// so the overload term is exercised), one entry tier, a pinned database,
/// replicable entities with write traffic, and random read/write edges.
fn random_problem(rng: &mut SimRng) -> PlacementProblem {
    let host_count = 3 + rng.index(4);
    let mut hosts = Vec::new();
    let mut shares = Vec::new();
    for i in 0..host_count {
        // Roughly half the hosts take client traffic; host 0 always does so
        // shares never end up all-zero.
        let share = if i == 0 || rng.chance(0.5) {
            rng.uniform_range(0.2, 1.0)
        } else {
            0.0
        };
        shares.push(share);
        hosts.push(Host {
            name: format!("h{i}"),
            entry_share: 0.0,
            // Finite capacities on some hosts so moves cross the overload
            // threshold during the walk.
            cpu_capacity: if rng.chance(0.4) {
                rng.uniform_range(20.0, 120.0)
            } else {
                f64::INFINITY
            },
        });
    }
    let total_share: f64 = shares.iter().sum();
    for (host, share) in hosts.iter_mut().zip(&shares) {
        host.entry_share = share / total_share;
    }
    let mut rtt_ms = vec![vec![0.0; host_count]; host_count];
    // Symmetric fill writes both the (i, j) and (j, i) slots.
    #[allow(clippy::needless_range_loop)]
    for i in 0..host_count {
        for j in (i + 1)..host_count {
            let rtt = rng.uniform_range(10.0, 300.0);
            rtt_ms[i][j] = rtt;
            rtt_ms[j][i] = rtt;
        }
    }

    let mut graph = ComponentGraph::new();
    let component_count = 6 + rng.index(7);
    let mut nodes = Vec::new();
    for i in 0..component_count {
        let role = match i {
            0 => Role::Entry,
            1 => Role::Database,
            _ => match rng.index(4) {
                0 => Role::Session,
                1 => Role::Stateless,
                2 => Role::Entity,
                _ => Role::Stateless,
            },
        };
        let write_rate = if matches!(role, Role::Entity | Role::Database) {
            rng.uniform_range(0.0, 8.0)
        } else {
            0.0
        };
        nodes.push(graph.add(Component {
            name: format!("c{i}"),
            role,
            pinned: (role == Role::Database).then(|| HostId(rng.index(host_count))),
            cpu_ms_per_call: rng.uniform_range(0.1, 6.0),
            write_rate,
        }));
    }
    // Entry fans out; internal components call "later" components so the
    // graph looks like a tiered application rather than random soup.
    for i in 1..component_count {
        graph.interact(
            nodes[0],
            nodes[i],
            rng.uniform_range(0.5, 30.0),
            rng.uniform_range(100.0, 4000.0),
        );
    }
    for _ in 0..component_count * 2 {
        let a = rng.index(component_count);
        let b = rng.index(component_count);
        if a == b {
            continue;
        }
        let rate = rng.uniform_range(0.1, 20.0);
        let bytes = rng.uniform_range(50.0, 2000.0);
        if rng.chance(0.3) {
            graph.interact_write(nodes[a], nodes[b], rate, bytes);
        } else {
            graph.interact(nodes[a], nodes[b], rate, bytes);
        }
    }

    let problem = PlacementProblem {
        hosts,
        rtt_ms,
        graph,
        params: CostParams {
            overload_penalty: 5_000.0,
            ..CostParams::default()
        },
    };
    problem.validate().expect("random problem is well-formed");
    problem
}

/// A random starting placement: scattered primaries plus some replicas.
fn random_placement(rng: &mut SimRng, problem: &PlacementProblem) -> Placement {
    let hosts = problem.hosts.len();
    let mut placement = Placement::all_on(problem, HostId(0));
    for node in problem.graph.graph.node_indices() {
        let idx = node.index();
        placement.primary[idx] = HostId(rng.index(hosts));
        for h in 0..hosts {
            if HostId(h) != placement.primary[idx] && rng.chance(0.2) {
                placement.replicas[idx].insert(HostId(h));
            }
        }
    }
    placement.repair_pins(problem);
    placement
}

/// Draws a move that is valid against the evaluator's *current* state.
fn random_move(rng: &mut SimRng, eval: &CostEvaluator, problem: &PlacementProblem) -> Move {
    let components = problem.graph.len();
    let hosts = problem.hosts.len();
    loop {
        let node = NodeIndex::new(rng.index(components));
        let host = HostId(rng.index(hosts));
        match rng.index(3) {
            0 => return Move::MovePrimary { node, to: host },
            1 if eval.primary_of(node) != host && !eval.has_replica(node, host) => {
                return Move::AddReplica { node, host };
            }
            2 if eval.has_replica(node, host) => {
                return Move::DropReplica { node, host };
            }
            _ => continue,
        }
    }
}

/// Drives a move/undo walk and checks the evaluator against the full sweep
/// at every step; at the end, unwinds everything and checks the initial
/// state is restored exactly.
fn walk(problem: &PlacementProblem, start: Placement, rng: &mut SimRng, steps: usize) {
    let initial_breakdown = cost_breakdown(problem, &start);
    let mut eval = CostEvaluator::new(problem, start.clone());
    assert_breakdown_close(&eval.breakdown(), &initial_breakdown, 0);

    let mut running_total = eval.total();
    for step in 1..=steps {
        let delta = if eval.depth() > 0 && rng.chance(0.3) {
            eval.undo()
        } else {
            let mv = random_move(rng, &eval, problem);
            eval.apply(mv)
        };
        running_total += delta;
        let full = cost_breakdown(problem, eval.placement());
        assert_breakdown_close(&eval.breakdown(), &full, step);
        // The *sum of reported deltas* must track the state too — the
        // algorithms accumulate these deltas without re-reading totals.
        assert_close("running-delta total", running_total, full.total(), step);
    }

    while eval.depth() > 0 {
        eval.undo();
    }
    assert_eq!(
        eval.placement(),
        &start,
        "full unwind must restore the starting placement exactly"
    );
    assert_breakdown_close(&eval.breakdown(), &initial_breakdown, steps + 1);
}

#[test]
fn paper_applications_match_full_recompute() {
    let (petstore, _) = mutsvc_placement::derive::petstore_problem();
    let (rubis, _) = mutsvc_placement::derive::rubis_problem();
    for (name, problem) in [("petstore", petstore), ("rubis", rubis)] {
        let mut rng = SimRng::seed_from_u64(0xC0FFEE ^ name.len() as u64);
        let start = random_placement(&mut rng, &problem);
        walk(&problem, start, &mut rng, STEPS);
    }
}

#[test]
fn random_graphs_match_full_recompute() {
    for seed in 0..12u64 {
        let mut rng = SimRng::seed_from_u64(0x5EED_0000 + seed);
        let problem = random_problem(&mut rng);
        let start = random_placement(&mut rng, &problem);
        walk(&problem, start, &mut rng, STEPS);
    }
}

#[test]
fn all_on_single_host_walks_match() {
    // Degenerate starts (everything co-located, near-zero communication)
    // are where absolute tolerances would hide bugs; walk from each.
    let (problem, _) = mutsvc_placement::derive::petstore_problem();
    for host in 0..problem.hosts.len() {
        let mut rng = SimRng::seed_from_u64(0xA11_0000 + host as u64);
        let start = Placement::all_on(&problem, HostId(host));
        walk(&problem, start, &mut rng, STEPS / 2);
    }
}
