//! Deriving placement problems from simulated WAN topologies.
//!
//! The paper's placement instances hand-write a 3-host round-trip matrix.
//! Multi-tier topologies (regional hubs, CDN edge tiers — see
//! `mutsvc_core::topology::multi_tier_topology`) have hundreds of candidate
//! hosts whose pairwise cost is a *multi-hop* WAN path, not a single link.
//! This module prices those paths the same way the simulator and the static
//! analyzer do: [`Topology::rtt`] sums latency-shortest routes (Dijkstra per
//! source, computed once per topology), so the placement matrix, the
//! analyzer's `PathModel`, and the engine's message timing can never
//! disagree about what a host pair costs.

use mutsvc_netsim::{LinkId, NodeId, Topology, WAN_LATENCY_THRESHOLD};

use crate::graph::{Host, PlacementProblem};

/// One candidate placement host drawn from a topology node.
#[derive(Debug, Clone)]
pub struct ServerSpec {
    /// The topology node acting as the host.
    pub node: NodeId,
    /// Share of client traffic originating at this host (0 for pure
    /// compute tiers such as regional hubs).
    pub entry_share: f64,
    /// CPU capacity in ms/s ([`f64::INFINITY`] = uncapped).
    pub cpu_capacity: f64,
}

/// All-pairs round-trip matrix (milliseconds) over `servers`, priced along
/// latency-shortest routes of `topology` — `rtt[a][b]` is the full
/// multi-hop path there and back, exactly what one remote invocation pays.
///
/// # Panics
///
/// Panics if any server pair is unreachable in the topology.
pub fn host_matrix(topology: &Topology, servers: &[NodeId]) -> Vec<Vec<f64>> {
    servers
        .iter()
        .map(|&a| {
            servers
                .iter()
                .map(|&b| {
                    if a == b {
                        0.0
                    } else {
                        topology.rtt(a, b).as_millis_f64()
                    }
                })
                .collect()
        })
        .collect()
}

/// Builds the placement host list + round-trip matrix for `servers`,
/// naming each host after its topology node.
pub fn hosts_from_topology(
    topology: &Topology,
    servers: &[ServerSpec],
) -> (Vec<Host>, Vec<Vec<f64>>) {
    let nodes: Vec<NodeId> = servers.iter().map(|s| s.node).collect();
    let hosts = servers
        .iter()
        .map(|s| Host {
            name: topology.node(s.node).name.clone(),
            entry_share: s.entry_share,
            cpu_capacity: s.cpu_capacity,
        })
        .collect();
    (hosts, host_matrix(topology, &nodes))
}

/// Re-targets a derived problem (same component graph and cost parameters)
/// onto a different host set — how the scaling bench deploys the RUBiS /
/// Pet Store graphs onto generated multi-tier topologies.
///
/// Pinned components keep their [`HostId`](crate::graph::HostId) indices,
/// so the new host list must keep the pinned hosts (in practice: the main
/// server stays index 0) at the same positions.
///
/// # Panics
///
/// Panics if the rehosted problem fails [`PlacementProblem::validate`]
/// (malformed matrix, pins out of range, entry shares not summing to 1).
pub fn rehost(
    problem: &PlacementProblem,
    hosts: Vec<Host>,
    rtt_ms: Vec<Vec<f64>>,
) -> PlacementProblem {
    let rehosted = PlacementProblem {
        hosts,
        rtt_ms,
        graph: problem.graph.clone(),
        params: problem.params.clone(),
    };
    if let Err(msg) = rehosted.validate() {
        panic!("rehosted problem invalid: {msg}");
    }
    rehosted
}

/// [`host_matrix`] with *observed* per-link latencies: the online
/// re-pricing API the adaptive controller feeds with telemetry.
///
/// `observed_one_way_ms[link]` overrides the one-way latency of that
/// directed link (`None` falls back to the topology's static latency —
/// telemetry only covers WAN links that carried traffic). Paths still
/// follow the *static* latency-shortest routes: observation re-prices the
/// paths the deployed system actually uses, it does not re-route them, so
/// the matrix stays consistent with the simulator's precomputed routing.
///
/// # Panics
///
/// Panics if `observed_one_way_ms` is not one entry per directed link, or
/// if any server pair is unreachable.
pub fn reprice_matrix(
    topology: &Topology,
    servers: &[NodeId],
    observed_one_way_ms: &[Option<f64>],
) -> Vec<Vec<f64>> {
    assert_eq!(
        observed_one_way_ms.len(),
        topology.link_count(),
        "one observed-latency slot per directed link"
    );
    let leg = |from: NodeId, to: NodeId| -> f64 {
        topology
            .route(from, to)
            .unwrap_or_else(|| panic!("no route {from} -> {to}"))
            .iter()
            .map(|&l: &LinkId| {
                observed_one_way_ms[l.index()]
                    .unwrap_or_else(|| topology.link(l).latency.as_millis_f64())
            })
            .sum()
    };
    servers
        .iter()
        .map(|&a| {
            servers
                .iter()
                .map(|&b| if a == b { 0.0 } else { leg(a, b) + leg(b, a) })
                .collect()
        })
        .collect()
}

/// The host-pair round-trip bound (milliseconds) under which two hosts
/// belong to one network region: twice the one-way
/// [`WAN_LATENCY_THRESHOLD`] the engine and analyzer use, since a placement
/// matrix stores round trips. Host pairs joined by LAN/metro links stay
/// strictly under it; any WAN hop pushes the round trip strictly over it.
pub fn region_rtt_threshold_ms() -> f64 {
    2.0 * WAN_LATENCY_THRESHOLD.as_millis_f64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mutsvc_desim::SimDuration;
    use mutsvc_netsim::TopologyBuilder;

    /// client — router — hub — edge chain: the client↔edge round trip must
    /// be priced over both WAN legs, not one star hop.
    #[test]
    fn host_matrix_prices_multi_hop_paths() {
        let mut b = TopologyBuilder::new();
        let main = b.node("main", 2);
        let router = b.node("router", 8);
        let hub = b.node("hub", 4);
        let edge = b.node("edge", 2);
        b.duplex_link(main, router, SimDuration::from_micros(200), 100e6);
        b.duplex_link(router, hub, SimDuration::from_millis(60), 100e6);
        b.duplex_link(hub, edge, SimDuration::from_millis(30), 100e6);
        let t = b.finalize();
        let m = host_matrix(&t, &[main, hub, edge]);
        assert_eq!(m[0][0], 0.0);
        let main_hub = 2.0 * (0.2 + 60.0);
        let main_edge = 2.0 * (0.2 + 60.0 + 30.0);
        assert!((m[0][1] - main_hub).abs() < 1e-9, "{}", m[0][1]);
        assert!((m[0][2] - main_edge).abs() < 1e-9, "{}", m[0][2]);
        assert!((m[1][2] - 60.0).abs() < 1e-9, "{}", m[1][2]);
        // Symmetric (duplex links with equal latency both ways).
        assert_eq!(m[0][2], m[2][0]);
    }

    #[test]
    fn reprice_matrix_overrides_observed_links_and_falls_back_statically() {
        let mut b = TopologyBuilder::new();
        let main = b.node("main", 2);
        let router = b.node("router", 8);
        let hub = b.node("hub", 4);
        let edge = b.node("edge", 2);
        b.duplex_link(main, router, SimDuration::from_micros(200), 100e6);
        b.duplex_link(router, hub, SimDuration::from_millis(60), 100e6);
        b.duplex_link(hub, edge, SimDuration::from_millis(30), 100e6);
        let t = b.finalize();
        let servers = [main, hub, edge];
        // No observations: identical to the statically priced matrix.
        let none = vec![None; t.link_count()];
        assert_eq!(
            reprice_matrix(&t, &servers, &none),
            host_matrix(&t, &servers)
        );
        // Degrade the router->hub leg (one direction) to an observed 480 ms.
        let degraded = t.route(router, hub).unwrap()[0];
        let mut obs = none.clone();
        obs[degraded.index()] = Some(480.0);
        let m = reprice_matrix(&t, &servers, &obs);
        // main->hub leg now 0.2 + 480, return leg still 60 + 0.2.
        assert!((m[0][1] - (480.2 + 60.2)).abs() < 1e-9, "{}", m[0][1]);
        // The hub<->edge pair never crosses the degraded link.
        assert!((m[1][2] - 60.0).abs() < 1e-9, "{}", m[1][2]);
        // Asymmetric observation makes the matrix asymmetric, as it should.
        assert!(
            (m[1][0] - m[0][1]).abs() < 1e-9,
            "round trips include both legs"
        );
    }

    #[test]
    fn region_threshold_doubles_the_one_way_constant() {
        assert!((region_rtt_threshold_ms() - 40.0).abs() < 1e-12);
    }
}
