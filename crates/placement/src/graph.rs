//! Component interaction graphs and placement problems.
//!
//! The paper hand-derives its deployments; §5 and §7 argue that containers
//! should wire the patterns automatically from declarative information. This
//! module provides the data model an automatic deployer needs: components
//! with pinning/replication attributes, weighted interaction edges (call
//! rates and payload sizes), hosts with entry shares, and a wide-area cost
//! model over candidate placements.

use std::collections::BTreeSet;

use petgraph::graph::{DiGraph, NodeIndex};
use serde::{Deserialize, Serialize};

/// Identifies a host in a [`PlacementProblem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct HostId(pub usize);

impl std::fmt::Display for HostId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "h{}", self.0)
    }
}

/// A candidate host.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Host {
    /// Host name ("main", "edge1", …).
    pub name: String,
    /// Fraction of client traffic entering at this host (entry components
    /// are implicitly instantiated wherever this is positive).
    pub entry_share: f64,
    /// CPU capacity in milliseconds of service per second (`f64::INFINITY`
    /// to ignore).
    pub cpu_capacity: f64,
}

/// The role of a component in placement decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Role {
    /// Client-facing entry tier: implicitly present at every entry host.
    Entry,
    /// Per-client conversational state: freely movable and instantiable per
    /// server (never shared, so "replication" is free).
    Session,
    /// Stateless service/façade: freely movable and replicable.
    Stateless,
    /// Shared read-mostly state: one read-write primary, read-only replicas
    /// allowed at a consistency (push) cost.
    Entity,
    /// Pinned authoritative state that must not be replicated: the database
    /// itself, and security- or transaction-critical entities (the paper
    /// keeps `SignOn`, `Order`, `Account` strictly at the main server).
    Database,
}

impl Role {
    /// Whether read-only replicas of this role are meaningful.
    pub fn replicable(self) -> bool {
        matches!(self, Role::Session | Role::Stateless | Role::Entity)
    }
}

/// A component vertex.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Component {
    /// Component name.
    pub name: String,
    /// Placement role.
    pub role: Role,
    /// Primary pinned to a host (`Database` components must be pinned).
    pub pinned: Option<HostId>,
    /// CPU demand in milliseconds per invocation (capacity accounting).
    pub cpu_ms_per_call: f64,
    /// Writes per second against this component's state (drives the
    /// replication consistency cost).
    pub write_rate: f64,
}

/// A weighted interaction edge (caller → callee).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Interaction {
    /// Invocations per second (aggregated over the whole workload).
    pub calls_per_sec: f64,
    /// Mean payload per call (arguments + results), bytes.
    pub bytes_per_call: f64,
    /// Write-path traffic: always executes against the endpoints'
    /// *primaries* (read-only replicas never absorb writes).
    pub write_path: bool,
}

/// The component interaction graph.
#[derive(Debug, Clone, Default)]
pub struct ComponentGraph {
    /// The underlying petgraph structure.
    pub graph: DiGraph<Component, Interaction>,
}

impl ComponentGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a component.
    pub fn add(&mut self, component: Component) -> NodeIndex {
        self.graph.add_node(component)
    }

    /// Adds (or accumulates onto) a read-path interaction edge.
    pub fn interact(
        &mut self,
        from: NodeIndex,
        to: NodeIndex,
        calls_per_sec: f64,
        bytes_per_call: f64,
    ) {
        self.interact_kind(from, to, calls_per_sec, bytes_per_call, false);
    }

    /// Adds (or accumulates onto) a write-path interaction edge.
    pub fn interact_write(
        &mut self,
        from: NodeIndex,
        to: NodeIndex,
        calls_per_sec: f64,
        bytes_per_call: f64,
    ) {
        self.interact_kind(from, to, calls_per_sec, bytes_per_call, true);
    }

    fn interact_kind(
        &mut self,
        from: NodeIndex,
        to: NodeIndex,
        calls_per_sec: f64,
        bytes_per_call: f64,
        write_path: bool,
    ) {
        let existing = self
            .graph
            .edges_connecting(from, to)
            .find(|e| e.weight().write_path == write_path)
            .map(|e| e.id());
        if let Some(edge) = existing {
            let w = self.graph.edge_weight_mut(edge).expect("edge exists");
            let total = w.calls_per_sec + calls_per_sec;
            if total > 0.0 {
                w.bytes_per_call =
                    (w.bytes_per_call * w.calls_per_sec + bytes_per_call * calls_per_sec) / total;
            }
            w.calls_per_sec = total;
        } else {
            self.graph.add_edge(
                from,
                to,
                Interaction {
                    calls_per_sec,
                    bytes_per_call,
                    write_path,
                },
            );
        }
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.graph.node_count()
    }

    /// `true` when the graph has no components.
    pub fn is_empty(&self) -> bool {
        self.graph.node_count() == 0
    }

    /// Looks a component up by name.
    pub fn by_name(&self, name: &str) -> Option<NodeIndex> {
        self.graph
            .node_indices()
            .find(|&i| self.graph[i].name == name)
    }

    /// Aggregate invocation rate into `node` (reads, roughly).
    pub fn read_rate(&self, node: NodeIndex) -> f64 {
        self.graph
            .edges_directed(node, petgraph::Direction::Incoming)
            .map(|e| e.weight().calls_per_sec)
            .sum()
    }
}

/// A complete placement problem.
#[derive(Debug, Clone)]
pub struct PlacementProblem {
    /// Candidate hosts.
    pub hosts: Vec<Host>,
    /// Symmetric round-trip times between hosts, milliseconds.
    pub rtt_ms: Vec<Vec<f64>>,
    /// The interaction graph.
    pub graph: ComponentGraph,
    /// Cost model parameters.
    pub params: CostParams,
}

/// Wide-area communication cost parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CostParams {
    /// Mean round trips per remote invocation (RMI chattiness; the paper's
    /// stacks measure ≈1.65 and ≈1.35).
    pub rmi_round_trips: f64,
    /// Mean round trips per consistency push to one replica.
    pub push_round_trips: f64,
    /// Bytes pushed per write per replica.
    pub push_bytes: f64,
    /// Link bandwidth, bits per second.
    pub bandwidth_bps: f64,
    /// Penalty (ms/s) per unit of CPU overload beyond a host's capacity.
    pub overload_penalty: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            rmi_round_trips: 1.65,
            push_round_trips: 1.65,
            push_bytes: 400.0,
            bandwidth_bps: 100e6,
            overload_penalty: 10_000.0,
        }
    }
}

impl PlacementProblem {
    /// Validates basic consistency.
    ///
    /// # Errors
    ///
    /// Returns a message when the host matrix is malformed, a pinned
    /// component references an unknown host, or a database component is not
    /// pinned.
    pub fn validate(&self) -> Result<(), String> {
        if self.hosts.is_empty() {
            return Err("no hosts".into());
        }
        if self.rtt_ms.len() != self.hosts.len()
            || self.rtt_ms.iter().any(|row| row.len() != self.hosts.len())
        {
            return Err("rtt matrix shape mismatch".into());
        }
        for (i, row) in self.rtt_ms.iter().enumerate() {
            if row[i] != 0.0 {
                return Err(format!("rtt[{i}][{i}] must be zero"));
            }
        }
        for node in self.graph.graph.node_indices() {
            let c = &self.graph.graph[node];
            if let Some(HostId(h)) = c.pinned {
                if h >= self.hosts.len() {
                    return Err(format!("component {} pinned to unknown host", c.name));
                }
            }
            if c.role == Role::Database && c.pinned.is_none() {
                return Err(format!("database component {} must be pinned", c.name));
            }
        }
        let share: f64 = self.hosts.iter().map(|h| h.entry_share).sum();
        if (share - 1.0).abs() > 1e-6 {
            return Err(format!("entry shares sum to {share}, expected 1"));
        }
        Ok(())
    }

    /// The communication cost (ms) of one remote interaction of `bytes`.
    pub fn comm_ms(&self, a: HostId, b: HostId, bytes: f64, round_trips: f64) -> f64 {
        if a == b {
            return 0.0;
        }
        self.rtt_ms[a.0][b.0] * round_trips + bytes * 8.0 / self.params.bandwidth_bps * 1_000.0
    }

    /// Hosts with positive entry share.
    pub fn entry_hosts(&self) -> Vec<HostId> {
        self.hosts
            .iter()
            .enumerate()
            .filter(|(_, h)| h.entry_share > 0.0)
            .map(|(i, _)| HostId(i))
            .collect()
    }
}

/// A candidate deployment: a primary host per component and optional
/// read-only replica sets, indexed by `NodeIndex`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    /// Primary host per component (node-index order).
    pub primary: Vec<HostId>,
    /// Replica hosts per component (excluding the primary).
    pub replicas: Vec<BTreeSet<HostId>>,
}

impl Placement {
    /// Places every component on `host` with no replicas.
    pub fn all_on(problem: &PlacementProblem, host: HostId) -> Placement {
        let n = problem.graph.len();
        let mut p = Placement {
            primary: vec![host; n],
            replicas: vec![BTreeSet::new(); n],
        };
        p.repair_pins(problem);
        p
    }

    /// Forces pinned components back onto their pinned hosts.
    pub fn repair_pins(&mut self, problem: &PlacementProblem) {
        for node in problem.graph.graph.node_indices() {
            if let Some(host) = problem.graph.graph[node].pinned {
                self.primary[node.index()] = host;
                self.replicas[node.index()].remove(&host);
            }
        }
    }

    /// The serving location of `node` for traffic originating at `origin`:
    /// entry components follow the origin; replicated components serve from
    /// a co-located replica when one exists.
    pub fn location(&self, problem: &PlacementProblem, node: NodeIndex, origin: HostId) -> HostId {
        let c = &problem.graph.graph[node];
        if c.role == Role::Entry {
            return origin;
        }
        let idx = node.index();
        if self.primary[idx] == origin || self.replicas[idx].contains(&origin) {
            origin
        } else {
            self.primary[idx]
        }
    }

    /// Whether the placement respects every pin.
    pub fn respects_pins(&self, problem: &PlacementProblem) -> bool {
        problem.graph.graph.node_indices().all(|node| {
            problem.graph.graph[node]
                .pinned
                .is_none_or(|h| self.primary[node.index()] == h)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (PlacementProblem, NodeIndex, NodeIndex, NodeIndex) {
        let mut g = ComponentGraph::new();
        let web = g.add(Component {
            name: "web".into(),
            role: Role::Entry,
            pinned: None,
            cpu_ms_per_call: 5.0,
            write_rate: 0.0,
        });
        let svc = g.add(Component {
            name: "svc".into(),
            role: Role::Stateless,
            pinned: None,
            cpu_ms_per_call: 2.0,
            write_rate: 0.0,
        });
        let db = g.add(Component {
            name: "db".into(),
            role: Role::Database,
            pinned: Some(HostId(0)),
            cpu_ms_per_call: 1.0,
            write_rate: 0.0,
        });
        g.interact(web, svc, 10.0, 500.0);
        g.interact(svc, db, 10.0, 300.0);
        let problem = PlacementProblem {
            hosts: vec![
                Host {
                    name: "main".into(),
                    entry_share: 0.4,
                    cpu_capacity: f64::INFINITY,
                },
                Host {
                    name: "edge".into(),
                    entry_share: 0.6,
                    cpu_capacity: f64::INFINITY,
                },
            ],
            rtt_ms: vec![vec![0.0, 200.0], vec![200.0, 0.0]],
            graph: g,
            params: CostParams::default(),
        };
        (problem, web, svc, db)
    }

    #[test]
    fn validation_passes_and_catches_errors() {
        let (mut p, _, _, db) = tiny();
        assert!(p.validate().is_ok());
        p.graph.graph[db].pinned = None;
        assert!(p.validate().unwrap_err().contains("pinned"));
        p.graph.graph[db].pinned = Some(HostId(9));
        assert!(p.validate().unwrap_err().contains("unknown host"));
    }

    #[test]
    fn interactions_accumulate() {
        let (p, web, svc, _) = tiny();
        let mut g = p.graph.clone();
        g.interact(web, svc, 10.0, 100.0);
        let e = g.graph.find_edge(web, svc).unwrap();
        let w = g.graph[e];
        assert!((w.calls_per_sec - 20.0).abs() < 1e-9);
        assert!((w.bytes_per_call - 300.0).abs() < 1e-9);
        assert!((g.read_rate(svc) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn locations_respect_entry_and_replicas() {
        let (p, web, svc, db) = tiny();
        let mut placement = Placement::all_on(&p, HostId(0));
        // Entry follows the origin.
        assert_eq!(placement.location(&p, web, HostId(1)), HostId(1));
        // Unreplicated service serves from its primary.
        assert_eq!(placement.location(&p, svc, HostId(1)), HostId(0));
        // A replica at the edge serves edge traffic locally.
        placement.replicas[svc.index()].insert(HostId(1));
        assert_eq!(placement.location(&p, svc, HostId(1)), HostId(1));
        assert_eq!(placement.location(&p, svc, HostId(0)), HostId(0));
        // Database pinned.
        assert_eq!(placement.location(&p, db, HostId(1)), HostId(0));
        assert!(placement.respects_pins(&p));
    }

    #[test]
    fn comm_cost_is_zero_locally() {
        let (p, ..) = tiny();
        assert_eq!(p.comm_ms(HostId(0), HostId(0), 1e6, 2.0), 0.0);
        let remote = p.comm_ms(HostId(0), HostId(1), 12_500.0, 1.65);
        assert!((remote - (330.0 + 1.0)).abs() < 0.1, "{remote}");
    }

    #[test]
    fn repair_pins_moves_database_back() {
        let (p, _, _, db) = tiny();
        let mut placement = Placement::all_on(&p, HostId(1));
        assert_eq!(placement.primary[db.index()], HostId(0));
        placement.primary[db.index()] = HostId(1);
        placement.repair_pins(&p);
        assert_eq!(placement.primary[db.index()], HostId(0));
    }
}
