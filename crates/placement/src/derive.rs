//! Deriving placement problems from the application models.
//!
//! Walks every page's call tree, weighted by the paper's workload (30 req/s,
//! 80 % browsers, the Table 2–5 session mixes), and accumulates component
//! interaction rates, payload sizes, write rates and roles. The result is
//! the input an automatic deployer would extract from profiling — the §7
//! "long-term goal" of demand-driven deployment.

use std::collections::{BTreeMap, HashMap};

use mutsvc_apps::petstore::{PsPage, PsParams};
use mutsvc_apps::rubis::{RubisPage, RubisParams};
use mutsvc_apps::{App, PetStore, Rubis};
use mutsvc_middleware::{Action, Call, ComponentId, ComponentKind, ComponentRegistry, PageRequest};
use petgraph::graph::NodeIndex;

use crate::graph::{Component, ComponentGraph, CostParams, Host, HostId, PlacementProblem, Role};

/// The paper's three-server host set: main (with the database and one third
/// of the clients) plus two edges.
pub fn paper_hosts() -> (Vec<Host>, Vec<Vec<f64>>) {
    let hosts = vec![
        Host {
            name: "main".into(),
            entry_share: 1.0 / 3.0,
            cpu_capacity: f64::INFINITY,
        },
        Host {
            name: "edge1".into(),
            entry_share: 1.0 / 3.0,
            cpu_capacity: f64::INFINITY,
        },
        Host {
            name: "edge2".into(),
            entry_share: 1.0 / 3.0,
            cpu_capacity: f64::INFINITY,
        },
    ];
    let rtt = vec![
        vec![0.0, 200.8, 200.8],
        vec![200.8, 0.0, 400.0],
        vec![200.8, 400.0, 0.0],
    ];
    (hosts, rtt)
}

struct Accumulator<'a> {
    registry: &'a ComponentRegistry,
    /// Per component: (invocations/s, Σ bytes, queries/s handled, writes/s,
    /// cpu ms sample). Ordered maps so two derivations of the same app
    /// build bit-identical graphs (node/edge order feeds straight into
    /// float summation order downstream).
    nodes: BTreeMap<ComponentId, NodeStats>,
    /// (caller, callee) -> (calls/s, Σ rate×bytes).
    edges: BTreeMap<(ComponentId, ComponentId, bool), (f64, f64)>,
}

#[derive(Default)]
struct NodeStats {
    cpu_ms: f64,
    write_rate: f64,
    /// Rate of *uncacheable* database reads this component performs — keeps
    /// the component attracted to the database host.
    db_read_rate: f64,
    /// Rate of database writes (always executed at the primary).
    db_write_rate: f64,
}

impl<'a> Accumulator<'a> {
    fn new(registry: &'a ComponentRegistry) -> Self {
        Accumulator {
            registry,
            nodes: BTreeMap::new(),
            edges: BTreeMap::new(),
        }
    }

    fn walk_page(&mut self, page: &PageRequest, rate: f64) {
        self.walk_call(&page.root, rate);
    }

    fn walk_call(&mut self, call: &Call, rate: f64) {
        let stats = self.nodes.entry(call.component).or_default();
        stats.cpu_ms = stats.cpu_ms.max(call.cpu.as_millis_f64());
        for action in &call.actions {
            match action {
                Action::Invoke(invoke) => {
                    let write = invoke.call.has_writes();
                    let key = (call.component, invoke.call.component, write);
                    let e = self.edges.entry(key).or_insert((0.0, 0.0));
                    e.0 += rate;
                    e.1 += rate * (invoke.args_bytes + invoke.ret_bytes) as f64;
                    self.walk_call(&invoke.call, rate);
                }
                Action::Query(qa) => {
                    let stats = self.nodes.entry(call.component).or_default();
                    // Cacheable (tagged) queries and entity PK loads become
                    // local once replicated; only untagged finder queries on
                    // non-entity components chain the component to the data.
                    let is_entity =
                        self.registry.spec(call.component).kind == ComponentKind::Entity;
                    if qa.tag.is_none() && !is_entity {
                        stats.db_read_rate += rate;
                    }
                }
                Action::Mutate(_) => {
                    let stats = self.nodes.entry(call.component).or_default();
                    stats.write_rate += rate;
                    stats.db_write_rate += rate;
                }
            }
        }
    }

    fn into_problem(
        self,
        rmi_round_trips: f64,
        pinned_main: &[ComponentId],
        db_name: &str,
    ) -> PlacementProblem {
        let (hosts, rtt_ms) = paper_hosts();
        let mut graph = ComponentGraph::new();
        let mut index: HashMap<ComponentId, NodeIndex> = HashMap::new();

        // The database pseudo-component, pinned to main.
        let db_node = graph.add(Component {
            name: db_name.to_string(),
            role: Role::Database,
            pinned: Some(HostId(0)),
            cpu_ms_per_call: 2.0,
            write_rate: 0.0,
        });

        for (&component, stats) in &self.nodes {
            let spec = self.registry.spec(component);
            let role = if pinned_main.contains(&component) {
                Role::Database
            } else {
                match spec.kind {
                    ComponentKind::Web => Role::Entry,
                    ComponentKind::StatefulSession => Role::Session,
                    ComponentKind::StatelessSession | ComponentKind::MessageDriven => {
                        Role::Stateless
                    }
                    ComponentKind::Entity => Role::Entity,
                }
            };
            let pinned = if role == Role::Database {
                Some(HostId(0))
            } else {
                None
            };
            let node = graph.add(Component {
                name: spec.name.clone(),
                role,
                pinned,
                cpu_ms_per_call: stats.cpu_ms.max(0.1),
                write_rate: stats.write_rate,
            });
            index.insert(component, node);
        }
        for ((from, to, write), (rate, weighted_bytes)) in self.edges {
            let (Some(&f), Some(&t)) = (index.get(&from), index.get(&to)) else {
                continue;
            };
            let bytes = if rate > 0.0 {
                weighted_bytes / rate
            } else {
                0.0
            };
            if write {
                graph.interact_write(f, t, rate, bytes);
            } else {
                graph.interact(f, t, rate, bytes);
            }
        }
        // Chain components with uncacheable database work to the database.
        for (&component, stats) in &self.nodes {
            let node = index[&component];
            if stats.db_read_rate > 0.0 {
                graph.interact(node, db_node, stats.db_read_rate, 400.0);
            }
            if stats.db_write_rate > 0.0 {
                graph.interact_write(node, db_node, stats.db_write_rate, 400.0);
            }
        }

        PlacementProblem {
            hosts,
            rtt_ms,
            graph,
            params: CostParams {
                rmi_round_trips,
                push_round_trips: rmi_round_trips,
                ..Default::default()
            },
        }
    }
}

/// Workload rates per page (requests/second over the whole system).
fn petstore_page_rates() -> Vec<(PsPage, f64)> {
    let browser_total = 24.0;
    let buyer_total = 6.0;
    let mut rates: Vec<(PsPage, f64)> = mutsvc_apps::petstore::BROWSER_MIX
        .iter()
        .map(|&(page, pct)| (page, browser_total * pct / 100.0))
        .collect();
    let per_step = buyer_total / mutsvc_apps::petstore::BUYER_SEQUENCE.len() as f64;
    for page in mutsvc_apps::petstore::BUYER_SEQUENCE {
        rates.push((page, per_step));
    }
    rates
}

/// Derives the Pet Store placement problem from the façade application under
/// the paper's load.
pub fn petstore_problem() -> (PlacementProblem, PetStore) {
    let (app, registry, _db) = App::petstore(true);
    let App::PetStore(ps) = app else {
        unreachable!()
    };
    let mut acc = Accumulator::new(&registry);
    let product = ps.shape.products(0)[0];
    let params = PsParams {
        category: ps.shape.categories[0],
        product,
        item: ps.shape.items(product)[0],
        keyword: 0,
        account: ps.shape.accounts[0],
    };
    for (page, rate) in petstore_page_rates() {
        let request = ps.page(page, &params);
        acc.walk_page(&request, rate);
    }
    // Security/transaction-critical entities stay at the main server
    // (the paper never replicates SignOn, Order or Account).
    let pinned = vec![
        ps.components.signon,
        ps.components.order,
        ps.components.account,
    ];
    let problem = acc.into_problem(1.65, &pinned, "oracle");
    (problem, ps)
}

/// Workload rates per RUBiS page.
fn rubis_page_rates() -> Vec<(RubisPage, f64)> {
    let browser_total = 24.0;
    let bidder_total = 6.0;
    let mut rates: Vec<(RubisPage, f64)> = mutsvc_apps::rubis::BROWSER_MIX
        .iter()
        .map(|&(page, pct)| (page, browser_total * pct / 100.0))
        .collect();
    let per_step = bidder_total / mutsvc_apps::rubis::BIDDER_SEQUENCE.len() as f64;
    for page in mutsvc_apps::rubis::BIDDER_SEQUENCE {
        rates.push((page, per_step));
    }
    rates
}

/// Derives the RUBiS placement problem under the paper's load.
pub fn rubis_problem() -> (PlacementProblem, Rubis) {
    let (app, registry, _db) = App::rubis();
    let App::Rubis(rubis) = app else {
        unreachable!()
    };
    let mut acc = Accumulator::new(&registry);
    let params = RubisParams {
        category: rubis.shape.categories[0],
        region: rubis.shape.regions[0],
        item: rubis.shape.items[0],
        target_user: rubis.shape.users[0],
        user: rubis.shape.users[1],
    };
    for (page, rate) in rubis_page_rates() {
        let request = rubis.page(page, &params);
        acc.walk_page(&request, rate);
    }
    // Bid and comment entities are append-heavy write logs: authoritative.
    let pinned = vec![rubis.components.bid, rubis.components.comment];
    let problem = acc.into_problem(1.35, &pinned, "mysql");
    (problem, rubis)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::greedy::{solve, GreedyOptions};
    use crate::cost::cost;
    use crate::graph::Placement;

    #[test]
    fn petstore_problem_is_valid_and_nonempty() {
        let (p, ps) = petstore_problem();
        p.validate().unwrap();
        assert!(p.graph.len() >= 10, "components: {}", p.graph.len());
        // The commit path produces writes on the inventory entity.
        let inv = p.graph.by_name("InventoryEJB").unwrap();
        assert!(p.graph.graph[inv].write_rate > 0.0);
        let _ = ps;
    }

    #[test]
    fn rubis_problem_is_valid() {
        let (p, _) = rubis_problem();
        p.validate().unwrap();
        let item = p.graph.by_name("ItemEJB").unwrap();
        assert!(p.graph.graph[item].write_rate > 0.0, "bids update items");
        let user = p.graph.by_name("UserEJB").unwrap();
        assert_eq!(p.graph.graph[user].role, Role::Entity);
    }

    /// The headline validation: optimizing the derived Pet Store graph
    /// *recovers the paper's final deployment* — session tier and catalog
    /// entities replicated at the edges, authoritative state at main.
    #[test]
    fn optimizer_recovers_the_papers_petstore_deployment() {
        let (p, ps) = petstore_problem();
        let (placement, c) = solve(&p, &GreedyOptions::default());
        assert!(
            c < cost(&p, &Placement::all_on(&p, HostId(0))),
            "optimization helps"
        );

        let at_edges = |name: &str| -> bool {
            let node = p.graph.by_name(name).unwrap();
            let idx = node.index();
            [HostId(1), HostId(2)]
                .iter()
                .all(|h| placement.primary[idx] == *h || placement.replicas[idx].contains(h))
        };
        // The paper's §4.3–§4.5 deployment:
        assert!(
            at_edges("ShoppingCart"),
            "stateful session beans on the edges"
        );
        assert!(at_edges("ShoppingClientController"));
        assert!(at_edges("Catalog"), "catalog facade on the edges");
        assert!(at_edges("ItemEJB"), "read-only item replicas");
        assert!(at_edges("InventoryEJB"), "read-only inventory replicas");
        // Authoritative state stays home.
        for name in ["SignOnEJB", "OrderEJB", "AccountEJB", "oracle"] {
            let node = p.graph.by_name(name).unwrap();
            assert_eq!(placement.primary[node.index()], HostId(0), "{name} at main");
            assert!(
                placement.replicas[node.index()].is_empty(),
                "{name} unreplicated"
            );
        }
        let _ = ps;
    }

    #[test]
    fn optimizer_recovers_the_papers_rubis_deployment() {
        let (p, rubis) = rubis_problem();
        let (placement, _) = solve(&p, &GreedyOptions::default());
        let at_edges = |name: &str| -> bool {
            let node = p.graph.by_name(name).unwrap();
            let idx = node.index();
            [HostId(1), HostId(2)]
                .iter()
                .all(|h| placement.primary[idx] == *h || placement.replicas[idx].contains(h))
        };
        assert!(at_edges("SB_ViewItem"), "read facades on the edges");
        assert!(at_edges("ItemEJB"), "read-only item replicas");
        assert!(at_edges("UserEJB"), "read-only user replicas");
        // Bid/Comment rows are written through the store façades and read
        // through cached finder queries, so they never appear as entity
        // vertices; the database itself stays pinned and unreplicated.
        let node = p.graph.by_name("mysql").unwrap();
        assert_eq!(placement.primary[node.index()], HostId(0), "mysql at main");
        assert!(placement.replicas[node.index()].is_empty());
        // Write facades are pulled toward the database by their write edges.
        let store_bid = p.graph.by_name("SB_StoreBid").unwrap();
        assert_eq!(placement.primary[store_bid.index()], HostId(0));
        let _ = rubis;
    }
}
