//! Placement cost evaluation.
//!
//! The objective is the expected **wide-area communication time incurred per
//! second of operation** (ms/s): every node-crossing interaction pays RMI
//! round trips plus transmission, every write to a replicated component pays
//! one consistency push per replica, and CPU overload beyond a host's
//! capacity is penalized. Minimizing this objective over placements is the
//! formal version of the paper's design rules: co-locate chatty components
//! (façade granularity), replicate read-mostly state at the edges, keep
//! writers next to the database.

use crate::graph::{HostId, Placement, PlacementProblem, Role};

pub mod incremental;

/// A cost breakdown for reporting and debugging.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostBreakdown {
    /// Remote invocation cost (ms/s).
    pub communication: f64,
    /// Replica consistency push cost (ms/s).
    pub consistency: f64,
    /// Capacity overload penalty (ms/s).
    pub overload: f64,
}

impl CostBreakdown {
    /// The scalar objective.
    pub fn total(&self) -> f64 {
        self.communication + self.consistency + self.overload
    }
}

/// Evaluates a placement. Lower is better.
pub fn cost(problem: &PlacementProblem, placement: &Placement) -> f64 {
    cost_breakdown(problem, placement).total()
}

/// Evaluates a placement with a per-term breakdown.
pub fn cost_breakdown(problem: &PlacementProblem, placement: &Placement) -> CostBreakdown {
    let g = &problem.graph.graph;
    let mut breakdown = CostBreakdown::default();

    // Interaction cost: traffic splits across entry hosts by share; each
    // interaction executes between the serving locations of its endpoints.
    for (oi, host) in problem.hosts.iter().enumerate() {
        if host.entry_share <= 0.0 {
            continue;
        }
        let origin = HostId(oi);
        for edge in g.edge_references() {
            let w = edge.weight();
            if w.calls_per_sec <= 0.0 {
                continue;
            }
            // Write-path traffic executes at the primaries (replicas are
            // read-only); read-path traffic follows the serving locations.
            let (from, to) = if w.write_path {
                let from = if g[edge.source()].role == Role::Entry {
                    origin
                } else {
                    placement.primary[edge.source().index()]
                };
                (from, placement.primary[edge.target().index()])
            } else {
                (
                    placement.location(problem, edge.source(), origin),
                    placement.location(problem, edge.target(), origin),
                )
            };
            breakdown.communication += host.entry_share
                * w.calls_per_sec
                * problem.comm_ms(from, to, w.bytes_per_call, problem.params.rmi_round_trips);
        }
    }

    // Consistency cost: each write pushes to every replica.
    for node in g.node_indices() {
        let c = &g[node];
        if c.write_rate <= 0.0 {
            continue;
        }
        let primary = placement.primary[node.index()];
        for &replica in &placement.replicas[node.index()] {
            breakdown.consistency += c.write_rate
                * problem.comm_ms(
                    primary,
                    replica,
                    problem.params.push_bytes,
                    problem.params.push_round_trips,
                );
        }
    }

    // Capacity: aggregate CPU demand per host (entry components load every
    // entry host by share; replicas serve their origin's traffic).
    let mut load = vec![0.0f64; problem.hosts.len()];
    for (oi, host) in problem.hosts.iter().enumerate() {
        if host.entry_share <= 0.0 {
            continue;
        }
        let origin = HostId(oi);
        for node in g.node_indices() {
            let c = &g[node];
            let rate = match c.role {
                Role::Entry => {
                    // Entry components are driven directly by clients.
                    problem.graph.read_rate(node).max(
                        g.edges_directed(node, petgraph::Direction::Outgoing)
                            .map(|e| e.weight().calls_per_sec)
                            .sum(),
                    )
                }
                _ => problem.graph.read_rate(node),
            };
            let serving = placement.location(problem, node, origin);
            load[serving.0] += host.entry_share * rate * c.cpu_ms_per_call;
        }
    }
    for (h, l) in load.iter().enumerate() {
        let over = l - problem.hosts[h].cpu_capacity.max(0.0);
        if over > 0.0 && problem.hosts[h].cpu_capacity.is_finite() {
            breakdown.overload += over * problem.params.overload_penalty / 1_000.0;
        }
    }

    breakdown
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Component, ComponentGraph, CostParams, Host};

    fn problem() -> PlacementProblem {
        let mut g = ComponentGraph::new();
        let web = g.add(Component {
            name: "web".into(),
            role: Role::Entry,
            pinned: None,
            cpu_ms_per_call: 5.0,
            write_rate: 0.0,
        });
        let entity = g.add(Component {
            name: "entity".into(),
            role: Role::Entity,
            pinned: None,
            cpu_ms_per_call: 1.0,
            write_rate: 0.5,
        });
        let db = g.add(Component {
            name: "db".into(),
            role: Role::Database,
            pinned: Some(HostId(0)),
            cpu_ms_per_call: 1.0,
            write_rate: 0.0,
        });
        g.interact(web, entity, 10.0, 0.0);
        g.interact(entity, db, 10.0, 0.0);
        PlacementProblem {
            hosts: vec![
                Host {
                    name: "main".into(),
                    entry_share: 0.5,
                    cpu_capacity: f64::INFINITY,
                },
                Host {
                    name: "edge".into(),
                    entry_share: 0.5,
                    cpu_capacity: f64::INFINITY,
                },
            ],
            rtt_ms: vec![vec![0.0, 200.0], vec![200.0, 0.0]],
            graph: g,
            params: CostParams {
                push_bytes: 0.0,
                ..Default::default()
            },
        }
    }

    #[test]
    fn centralized_pays_for_remote_entry_traffic() {
        let p = problem();
        let placement = Placement::all_on(&p, HostId(0));
        let b = cost_breakdown(&p, &placement);
        // Edge-origin traffic (share 0.5, 10 calls/s) crosses web->entity:
        // 0.5 * 10 * 200ms * 1.65 = 1650 ms/s.
        assert!((b.communication - 1650.0).abs() < 1.0, "{b:?}");
        assert_eq!(b.consistency, 0.0);
    }

    #[test]
    fn replication_trades_reads_for_pushes() {
        let p = problem();
        let entity = p.graph.by_name("entity").unwrap();
        let mut placement = Placement::all_on(&p, HostId(0));
        placement.replicas[entity.index()].insert(HostId(1));
        let b = cost_breakdown(&p, &placement);
        // Reads now local everywhere, but entity->db from the edge replica
        // crosses back… location(entity, edge)=edge, db=main: 0.5*10*330.
        assert!((b.communication - 1650.0).abs() < 1.0, "{b:?}");
        // Plus pushes: 0.5 writes/s * 330ms.
        assert!((b.consistency - 165.0).abs() < 1.0, "{b:?}");
    }

    #[test]
    fn full_colocated_edge_stack_minimizes_reads() {
        // Replicating the entity AND keeping its db access at the primary is
        // the read-mostly pattern; here the db edge dominates unless the
        // entity stays with the db — the cost model must expose that tension.
        let p = problem();
        let entity = p.graph.by_name("entity").unwrap();
        let replicated = {
            let mut pl = Placement::all_on(&p, HostId(0));
            pl.replicas[entity.index()].insert(HostId(1));
            cost(&p, &pl)
        };
        let centralized = cost(&p, &Placement::all_on(&p, HostId(0)));
        // With the db edge still crossing, replication alone does not help
        // here (it wins once the entity caches instead of re-reading the db;
        // derive.rs models that by dropping per-read db edges for entities).
        assert!(replicated >= centralized - 1e-9);
    }

    #[test]
    fn overload_penalty_applies_beyond_capacity() {
        let mut p = problem();
        p.hosts[0].cpu_capacity = 10.0; // ms/s — absurdly small
        let placement = Placement::all_on(&p, HostId(0));
        let b = cost_breakdown(&p, &placement);
        assert!(b.overload > 0.0);
        p.hosts[0].cpu_capacity = f64::INFINITY;
        let b = cost_breakdown(&p, &placement);
        assert_eq!(b.overload, 0.0);
    }
}
