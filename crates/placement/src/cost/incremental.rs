//! Incremental (delta) placement cost evaluation.
//!
//! [`cost_breakdown`](crate::cost::cost_breakdown) re-walks the whole
//! interaction graph — `O(hosts × edges + hosts × nodes)` with petgraph
//! iteration overhead and a fresh `load` allocation — yet every move a
//! search algorithm tries changes the placement of exactly *one* component.
//! [`CostEvaluator`] exploits that: it flattens the graph once into
//! cache-friendly CSR-style arrays (per-node incident edge lists), keeps the
//! per-host CPU load and the three [`CostBreakdown`] terms as live state,
//! and re-evaluates only the terms a move can touch: the edges incident to
//! the moved component, that component's consistency pushes, and its load
//! contributions. A single-component move therefore costs
//! `O(degree(node) × entry_hosts + hosts)` instead of a whole-graph sweep.
//!
//! Communication is priced against **one shared all-pairs distance matrix**
//! per topology (`hosts²` floats, see
//! [`shared_distances`]) combined with two scalar weights per edge
//! (`calls/s × round_trips` and `calls/s × bytes × serialization ms`):
//! `cost(e, a, b) = w_rtt[e]·dist[a][b] + w_fixed[e]` for `a ≠ b`. Earlier
//! revisions materialized a dense host×host table *per edge*
//! (`O(edges × hosts²)` floats), which was fine for the paper's 3-server
//! star but is ~21 MB for a 256-host multi-tier graph; the shared matrix
//! brings construction and memory to `O(hosts² + edges)` while pricing
//! multi-hop WAN paths identically (the matrix rows come from
//! latency-shortest routes when the problem is derived from a
//! [`Topology`](mutsvc_netsim::Topology) — see [`crate::wan`]).
//!
//! Every [`apply`](CostEvaluator::apply) is reversible via
//! [`undo`](CostEvaluator::undo) (the evaluator keeps a full undo stack), so
//! search loops probe candidate moves without ever cloning a [`Placement`].
//! The three running cost terms use Kahan-compensated summation so that
//! millions of `apply`/`undo` deltas stay within `1e-9` of a from-scratch
//! [`cost_breakdown`](crate::cost::cost_breakdown) — a property test drives
//! exactly that comparison (`tests/incremental_equivalence.rs`).

use std::sync::Arc;

use petgraph::graph::NodeIndex;

use crate::cost::CostBreakdown;
use crate::graph::{HostId, Placement, PlacementProblem, Role};

/// Maximum host count supported by the evaluator. Replica sets are tracked
/// as multi-word host bitmasks copied to the stack during a primary move,
/// so the cap is a compile-time stack budget (64 bytes), not a data-model
/// limit; planet-scale multi-tier graphs (hundreds of edge PoPs) fit with
/// room to spare.
pub const MAX_HOSTS: usize = 512;

/// Words of one replica bitmask at [`MAX_HOSTS`].
const MASK_WORDS_CAP: usize = MAX_HOSTS / 64;

/// A reversible single-component placement mutation — the three move kinds
/// the search algorithms use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Move {
    /// Re-home a component's primary onto `to` (any replica already at `to`
    /// is absorbed, matching the search algorithms' move semantics).
    MovePrimary {
        /// The component to move.
        node: NodeIndex,
        /// The new primary host.
        to: HostId,
    },
    /// Add a read-only replica of `node` at `host`.
    AddReplica {
        /// The component to replicate.
        node: NodeIndex,
        /// The replica host (must not be the current primary).
        host: HostId,
    },
    /// Drop the replica of `node` at `host`.
    DropReplica {
        /// The component whose replica is dropped.
        node: NodeIndex,
        /// The replica host being dropped.
        host: HostId,
    },
}

/// Flattens a problem's host round-trip matrix into the shared distance
/// matrix the evaluator prices against (`dist[a·H + b] = rtt_ms[a][b]`).
///
/// The matrix is behind an [`Arc`] so that parallel searches (multi-start,
/// region-coarsened refinement) and repeated evaluator constructions over
/// the same topology share one allocation: at 256 hosts the matrix is
/// 512 KiB, and it is the only `hosts²`-sized table left in the evaluator.
pub fn shared_distances(problem: &PlacementProblem) -> Arc<[f64]> {
    let h = problem.hosts.len();
    let mut dist = Vec::with_capacity(h * h);
    for row in &problem.rtt_ms {
        assert_eq!(row.len(), h, "rtt matrix shape mismatch");
        dist.extend_from_slice(row);
    }
    dist.into()
}

/// Kahan-compensated running sum: keeps the error of a long +/- delta
/// stream at the last-bit level instead of accumulating linearly.
#[derive(Debug, Clone, Copy, Default)]
struct Kahan {
    sum: f64,
    compensation: f64,
}

impl Kahan {
    fn new(value: f64) -> Self {
        Kahan {
            sum: value,
            compensation: 0.0,
        }
    }

    fn add(&mut self, x: f64) {
        let y = x - self.compensation;
        let t = self.sum + y;
        self.compensation = (t - self.sum) - y;
        self.sum = t;
    }

    fn value(self) -> f64 {
        self.sum
    }
}

/// Undo record for one applied move.
#[derive(Debug, Clone, Copy)]
struct Applied {
    mv: Move,
    /// For `MovePrimary`: the previous primary host.
    prev_primary: u32,
    /// For `MovePrimary`: whether the target host held a replica that the
    /// move absorbed (and undo must restore).
    absorbed_replica: bool,
}

/// Tests bit `bit` of a multi-word mask.
#[inline]
fn mask_test(words: &[u64], bit: usize) -> bool {
    words[bit >> 6] & (1u64 << (bit & 63)) != 0
}

/// Incremental placement cost evaluator.
///
/// Owns a flattened copy of the problem (it does not borrow the
/// [`PlacementProblem`]) plus the live placement and cost state. Build it
/// once per search with [`CostEvaluator::new`], then drive it with
/// [`apply`](CostEvaluator::apply) / [`undo`](CostEvaluator::undo).
#[derive(Debug, Clone)]
pub struct CostEvaluator {
    // ---- immutable flattened problem ----
    hosts: usize,
    /// Words per replica bitmask (`⌈hosts / 64⌉`).
    mask_words: usize,
    /// Entry origins: `(host, entry_share)` for hosts with positive share.
    origins: Vec<(u32, f64)>,
    /// Σ entry shares (≈1.0 for a validated problem) — folds the origin
    /// loop away wherever a delta is origin-independent.
    share_total: f64,
    /// Dense per-host entry share (0.0 for non-entry hosts); the replica
    /// fast path looks a single origin's share up by host index.
    entry_share: Vec<f64>,
    /// Per node: placement role.
    role: Vec<Role>,
    /// Per node: writes/s against the component's state.
    write_rate: Vec<f64>,
    /// Per node: CPU demand (ms/s) an origin of share 1.0 induces at the
    /// node's serving location (`rate × cpu_ms_per_call`).
    load_ms: Vec<f64>,
    /// Edge endpoints (self-loops excluded: their cost is identically 0).
    edge_src: Vec<u32>,
    edge_dst: Vec<u32>,
    edge_write: Vec<bool>,
    /// Per edge: `calls/s × rmi_round_trips` — the weight on `dist[a][b]`.
    edge_w_rtt: Vec<f64>,
    /// Per edge: `calls/s × bytes_per_call × byte_ms` — the distance-free
    /// serialization term paid whenever the endpoints differ.
    edge_w_fixed: Vec<f64>,
    /// Shared host×host round-trip matrix (`dist[a·H + b]`, milliseconds),
    /// one allocation per topology (see [`shared_distances`]).
    dist: Arc<[f64]>,
    /// Share-weighted distance sums: `s_to[a] = Σ_o share(o)·dist[a][o]`
    /// and `s_from[a] = Σ_o share(o)·dist[o][a]` over the entry origins.
    /// They collapse the per-origin loop of every "origin on one side of
    /// the edge" delta to O(1) — crucial once origins number in the
    /// hundreds (on a 256-host graph an uncollapsed MovePrimary walks
    /// ~250 origins per incident edge).
    s_to: Vec<f64>,
    s_from: Vec<f64>,
    /// CSR incidence: edges touching node `n` are
    /// `inc_edge[inc_start[n]..inc_start[n + 1]]`.
    inc_start: Vec<u32>,
    inc_edge: Vec<u32>,
    /// Consistency push weights: `push(a, b) = push_rtt·dist[a][b] +
    /// push_fixed` for `a ≠ b` (replaces the former dense host×host table).
    push_rtt: f64,
    push_fixed: f64,
    /// Per host CPU capacity (ms/s).
    capacity: Vec<f64>,
    /// Overload penalty per ms/s of excess, divided by 1000 (as in
    /// `cost_breakdown`).
    overload_scale: f64,
    // ---- live state ----
    primary: Vec<u32>,
    /// Replica host bitmasks, `mask_words` words per node (bit `h` of the
    /// node's words ⇔ replica at host `h`).
    repl_mask: Vec<u64>,
    /// Mirror of the evaluator state as a [`Placement`] (kept in sync so
    /// searches can snapshot the best placement cheaply).
    placement: Placement,
    /// Per-host CPU load (ms/s).
    load: Vec<f64>,
    communication: Kahan,
    consistency: Kahan,
    /// Running overload penalty, updated by [`bump_load`](Self::bump_load)
    /// whenever a load slot crosses its capacity — `O(slots touched)` per
    /// move instead of an `O(hosts)` sweep before and after every move.
    overload_total: Kahan,
    history: Vec<Applied>,
}

/// Appends the host indices set in a multi-word bitmask.
fn push_mask_hosts(out: &mut Vec<u32>, words: &[u64]) {
    for (w, &bits) in words.iter().enumerate() {
        let mut word = bits;
        while word != 0 {
            out.push(((w << 6) + word.trailing_zeros() as usize) as u32);
            word &= word - 1;
        }
    }
}

impl CostEvaluator {
    /// Builds an evaluator for `problem`, positioned at `placement`.
    ///
    /// # Panics
    ///
    /// Panics if the problem has more than [`MAX_HOSTS`] hosts or the
    /// placement arity does not match the graph.
    pub fn new(problem: &PlacementProblem, placement: Placement) -> CostEvaluator {
        let dist = shared_distances(problem);
        CostEvaluator::with_distances(problem, placement, dist)
    }

    /// Builds an evaluator sharing a pre-flattened distance matrix (from
    /// [`shared_distances`] on the same problem). Parallel multi-start and
    /// the region-coarsened refinement construct many evaluators over one
    /// topology; sharing the `hosts²` matrix keeps that O(edges) each.
    ///
    /// # Panics
    ///
    /// Panics on host-count or placement-arity mismatches, including a
    /// `dist` of the wrong shape.
    pub fn with_distances(
        problem: &PlacementProblem,
        placement: Placement,
        dist: Arc<[f64]>,
    ) -> CostEvaluator {
        let g = &problem.graph.graph;
        let n = g.node_count();
        let h = problem.hosts.len();
        assert!(
            h <= MAX_HOSTS,
            "CostEvaluator supports at most {MAX_HOSTS} hosts, got {h}"
        );
        assert_eq!(dist.len(), h * h, "distance matrix shape mismatch");
        assert_eq!(placement.primary.len(), n, "placement arity mismatch");
        assert_eq!(placement.replicas.len(), n, "placement arity mismatch");

        let origins: Vec<(u32, f64)> = problem
            .hosts
            .iter()
            .enumerate()
            .filter(|(_, host)| host.entry_share > 0.0)
            .map(|(i, host)| (i as u32, host.entry_share))
            .collect();
        let share_total: f64 = origins.iter().map(|&(_, s)| s).sum();

        let mut role = Vec::with_capacity(n);
        let mut write_rate = Vec::with_capacity(n);
        let mut load_ms = Vec::with_capacity(n);
        for node in g.node_indices() {
            let c = &g[node];
            role.push(c.role);
            write_rate.push(c.write_rate);
            let rate = match c.role {
                Role::Entry => problem.graph.read_rate(node).max(
                    g.edges_directed(node, petgraph::Direction::Outgoing)
                        .map(|e| e.weight().calls_per_sec)
                        .sum(),
                ),
                _ => problem.graph.read_rate(node),
            };
            node_checked(node, n);
            load_ms.push(rate * c.cpu_ms_per_call);
        }

        // Flatten edges: keep only those that can ever contribute cost
        // (positive call rate, distinct endpoints), exactly the set
        // `cost_breakdown` does not skip. Each edge carries two scalars —
        // the distance weight and the fixed serialization term — instead of
        // a host×host table.
        let byte_ms = 8.0 / problem.params.bandwidth_bps * 1_000.0;
        let mut edge_src = Vec::new();
        let mut edge_dst = Vec::new();
        let mut edge_write = Vec::new();
        let mut edge_w_rtt = Vec::new();
        let mut edge_w_fixed = Vec::new();
        for edge in g.edge_references() {
            let w = edge.weight();
            if w.calls_per_sec <= 0.0 || edge.source() == edge.target() {
                continue;
            }
            edge_src.push(edge.source().index() as u32);
            edge_dst.push(edge.target().index() as u32);
            edge_write.push(w.write_path);
            edge_w_rtt.push(w.calls_per_sec * problem.params.rmi_round_trips);
            edge_w_fixed.push(w.calls_per_sec * w.bytes_per_call * byte_ms);
        }

        // CSR incidence lists (each edge listed under both endpoints).
        let e = edge_src.len();
        let mut degree = vec![0u32; n];
        for i in 0..e {
            degree[edge_src[i] as usize] += 1;
            degree[edge_dst[i] as usize] += 1;
        }
        let mut inc_start = vec![0u32; n + 1];
        for i in 0..n {
            inc_start[i + 1] = inc_start[i] + degree[i];
        }
        let mut cursor = inc_start.clone();
        let mut inc_edge = vec![0u32; inc_start[n] as usize];
        for i in 0..e {
            for endpoint in [edge_src[i] as usize, edge_dst[i] as usize] {
                inc_edge[cursor[endpoint] as usize] = i as u32;
                cursor[endpoint] += 1;
            }
        }

        let mut s_to = vec![0.0; h];
        let mut s_from = vec![0.0; h];
        for a in 0..h {
            let mut to_sum = 0.0;
            let mut from_sum = 0.0;
            for &(o, share) in &origins {
                to_sum += share * dist[a * h + o as usize];
                from_sum += share * dist[o as usize * h + a];
            }
            s_to[a] = to_sum;
            s_from[a] = from_sum;
        }

        let mask_words = h.div_ceil(64);
        let primary: Vec<u32> = placement.primary.iter().map(|p| p.0 as u32).collect();
        let mut repl_mask = vec![0u64; n * mask_words];
        for (i, replicas) in placement.replicas.iter().enumerate() {
            for r in replicas {
                assert!(r.0 < h, "replica on unknown host {r}");
                repl_mask[i * mask_words + (r.0 >> 6)] |= 1u64 << (r.0 & 63);
            }
        }

        let entry_share = problem.hosts.iter().map(|host| host.entry_share).collect();
        let mut evaluator = CostEvaluator {
            hosts: h,
            mask_words,
            origins,
            share_total,
            entry_share,
            role,
            write_rate,
            load_ms,
            edge_src,
            edge_dst,
            edge_write,
            edge_w_rtt,
            edge_w_fixed,
            dist,
            s_to,
            s_from,
            inc_start,
            inc_edge,
            push_rtt: problem.params.push_round_trips,
            push_fixed: problem.params.push_bytes * byte_ms,
            capacity: problem.hosts.iter().map(|host| host.cpu_capacity).collect(),
            overload_scale: problem.params.overload_penalty / 1_000.0,
            primary,
            repl_mask,
            placement,
            load: vec![0.0; h],
            communication: Kahan::default(),
            consistency: Kahan::default(),
            overload_total: Kahan::default(),
            history: Vec::new(),
        };
        evaluator.rebuild_totals();
        evaluator
    }

    /// The shared distance matrix (for handing to further
    /// [`with_distances`](CostEvaluator::with_distances) constructions).
    pub fn distances(&self) -> Arc<[f64]> {
        Arc::clone(&self.dist)
    }

    /// Bytes held by the cost tables: the shared distance matrix, the
    /// share-weighted distance sums and the per-edge scalar weights. (The
    /// matrix is counted in full even though concurrent evaluators share
    /// one allocation.)
    pub fn table_bytes(&self) -> usize {
        (self.dist.len()
            + self.s_to.len()
            + self.s_from.len()
            + self.edge_w_rtt.len()
            + self.edge_w_fixed.len())
            * std::mem::size_of::<f64>()
    }

    /// Bytes the former dense layout (a host×host table per edge plus a
    /// host×host push matrix) would occupy — the denominator of the memory
    /// reduction reported by the scaling bench.
    pub fn dense_table_bytes(&self) -> usize {
        (self.edge_w_rtt.len() + 1) * self.hosts * self.hosts * std::mem::size_of::<f64>()
    }

    /// Recomputes the live state from scratch (used at construction).
    fn rebuild_totals(&mut self) {
        let mut communication = 0.0;
        for e in 0..self.edge_src.len() {
            communication += self.edge_comm(e);
        }
        self.communication = Kahan::new(communication);

        let mut consistency = 0.0;
        for n in 0..self.primary.len() {
            consistency += self.node_consistency(n);
        }
        self.consistency = Kahan::new(consistency);

        self.load.iter_mut().for_each(|l| *l = 0.0);
        self.overload_total = Kahan::default();
        for n in 0..self.primary.len() {
            self.shift_load(n, 1.0);
        }
    }

    /// Number of moves currently on the undo stack.
    pub fn depth(&self) -> usize {
        self.history.len()
    }

    /// Discards the undo history, accepting the current state as final.
    /// Long-running searches that never roll back past their last accepted
    /// move call this to keep the undo stack from growing without bound.
    pub fn commit(&mut self) {
        self.history.clear();
    }

    /// The current placement (kept in sync with every apply/undo).
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Consumes the evaluator, returning the final placement.
    pub fn into_placement(self) -> Placement {
        self.placement
    }

    /// Current primary host of `node`.
    pub fn primary_of(&self, node: NodeIndex) -> HostId {
        HostId(self.primary[node.index()] as usize)
    }

    /// Whether `node` currently has a replica at `host`.
    pub fn has_replica(&self, node: NodeIndex, host: HostId) -> bool {
        mask_test(self.mask(node.index()), host.0)
    }

    /// The current cost breakdown.
    pub fn breakdown(&self) -> CostBreakdown {
        CostBreakdown {
            communication: self.communication.value(),
            consistency: self.consistency.value(),
            overload: self.overload_total.value(),
        }
    }

    /// The current scalar objective.
    pub fn total(&self) -> f64 {
        self.breakdown().total()
    }

    /// Applies `mv` and returns the change in total cost (negative =
    /// improvement). The move is recorded for [`undo`](CostEvaluator::undo).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range hosts, on `AddReplica`/`DropReplica` of the
    /// current primary, on adding a replica that already exists or dropping
    /// one that does not: the search algorithms construct only valid moves,
    /// and silently ignoring an invalid one would desynchronize the
    /// evaluator from the caller's view of the placement.
    pub fn apply(&mut self, mv: Move) -> f64 {
        let record = self.check(mv);
        let delta = self.execute(mv);
        self.history.push(record);
        delta
    }

    /// Reverts the most recent un-undone [`apply`](CostEvaluator::apply),
    /// returning the change in total cost.
    ///
    /// # Panics
    ///
    /// Panics if there is nothing to undo.
    pub fn undo(&mut self) -> f64 {
        let record = self.history.pop().expect("undo with no applied move");
        match record.mv {
            Move::MovePrimary { node, .. } => {
                let mut delta = self.execute(Move::MovePrimary {
                    node,
                    to: HostId(record.prev_primary as usize),
                });
                if record.absorbed_replica {
                    let Move::MovePrimary { to, .. } = record.mv else {
                        unreachable!()
                    };
                    delta += self.execute(Move::AddReplica { node, host: to });
                }
                delta
            }
            Move::AddReplica { node, host } => self.execute(Move::DropReplica { node, host }),
            Move::DropReplica { node, host } => self.execute(Move::AddReplica { node, host }),
        }
    }

    /// The replica bitmask words of node `idx`.
    #[inline]
    fn mask(&self, idx: usize) -> &[u64] {
        &self.repl_mask[idx * self.mask_words..(idx + 1) * self.mask_words]
    }

    /// Sets (`true`) or clears (`false`) host bit `bit` of node `idx`.
    #[inline]
    fn set_mask(&mut self, idx: usize, bit: usize, on: bool) {
        let word = &mut self.repl_mask[idx * self.mask_words + (bit >> 6)];
        if on {
            *word |= 1u64 << (bit & 63);
        } else {
            *word &= !(1u64 << (bit & 63));
        }
    }

    /// Validates `mv` and captures the undo record.
    fn check(&self, mv: Move) -> Applied {
        let (node, host) = match mv {
            Move::MovePrimary { node, to } => (node, to),
            Move::AddReplica { node, host } | Move::DropReplica { node, host } => (node, host),
        };
        let idx = node.index();
        assert!(idx < self.primary.len(), "unknown node {idx}");
        assert!(host.0 < self.hosts, "unknown host {host}");
        match mv {
            Move::MovePrimary { .. } => {}
            Move::AddReplica { .. } => {
                assert!(
                    self.primary[idx] != host.0 as u32,
                    "AddReplica at the primary host {host}"
                );
                assert!(
                    !mask_test(self.mask(idx), host.0),
                    "AddReplica: replica already present at {host}"
                );
            }
            Move::DropReplica { .. } => {
                assert!(
                    mask_test(self.mask(idx), host.0),
                    "DropReplica: no replica at {host}"
                );
            }
        }
        Applied {
            mv,
            prev_primary: self.primary[idx],
            absorbed_replica: matches!(mv, Move::MovePrimary { .. })
                && mask_test(self.mask(idx), host.0),
        }
    }

    /// Applies the state mutation and updates the running cost terms.
    fn execute(&mut self, mv: Move) -> f64 {
        match mv {
            Move::MovePrimary { node, to } => self.execute_move_primary(node.index(), to),
            Move::AddReplica { node, host } => self.execute_replica(node.index(), host, true),
            Move::DropReplica { node, host } => self.execute_replica(node.index(), host, false),
        }
    }

    /// Communication cost of edge `e` between serving hosts `a → b`:
    /// `w_rtt[e]·dist[a][b] + w_fixed[e]`, zero when co-located.
    #[inline]
    fn pair_cost(&self, e: usize, a: usize, b: usize) -> f64 {
        if a == b {
            0.0
        } else {
            self.edge_w_rtt[e] * self.dist[a * self.hosts + b] + self.edge_w_fixed[e]
        }
    }

    /// Consistency push cost (ms per write) from primary `a` to replica `b`.
    #[inline]
    fn push_cost(&self, a: usize, b: usize) -> f64 {
        if a == b {
            0.0
        } else {
            self.push_rtt * self.dist[a * self.hosts + b] + self.push_fixed
        }
    }

    /// Re-homes a primary. Every incident edge can re-route for every
    /// origin, but almost every origin takes the *default* route (its
    /// traffic is served at the primary on the moving side and at the
    /// primary on the other side), and the default delta is
    /// origin-independent. Each incident edge is therefore priced as one
    /// closed-form default term — `share_total` times the primary-to-
    /// primary change, or a share-weighted distance sum (`s_to`/`s_from`)
    /// when the far endpoint is an Entry — plus exact corrections for the
    /// handful of *exceptional* origins (the old/new primaries and the
    /// replica hosts of either endpoint, where serving is local). Cost:
    /// `O(degree × (1 + replicas))` instead of `O(degree × origins)`.
    fn execute_move_primary(&mut self, idx: usize, to: HostId) -> f64 {
        let entry = self.role[idx] == Role::Entry;
        let overload_before = self.overload_total.value();
        let cons_old = self.node_consistency(idx);
        if !entry {
            // An Entry serves every origin locally regardless of its
            // primary: its load never moves.
            self.shift_load(idx, -1.0);
        }

        let p_old = self.primary[idx] as usize;
        let mut mask_old = [0u64; MASK_WORDS_CAP];
        mask_old[..self.mask_words].copy_from_slice(self.mask(idx));
        self.primary[idx] = to.0 as u32;
        self.set_mask(idx, to.0, false);
        self.placement.primary[idx] = to;
        self.placement.replicas[idx].remove(&to);
        let p_new = to.0;
        let mut mask_new = [0u64; MASK_WORDS_CAP];
        mask_new[..self.mask_words].copy_from_slice(self.mask(idx));

        // Serving location of the moving (non-Entry) node under the old /
        // new state, for an origin host.
        let loc_old = |origin: usize| {
            if p_old == origin || mask_test(&mask_old, origin) {
                origin
            } else {
                p_old
            }
        };
        let loc_new = |origin: usize| {
            if p_new == origin || mask_test(&mask_new, origin) {
                origin
            } else {
                p_new
            }
        };

        let mut comm_delta = 0.0;
        // Scratch for the exceptional-origin host set of one edge.
        let mut exceptional: Vec<u32> = Vec::new();
        for k in self.inc_start[idx]..self.inc_start[idx + 1] {
            let e = self.inc_edge[k as usize] as usize;
            let s = self.edge_src[e] as usize;
            let t = self.edge_dst[e] as usize;
            if self.edge_write[e] {
                // Write traffic executes at primaries; an Entry source
                // follows the origin instead, so an Entry's own primary
                // move leaves its outgoing write edges untouched.
                if s == idx && !entry {
                    let t_primary = self.primary[t] as usize;
                    let w_old = self.pair_cost(e, p_old, t_primary);
                    let w_new = self.pair_cost(e, p_new, t_primary);
                    comm_delta += self.share_total * (w_new - w_old);
                } else if t == idx {
                    if self.role[s] == Role::Entry {
                        // Σ_o share·pair(e, o, p) = w_rtt·s_from[p] +
                        // w_fixed·(share_total − share(p)).
                        comm_delta += self.edge_w_rtt[e]
                            * (self.s_from[p_new] - self.s_from[p_old])
                            + self.edge_w_fixed[e]
                                * (self.entry_share[p_old] - self.entry_share[p_new]);
                    } else {
                        let from = self.primary[s] as usize;
                        let w_old = self.pair_cost(e, from, p_old);
                        let w_new = self.pair_cost(e, from, p_new);
                        comm_delta += self.share_total * (w_new - w_old);
                    }
                }
                continue;
            }
            if entry {
                // An Entry node serves at the origin before and after the
                // move, so its read edges contribute zero delta.
                continue;
            }
            let idx_is_src = s == idx;
            let other = if idx_is_src { t } else { s };
            // Exceptional origins on the moving side: its old/new primary
            // and its replica hosts (the new mask is the old mask minus
            // the absorbed bit, so the old mask covers both states).
            exceptional.clear();
            exceptional.push(p_old as u32);
            exceptional.push(p_new as u32);
            push_mask_hosts(&mut exceptional, &mask_old[..self.mask_words]);
            if self.role[other] == Role::Entry {
                // Far side follows the origin. Default (origin served at
                // the moving primary): Σ_o share·pair(e, p, o), collapsed
                // through the share-weighted distance sums.
                let (sum_new, sum_old) = if idx_is_src {
                    (self.s_to[p_new], self.s_to[p_old])
                } else {
                    (self.s_from[p_new], self.s_from[p_old])
                };
                comm_delta += self.edge_w_rtt[e] * (sum_new - sum_old)
                    + self.edge_w_fixed[e] * (self.entry_share[p_old] - self.entry_share[p_new]);
                exceptional.sort_unstable();
                exceptional.dedup();
                for &ou in &exceptional {
                    let o = ou as usize;
                    let share = self.entry_share[o];
                    if share == 0.0 {
                        continue;
                    }
                    let (actual_new, assumed_new, actual_old, assumed_old) = if idx_is_src {
                        (
                            self.pair_cost(e, loc_new(o), o),
                            self.pair_cost(e, p_new, o),
                            self.pair_cost(e, loc_old(o), o),
                            self.pair_cost(e, p_old, o),
                        )
                    } else {
                        (
                            self.pair_cost(e, o, loc_new(o)),
                            self.pair_cost(e, o, p_new),
                            self.pair_cost(e, o, loc_old(o)),
                            self.pair_cost(e, o, p_old),
                        )
                    };
                    comm_delta += share * ((actual_new - assumed_new) - (actual_old - assumed_old));
                }
            } else {
                // Far side serves at its primary by default; an origin at
                // the far primary itself serves there too, so only the far
                // side's *replica* hosts are exceptional.
                let far = self.primary[other] as usize;
                let default = if idx_is_src {
                    self.pair_cost(e, p_new, far) - self.pair_cost(e, p_old, far)
                } else {
                    self.pair_cost(e, far, p_new) - self.pair_cost(e, far, p_old)
                };
                comm_delta += self.share_total * default;
                push_mask_hosts(&mut exceptional, self.mask(other));
                exceptional.sort_unstable();
                exceptional.dedup();
                for &ou in &exceptional {
                    let o = ou as usize;
                    let share = self.entry_share[o];
                    if share == 0.0 {
                        continue;
                    }
                    let far_loc = self.location(other, ou) as usize;
                    let (exact_new, exact_old) = if idx_is_src {
                        (
                            self.pair_cost(e, loc_new(o), far_loc),
                            self.pair_cost(e, loc_old(o), far_loc),
                        )
                    } else {
                        (
                            self.pair_cost(e, far_loc, loc_new(o)),
                            self.pair_cost(e, far_loc, loc_old(o)),
                        )
                    };
                    comm_delta += share * ((exact_new - exact_old) - default);
                }
            }
        }

        let cons_new = self.node_consistency(idx);
        if !entry {
            self.shift_load(idx, 1.0);
        }

        self.communication.add(comm_delta);
        self.consistency.add(cons_new - cons_old);
        comm_delta + (cons_new - cons_old) + (self.overload_total.value() - overload_before)
    }

    /// Toggles a replica of node `idx` at `host`. Fast path: a replica only
    /// re-routes read traffic *originating at that host* (write traffic
    /// executes at primaries), so the delta touches one origin's incident
    /// read edges, one consistency push edge, and one load slot — instead
    /// of re-evaluating every incident edge over every origin.
    fn execute_replica(&mut self, idx: usize, host: HostId, adding: bool) -> f64 {
        let v = host.0;
        let overload_before = self.overload_total.value();

        // Consistency: exactly the primary → host push edge toggles.
        let mut cons_delta = 0.0;
        let rate = self.write_rate[idx];
        if rate > 0.0 {
            let d = rate * self.push_cost(self.primary[idx] as usize, v);
            cons_delta = if adding { d } else { -d };
        }

        let served_old = self.location(idx, v as u32);
        self.set_mask(idx, v, adding);
        if adding {
            self.placement.replicas[idx].insert(host);
        } else {
            self.placement.replicas[idx].remove(&host);
        }
        let served_new = self.location(idx, v as u32);

        let mut comm_delta = 0.0;
        let share = self.entry_share[v];
        // `served_old == served_new` covers Entry nodes (which never
        // consult replicas) and redundant toggles; zero share means no
        // traffic ever originates at `host`.
        if share > 0.0 && served_old != served_new {
            for k in self.inc_start[idx]..self.inc_start[idx + 1] {
                let e = self.inc_edge[k as usize] as usize;
                if self.edge_write[e] {
                    continue;
                }
                let s = self.edge_src[e] as usize;
                let t = self.edge_dst[e] as usize;
                let (old, new) = if s == idx {
                    let to = self.location(t, v as u32) as usize;
                    (
                        self.pair_cost(e, served_old as usize, to),
                        self.pair_cost(e, served_new as usize, to),
                    )
                } else {
                    let from = self.location(s, v as u32) as usize;
                    (
                        self.pair_cost(e, from, served_old as usize),
                        self.pair_cost(e, from, served_new as usize),
                    )
                };
                comm_delta += share * (new - old);
            }
            let demand = self.load_ms[idx];
            if demand > 0.0 {
                self.bump_load(served_old as usize, -share * demand);
                self.bump_load(served_new as usize, share * demand);
            }
        }

        self.communication.add(comm_delta);
        self.consistency.add(cons_delta);
        comm_delta + cons_delta + (self.overload_total.value() - overload_before)
    }

    /// Serving location of `node` for traffic originating at `origin`
    /// (mirrors [`Placement::location`]).
    #[inline]
    fn location(&self, node: usize, origin: u32) -> u32 {
        if self.role[node] == Role::Entry {
            return origin;
        }
        if self.primary[node] == origin || mask_test(self.mask(node), origin as usize) {
            origin
        } else {
            self.primary[node]
        }
    }

    /// Total communication contribution of edge `e` over all entry origins.
    #[inline]
    fn edge_comm(&self, e: usize) -> f64 {
        let s = self.edge_src[e] as usize;
        let t = self.edge_dst[e] as usize;
        let mut total = 0.0;
        if self.edge_write[e] {
            // Write-path traffic executes at the primaries; only an Entry
            // source varies with the origin.
            let to = self.edge_dst_primary(t);
            if self.role[s] == Role::Entry {
                for &(origin, share) in &self.origins {
                    total += share * self.pair_cost(e, origin as usize, to);
                }
            } else {
                let from = self.primary[s] as usize;
                total += self.share_total * self.pair_cost(e, from, to);
            }
        } else {
            for &(origin, share) in &self.origins {
                let from = self.location(s, origin) as usize;
                let to = self.location(t, origin) as usize;
                total += share * self.pair_cost(e, from, to);
            }
        }
        total
    }

    #[inline]
    fn edge_dst_primary(&self, t: usize) -> usize {
        self.primary[t] as usize
    }

    /// Consistency push cost of node `n` (primary → each replica).
    #[inline]
    fn node_consistency(&self, n: usize) -> f64 {
        let rate = self.write_rate[n];
        if rate <= 0.0 {
            return 0.0;
        }
        let from = self.primary[n] as usize;
        let base = n * self.mask_words;
        let mut total = 0.0;
        for w in 0..self.mask_words {
            let mut word = self.repl_mask[base + w];
            while word != 0 {
                let r = (w << 6) + word.trailing_zeros() as usize;
                word &= word - 1;
                total += rate * self.push_cost(from, r);
            }
        }
        total
    }

    /// Adds (`sign = 1.0`) or removes (`sign = -1.0`) node `n`'s CPU load
    /// contributions at its serving locations. Entry nodes spread their
    /// demand over every origin; replicated nodes serve locally only at
    /// replica hosts that actually originate traffic, so the loop runs
    /// over replicas, not origins, with one primary bucket for the rest.
    fn shift_load(&mut self, n: usize, sign: f64) {
        let demand = self.load_ms[n];
        if demand == 0.0 {
            return;
        }
        if self.role[n] == Role::Entry {
            // Borrow workaround: origins is read-only while load mutates.
            for i in 0..self.origins.len() {
                let (origin, share) = self.origins[i];
                self.bump_load(origin as usize, sign * share * demand);
            }
            return;
        }
        let p = self.primary[n] as usize;
        let base = n * self.mask_words;
        let mut repl_share = 0.0;
        for w in 0..self.mask_words {
            let mut word = self.repl_mask[base + w];
            while word != 0 {
                let r = (w << 6) + word.trailing_zeros() as usize;
                word &= word - 1;
                let share = self.entry_share[r];
                if share > 0.0 {
                    repl_share += share;
                    self.bump_load(r, sign * share * demand);
                }
            }
        }
        // Everyone else — including an origin at the primary itself — is
        // served at the primary.
        self.bump_load(p, sign * (self.share_total - repl_share) * demand);
    }

    /// Adjusts one host's load and folds the change of its overload
    /// penalty into the running [`CostEvaluator::overload_total`] — O(1)
    /// per touched host instead of a full sweep per move.
    #[inline]
    fn bump_load(&mut self, h: usize, delta: f64) {
        if delta == 0.0 {
            return;
        }
        if self.capacity[h].is_finite() {
            let cap = self.capacity[h].max(0.0);
            let before = (self.load[h] - cap).max(0.0);
            self.load[h] += delta;
            let after = (self.load[h] - cap).max(0.0);
            self.overload_total
                .add((after - before) * self.overload_scale);
        } else {
            self.load[h] += delta;
        }
    }
}

/// Guards the `usize → u32` narrowing of node ids in the flattened arrays.
fn node_checked(node: NodeIndex, n: usize) {
    debug_assert!(node.index() < n);
    assert!(
        u32::try_from(node.index()).is_ok(),
        "component graph too large for the flattened evaluator"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{cost, cost_breakdown};
    use crate::graph::{Component, ComponentGraph, CostParams, Host};

    fn problem() -> PlacementProblem {
        let mut g = ComponentGraph::new();
        let web = g.add(Component {
            name: "web".into(),
            role: Role::Entry,
            pinned: None,
            cpu_ms_per_call: 5.0,
            write_rate: 0.0,
        });
        let svc = g.add(Component {
            name: "svc".into(),
            role: Role::Stateless,
            pinned: None,
            cpu_ms_per_call: 2.0,
            write_rate: 0.0,
        });
        let entity = g.add(Component {
            name: "entity".into(),
            role: Role::Entity,
            pinned: None,
            cpu_ms_per_call: 1.0,
            write_rate: 0.5,
        });
        let db = g.add(Component {
            name: "db".into(),
            role: Role::Database,
            pinned: Some(HostId(0)),
            cpu_ms_per_call: 1.0,
            write_rate: 0.0,
        });
        g.interact(web, svc, 10.0, 500.0);
        g.interact(svc, entity, 8.0, 300.0);
        g.interact_write(entity, db, 2.0, 400.0);
        PlacementProblem {
            hosts: vec![
                Host {
                    name: "main".into(),
                    entry_share: 0.4,
                    cpu_capacity: 40.0,
                },
                Host {
                    name: "edge".into(),
                    entry_share: 0.6,
                    cpu_capacity: f64::INFINITY,
                },
            ],
            rtt_ms: vec![vec![0.0, 200.0], vec![200.0, 0.0]],
            graph: g,
            params: CostParams::default(),
        }
    }

    fn assert_matches(problem: &PlacementProblem, eval: &CostEvaluator) {
        let expected = cost_breakdown(problem, eval.placement());
        let got = eval.breakdown();
        let tol = 1e-9 * expected.total().abs().max(1.0);
        assert!(
            (got.communication - expected.communication).abs() <= tol,
            "communication {got:?} vs {expected:?}"
        );
        assert!(
            (got.consistency - expected.consistency).abs() <= tol,
            "consistency {got:?} vs {expected:?}"
        );
        assert!(
            (got.overload - expected.overload).abs() <= tol,
            "overload {got:?} vs {expected:?}"
        );
    }

    #[test]
    fn initial_state_matches_full_recompute() {
        let p = problem();
        let eval = CostEvaluator::new(&p, Placement::all_on(&p, HostId(0)));
        assert_matches(&p, &eval);
        let full = cost(&p, eval.placement());
        assert!((eval.total() - full).abs() <= 1e-9 * full.max(1.0));
    }

    #[test]
    fn moves_track_full_recompute_and_undo_restores() {
        let p = problem();
        let svc = p.graph.by_name("svc").unwrap();
        let entity = p.graph.by_name("entity").unwrap();
        let mut eval = CostEvaluator::new(&p, Placement::all_on(&p, HostId(0)));
        let initial = eval.breakdown();

        let moves = [
            Move::MovePrimary {
                node: svc,
                to: HostId(1),
            },
            Move::AddReplica {
                node: entity,
                host: HostId(1),
            },
            Move::MovePrimary {
                node: svc,
                to: HostId(0),
            },
            Move::DropReplica {
                node: entity,
                host: HostId(1),
            },
            Move::AddReplica {
                node: svc,
                host: HostId(1),
            },
        ];
        for mv in moves {
            let before = eval.total();
            let delta = eval.apply(mv);
            assert_matches(&p, &eval);
            assert!(
                (eval.total() - (before + delta)).abs() <= 1e-9 * before.abs().max(1.0),
                "delta inconsistent"
            );
        }
        for _ in 0..moves.len() {
            eval.undo();
            assert_matches(&p, &eval);
        }
        assert_eq!(eval.depth(), 0);
        let back = eval.breakdown();
        assert!((back.total() - initial.total()).abs() <= 1e-9 * initial.total().max(1.0));
    }

    #[test]
    fn move_primary_absorbs_replica_and_undo_restores_it() {
        let p = problem();
        let entity = p.graph.by_name("entity").unwrap();
        let mut eval = CostEvaluator::new(&p, Placement::all_on(&p, HostId(0)));
        eval.apply(Move::AddReplica {
            node: entity,
            host: HostId(1),
        });
        eval.apply(Move::MovePrimary {
            node: entity,
            to: HostId(1),
        });
        assert!(!eval.has_replica(entity, HostId(1)), "replica absorbed");
        assert_matches(&p, &eval);
        eval.undo();
        assert!(eval.has_replica(entity, HostId(1)), "replica restored");
        assert_eq!(eval.primary_of(entity), HostId(0));
        assert_matches(&p, &eval);
    }

    #[test]
    fn overload_term_tracks_capacity_crossings() {
        let p = problem();
        let svc = p.graph.by_name("svc").unwrap();
        let mut eval = CostEvaluator::new(&p, Placement::all_on(&p, HostId(0)));
        // all-on-main exceeds main's 100 ms/s capacity.
        assert!(eval.breakdown().overload > 0.0);
        eval.apply(Move::MovePrimary {
            node: svc,
            to: HostId(1),
        });
        assert_matches(&p, &eval);
    }

    /// Beyond 64 hosts the replica bitmask spans several words; the delta
    /// accounting must keep tracking the full recompute exactly as on the
    /// paper's 3-host star.
    #[test]
    fn wide_host_sets_use_multiword_replica_masks() {
        let mut p = problem();
        let h = 130;
        let share = 1.0 / h as f64;
        p.hosts = (0..h)
            .map(|i| Host {
                name: format!("h{i}"),
                entry_share: share,
                cpu_capacity: f64::INFINITY,
            })
            .collect();
        p.rtt_ms = (0..h)
            .map(|a| {
                (0..h)
                    .map(|b| {
                        if a == b {
                            0.0
                        } else {
                            100.0 + ((a * 31 + b * 17) % 200) as f64
                        }
                    })
                    .collect()
            })
            .collect();
        // Symmetrize.
        for a in 0..h {
            for b in 0..a {
                p.rtt_ms[a][b] = p.rtt_ms[b][a];
            }
        }
        let entity = p.graph.by_name("entity").unwrap();
        let svc = p.graph.by_name("svc").unwrap();
        let mut eval = CostEvaluator::new(&p, Placement::all_on(&p, HostId(0)));
        assert_matches(&p, &eval);
        for host in [1usize, 63, 64, 65, 127, 129] {
            eval.apply(Move::AddReplica {
                node: entity,
                host: HostId(host),
            });
            assert!(eval.has_replica(entity, HostId(host)));
            assert_matches(&p, &eval);
        }
        eval.apply(Move::MovePrimary {
            node: svc,
            to: HostId(129),
        });
        assert_matches(&p, &eval);
        eval.apply(Move::MovePrimary {
            node: entity,
            to: HostId(65),
        });
        assert!(!eval.has_replica(entity, HostId(65)), "replica absorbed");
        assert_matches(&p, &eval);
        while eval.depth() > 0 {
            eval.undo();
        }
        assert_matches(&p, &eval);
    }

    #[test]
    fn shared_distance_matrix_is_one_allocation() {
        let p = problem();
        let dist = shared_distances(&p);
        let a = CostEvaluator::with_distances(&p, Placement::all_on(&p, HostId(0)), dist.clone());
        let b = CostEvaluator::with_distances(&p, Placement::all_on(&p, HostId(1)), a.distances());
        assert!(Arc::ptr_eq(&dist, &b.distances()));
        // Table memory is hosts² + 2·hosts + 2 scalars per edge, not
        // edges × hosts².
        assert_eq!(a.table_bytes(), (4 + 2 * 2 + 3 * 2) * 8);
        assert!(a.dense_table_bytes() > a.table_bytes());
    }

    #[test]
    #[should_panic(expected = "AddReplica at the primary host")]
    fn add_replica_at_primary_is_rejected() {
        let p = problem();
        let svc = p.graph.by_name("svc").unwrap();
        let mut eval = CostEvaluator::new(&p, Placement::all_on(&p, HostId(0)));
        eval.apply(Move::AddReplica {
            node: svc,
            host: HostId(0),
        });
    }

    #[test]
    #[should_panic(expected = "undo with no applied move")]
    fn undo_on_empty_history_panics() {
        let p = problem();
        let mut eval = CostEvaluator::new(&p, Placement::all_on(&p, HostId(0)));
        eval.undo();
    }
}
