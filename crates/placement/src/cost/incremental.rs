//! Incremental (delta) placement cost evaluation.
//!
//! [`cost_breakdown`](crate::cost::cost_breakdown) re-walks the whole
//! interaction graph — `O(hosts × edges + hosts × nodes)` with petgraph
//! iteration overhead and a fresh `load` allocation — yet every move a
//! search algorithm tries changes the placement of exactly *one* component.
//! [`CostEvaluator`] exploits that: it flattens the graph once into
//! cache-friendly CSR-style arrays (per-node incident edge lists, per-edge
//! host×host cost tables with the `calls_per_sec` weight folded in, a dense
//! push-cost matrix), keeps the per-host CPU load and the three
//! [`CostBreakdown`] terms as live state, and re-evaluates only the terms a
//! move can touch: the edges incident to the moved component, that
//! component's consistency pushes, and its load contributions. A
//! single-component move therefore costs `O(degree(node) × entry_hosts +
//! hosts)` instead of a whole-graph sweep.
//!
//! Every [`apply`](CostEvaluator::apply) is reversible via
//! [`undo`](CostEvaluator::undo) (the evaluator keeps a full undo stack), so
//! search loops probe candidate moves without ever cloning a [`Placement`].
//! The three running cost terms use Kahan-compensated summation so that
//! millions of `apply`/`undo` deltas stay within `1e-9` of a from-scratch
//! [`cost_breakdown`](crate::cost::cost_breakdown) — a property test drives
//! exactly that comparison (`tests/incremental_equivalence.rs`).

use petgraph::graph::NodeIndex;

use crate::cost::CostBreakdown;
use crate::graph::{HostId, Placement, PlacementProblem, Role};

/// Maximum host count supported by the evaluator (replica sets are tracked
/// as 64-bit host masks). Wide-area placement problems name a handful of
/// geographic sites, so this is not a practical restriction.
pub const MAX_HOSTS: usize = 64;

/// A reversible single-component placement mutation — the three move kinds
/// the search algorithms use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Move {
    /// Re-home a component's primary onto `to` (any replica already at `to`
    /// is absorbed, matching the search algorithms' move semantics).
    MovePrimary {
        /// The component to move.
        node: NodeIndex,
        /// The new primary host.
        to: HostId,
    },
    /// Add a read-only replica of `node` at `host`.
    AddReplica {
        /// The component to replicate.
        node: NodeIndex,
        /// The replica host (must not be the current primary).
        host: HostId,
    },
    /// Drop the replica of `node` at `host`.
    DropReplica {
        /// The component whose replica is dropped.
        node: NodeIndex,
        /// The replica host being dropped.
        host: HostId,
    },
}

/// Kahan-compensated running sum: keeps the error of a long +/- delta
/// stream at the last-bit level instead of accumulating linearly.
#[derive(Debug, Clone, Copy, Default)]
struct Kahan {
    sum: f64,
    compensation: f64,
}

impl Kahan {
    fn new(value: f64) -> Self {
        Kahan {
            sum: value,
            compensation: 0.0,
        }
    }

    fn add(&mut self, x: f64) {
        let y = x - self.compensation;
        let t = self.sum + y;
        self.compensation = (t - self.sum) - y;
        self.sum = t;
    }

    fn value(self) -> f64 {
        self.sum
    }
}

/// Undo record for one applied move.
#[derive(Debug, Clone, Copy)]
struct Applied {
    mv: Move,
    /// For `MovePrimary`: the previous primary host.
    prev_primary: u32,
    /// For `MovePrimary`: whether the target host held a replica that the
    /// move absorbed (and undo must restore).
    absorbed_replica: bool,
}

/// Incremental placement cost evaluator.
///
/// Owns a flattened copy of the problem (it does not borrow the
/// [`PlacementProblem`]) plus the live placement and cost state. Build it
/// once per search with [`CostEvaluator::new`], then drive it with
/// [`apply`](CostEvaluator::apply) / [`undo`](CostEvaluator::undo).
#[derive(Debug, Clone)]
pub struct CostEvaluator {
    // ---- immutable flattened problem ----
    hosts: usize,
    /// Entry origins: `(host, entry_share)` for hosts with positive share.
    origins: Vec<(u32, f64)>,
    /// Dense per-host entry share (0.0 for non-entry hosts); the replica
    /// fast path looks a single origin's share up by host index.
    entry_share: Vec<f64>,
    /// Per node: placement role.
    role: Vec<Role>,
    /// Per node: writes/s against the component's state.
    write_rate: Vec<f64>,
    /// Per node: CPU demand (ms/s) an origin of share 1.0 induces at the
    /// node's serving location (`rate × cpu_ms_per_call`).
    load_ms: Vec<f64>,
    /// Edge endpoints (self-loops excluded: their cost is identically 0).
    edge_src: Vec<u32>,
    edge_dst: Vec<u32>,
    edge_write: Vec<bool>,
    /// Per edge, dense host×host communication cost with the call rate
    /// folded in: `edge_cost[e·H² + a·H + b] = calls/s × comm_ms(a, b)`.
    edge_cost: Vec<f64>,
    /// CSR incidence: edges touching node `n` are
    /// `inc_edge[inc_start[n]..inc_start[n + 1]]`.
    inc_start: Vec<u32>,
    inc_edge: Vec<u32>,
    /// Dense host×host consistency push cost (ms per write).
    push_cost: Vec<f64>,
    /// Per host CPU capacity (ms/s).
    capacity: Vec<f64>,
    /// Overload penalty per ms/s of excess, divided by 1000 (as in
    /// `cost_breakdown`).
    overload_scale: f64,
    // ---- live state ----
    primary: Vec<u32>,
    /// Replica host bitmask per node (bit `h` ⇔ replica at host `h`).
    repl_mask: Vec<u64>,
    /// Mirror of the evaluator state as a [`Placement`] (kept in sync so
    /// searches can snapshot the best placement cheaply).
    placement: Placement,
    /// Per-host CPU load (ms/s).
    load: Vec<f64>,
    communication: Kahan,
    consistency: Kahan,
    history: Vec<Applied>,
}

impl CostEvaluator {
    /// Builds an evaluator for `problem`, positioned at `placement`.
    ///
    /// # Panics
    ///
    /// Panics if the problem has more than [`MAX_HOSTS`] hosts or the
    /// placement arity does not match the graph.
    pub fn new(problem: &PlacementProblem, placement: Placement) -> CostEvaluator {
        let g = &problem.graph.graph;
        let n = g.node_count();
        let h = problem.hosts.len();
        assert!(
            h <= MAX_HOSTS,
            "CostEvaluator supports at most {MAX_HOSTS} hosts, got {h}"
        );
        assert_eq!(placement.primary.len(), n, "placement arity mismatch");
        assert_eq!(placement.replicas.len(), n, "placement arity mismatch");

        let origins: Vec<(u32, f64)> = problem
            .hosts
            .iter()
            .enumerate()
            .filter(|(_, host)| host.entry_share > 0.0)
            .map(|(i, host)| (i as u32, host.entry_share))
            .collect();

        let mut role = Vec::with_capacity(n);
        let mut write_rate = Vec::with_capacity(n);
        let mut load_ms = Vec::with_capacity(n);
        for node in g.node_indices() {
            let c = &g[node];
            role.push(c.role);
            write_rate.push(c.write_rate);
            let rate = match c.role {
                Role::Entry => problem.graph.read_rate(node).max(
                    g.edges_directed(node, petgraph::Direction::Outgoing)
                        .map(|e| e.weight().calls_per_sec)
                        .sum(),
                ),
                _ => problem.graph.read_rate(node),
            };
            node_checked(node, n);
            load_ms.push(rate * c.cpu_ms_per_call);
        }

        // Flatten edges: keep only those that can ever contribute cost
        // (positive call rate, distinct endpoints), exactly the set
        // `cost_breakdown` does not skip.
        let byte_ms = 8.0 / problem.params.bandwidth_bps * 1_000.0;
        let mut edge_src = Vec::new();
        let mut edge_dst = Vec::new();
        let mut edge_write = Vec::new();
        let mut edge_cost = Vec::new();
        for edge in g.edge_references() {
            let w = edge.weight();
            if w.calls_per_sec <= 0.0 || edge.source() == edge.target() {
                continue;
            }
            edge_src.push(edge.source().index() as u32);
            edge_dst.push(edge.target().index() as u32);
            edge_write.push(w.write_path);
            for a in 0..h {
                for b in 0..h {
                    let comm = if a == b {
                        0.0
                    } else {
                        problem.rtt_ms[a][b] * problem.params.rmi_round_trips
                            + w.bytes_per_call * byte_ms
                    };
                    edge_cost.push(w.calls_per_sec * comm);
                }
            }
        }

        // CSR incidence lists (each edge listed under both endpoints).
        let e = edge_src.len();
        let mut degree = vec![0u32; n];
        for i in 0..e {
            degree[edge_src[i] as usize] += 1;
            degree[edge_dst[i] as usize] += 1;
        }
        let mut inc_start = vec![0u32; n + 1];
        for i in 0..n {
            inc_start[i + 1] = inc_start[i] + degree[i];
        }
        let mut cursor = inc_start.clone();
        let mut inc_edge = vec![0u32; inc_start[n] as usize];
        for i in 0..e {
            for endpoint in [edge_src[i] as usize, edge_dst[i] as usize] {
                inc_edge[cursor[endpoint] as usize] = i as u32;
                cursor[endpoint] += 1;
            }
        }

        let mut push_cost = Vec::with_capacity(h * h);
        for a in 0..h {
            for b in 0..h {
                push_cost.push(if a == b {
                    0.0
                } else {
                    problem.rtt_ms[a][b] * problem.params.push_round_trips
                        + problem.params.push_bytes * byte_ms
                });
            }
        }

        let primary: Vec<u32> = placement.primary.iter().map(|p| p.0 as u32).collect();
        let mut repl_mask = vec![0u64; n];
        for (i, replicas) in placement.replicas.iter().enumerate() {
            for r in replicas {
                assert!(r.0 < h, "replica on unknown host {r}");
                repl_mask[i] |= 1 << r.0;
            }
        }

        let entry_share = problem.hosts.iter().map(|host| host.entry_share).collect();
        let mut evaluator = CostEvaluator {
            hosts: h,
            origins,
            entry_share,
            role,
            write_rate,
            load_ms,
            edge_src,
            edge_dst,
            edge_write,
            edge_cost,
            inc_start,
            inc_edge,
            push_cost,
            capacity: problem.hosts.iter().map(|host| host.cpu_capacity).collect(),
            overload_scale: problem.params.overload_penalty / 1_000.0,
            primary,
            repl_mask,
            placement,
            load: vec![0.0; h],
            communication: Kahan::default(),
            consistency: Kahan::default(),
            history: Vec::new(),
        };
        evaluator.rebuild_totals();
        evaluator
    }

    /// Recomputes the live state from scratch (used at construction).
    fn rebuild_totals(&mut self) {
        let mut communication = 0.0;
        for e in 0..self.edge_src.len() {
            communication += self.edge_comm(e);
        }
        self.communication = Kahan::new(communication);

        let mut consistency = 0.0;
        for n in 0..self.primary.len() {
            consistency += self.node_consistency(n);
        }
        self.consistency = Kahan::new(consistency);

        self.load.iter_mut().for_each(|l| *l = 0.0);
        for n in 0..self.primary.len() {
            self.shift_load(n, 1.0);
        }
    }

    /// Number of moves currently on the undo stack.
    pub fn depth(&self) -> usize {
        self.history.len()
    }

    /// Discards the undo history, accepting the current state as final.
    /// Long-running searches that never roll back past their last accepted
    /// move call this to keep the undo stack from growing without bound.
    pub fn commit(&mut self) {
        self.history.clear();
    }

    /// The current placement (kept in sync with every apply/undo).
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Consumes the evaluator, returning the final placement.
    pub fn into_placement(self) -> Placement {
        self.placement
    }

    /// Current primary host of `node`.
    pub fn primary_of(&self, node: NodeIndex) -> HostId {
        HostId(self.primary[node.index()] as usize)
    }

    /// Whether `node` currently has a replica at `host`.
    pub fn has_replica(&self, node: NodeIndex, host: HostId) -> bool {
        self.repl_mask[node.index()] & (1 << host.0) != 0
    }

    /// The current cost breakdown.
    pub fn breakdown(&self) -> CostBreakdown {
        CostBreakdown {
            communication: self.communication.value(),
            consistency: self.consistency.value(),
            overload: self.overload(),
        }
    }

    /// The current scalar objective.
    pub fn total(&self) -> f64 {
        self.breakdown().total()
    }

    /// Applies `mv` and returns the change in total cost (negative =
    /// improvement). The move is recorded for [`undo`](CostEvaluator::undo).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range hosts, on `AddReplica`/`DropReplica` of the
    /// current primary, on adding a replica that already exists or dropping
    /// one that does not: the search algorithms construct only valid moves,
    /// and silently ignoring an invalid one would desynchronize the
    /// evaluator from the caller's view of the placement.
    pub fn apply(&mut self, mv: Move) -> f64 {
        let record = self.check(mv);
        let delta = self.execute(mv);
        self.history.push(record);
        delta
    }

    /// Reverts the most recent un-undone [`apply`](CostEvaluator::apply),
    /// returning the change in total cost.
    ///
    /// # Panics
    ///
    /// Panics if there is nothing to undo.
    pub fn undo(&mut self) -> f64 {
        let record = self.history.pop().expect("undo with no applied move");
        match record.mv {
            Move::MovePrimary { node, .. } => {
                let mut delta = self.execute(Move::MovePrimary {
                    node,
                    to: HostId(record.prev_primary as usize),
                });
                if record.absorbed_replica {
                    let Move::MovePrimary { to, .. } = record.mv else {
                        unreachable!()
                    };
                    delta += self.execute(Move::AddReplica { node, host: to });
                }
                delta
            }
            Move::AddReplica { node, host } => self.execute(Move::DropReplica { node, host }),
            Move::DropReplica { node, host } => self.execute(Move::AddReplica { node, host }),
        }
    }

    /// Validates `mv` and captures the undo record.
    fn check(&self, mv: Move) -> Applied {
        let (node, host) = match mv {
            Move::MovePrimary { node, to } => (node, to),
            Move::AddReplica { node, host } | Move::DropReplica { node, host } => (node, host),
        };
        let idx = node.index();
        assert!(idx < self.primary.len(), "unknown node {idx}");
        assert!(host.0 < self.hosts, "unknown host {host}");
        match mv {
            Move::MovePrimary { .. } => {}
            Move::AddReplica { .. } => {
                assert!(
                    self.primary[idx] != host.0 as u32,
                    "AddReplica at the primary host {host}"
                );
                assert!(
                    self.repl_mask[idx] & (1 << host.0) == 0,
                    "AddReplica: replica already present at {host}"
                );
            }
            Move::DropReplica { .. } => {
                assert!(
                    self.repl_mask[idx] & (1 << host.0) != 0,
                    "DropReplica: no replica at {host}"
                );
            }
        }
        Applied {
            mv,
            prev_primary: self.primary[idx],
            absorbed_replica: matches!(mv, Move::MovePrimary { .. })
                && self.repl_mask[idx] & (1 << host.0) != 0,
        }
    }

    /// Applies the state mutation and updates the running cost terms.
    fn execute(&mut self, mv: Move) -> f64 {
        match mv {
            Move::MovePrimary { node, to } => self.execute_move_primary(node.index(), to),
            Move::AddReplica { node, host } => self.execute_replica(node.index(), host, true),
            Move::DropReplica { node, host } => self.execute_replica(node.index(), host, false),
        }
    }

    /// Re-homes a primary. Every incident edge can re-route for every
    /// origin, but the *other* endpoint's serving location is unchanged —
    /// one fused pass evaluates each (edge, origin) cell's old and new
    /// contributions together instead of sweeping the incidence list twice.
    fn execute_move_primary(&mut self, idx: usize, to: HostId) -> f64 {
        let overload_before = self.overload();
        let cons_old = self.node_consistency(idx);
        self.shift_load(idx, -1.0);

        let p_old = self.primary[idx];
        let mask_old = self.repl_mask[idx];
        self.primary[idx] = to.0 as u32;
        self.repl_mask[idx] &= !(1 << to.0);
        self.placement.primary[idx] = to;
        self.placement.replicas[idx].remove(&to);
        let p_new = self.primary[idx];
        let mask_new = self.repl_mask[idx];

        let entry = self.role[idx] == Role::Entry;
        // Serving location of the moving node under the old / new state.
        let loc_old = |origin: u32| {
            if entry || p_old == origin || mask_old & (1 << origin) != 0 {
                origin
            } else {
                p_old
            }
        };
        let loc_new = |origin: u32| {
            if entry || p_new == origin || mask_new & (1 << origin) != 0 {
                origin
            } else {
                p_new
            }
        };

        let h = self.hosts;
        let mut comm_delta = 0.0;
        for k in self.inc_start[idx]..self.inc_start[idx + 1] {
            let e = self.inc_edge[k as usize] as usize;
            let s = self.edge_src[e] as usize;
            let t = self.edge_dst[e] as usize;
            let table = &self.edge_cost[e * h * h..(e + 1) * h * h];
            if self.edge_write[e] {
                // Write traffic executes at primaries; an Entry source
                // follows the origin instead, so an Entry's own primary
                // move leaves its outgoing write edges untouched.
                if s == idx && !entry {
                    let t_primary = self.primary[t] as usize;
                    let w_old = table[p_old as usize * h + t_primary];
                    let w_new = table[p_new as usize * h + t_primary];
                    for &(_, share) in &self.origins {
                        comm_delta += share * (w_new - w_old);
                    }
                } else if t == idx {
                    if self.role[s] == Role::Entry {
                        for &(origin, share) in &self.origins {
                            let from = origin as usize * h;
                            comm_delta += share
                                * (table[from + p_new as usize] - table[from + p_old as usize]);
                        }
                    } else {
                        let from = self.primary[s] as usize * h;
                        let w_old = table[from + p_old as usize];
                        let w_new = table[from + p_new as usize];
                        for &(_, share) in &self.origins {
                            comm_delta += share * (w_new - w_old);
                        }
                    }
                }
            } else if s == idx {
                for &(origin, share) in &self.origins {
                    let other = self.location(t, origin) as usize;
                    comm_delta += share
                        * (table[loc_new(origin) as usize * h + other]
                            - table[loc_old(origin) as usize * h + other]);
                }
            } else {
                for &(origin, share) in &self.origins {
                    let other = self.location(s, origin) as usize * h;
                    comm_delta += share
                        * (table[other + loc_new(origin) as usize]
                            - table[other + loc_old(origin) as usize]);
                }
            }
        }

        let cons_new = self.node_consistency(idx);
        self.shift_load(idx, 1.0);

        self.communication.add(comm_delta);
        self.consistency.add(cons_new - cons_old);
        comm_delta + (cons_new - cons_old) + (self.overload() - overload_before)
    }

    /// Toggles a replica of node `idx` at `host`. Fast path: a replica only
    /// re-routes read traffic *originating at that host* (write traffic
    /// executes at primaries), so the delta touches one origin's incident
    /// read edges, one consistency push edge, and one load slot — instead
    /// of re-evaluating every incident edge over every origin.
    fn execute_replica(&mut self, idx: usize, host: HostId, adding: bool) -> f64 {
        let v = host.0;
        let overload_before = self.overload();

        // Consistency: exactly the primary → host push edge toggles.
        let mut cons_delta = 0.0;
        let rate = self.write_rate[idx];
        if rate > 0.0 {
            let d = rate * self.push_cost[self.primary[idx] as usize * self.hosts + v];
            cons_delta = if adding { d } else { -d };
        }

        let served_old = self.location(idx, v as u32);
        if adding {
            self.repl_mask[idx] |= 1 << v;
            self.placement.replicas[idx].insert(host);
        } else {
            self.repl_mask[idx] &= !(1 << v);
            self.placement.replicas[idx].remove(&host);
        }
        let served_new = self.location(idx, v as u32);

        let mut comm_delta = 0.0;
        let share = self.entry_share[v];
        // `served_old == served_new` covers Entry nodes (which never
        // consult replicas) and redundant toggles; zero share means no
        // traffic ever originates at `host`.
        if share > 0.0 && served_old != served_new {
            let h = self.hosts;
            for k in self.inc_start[idx]..self.inc_start[idx + 1] {
                let e = self.inc_edge[k as usize] as usize;
                if self.edge_write[e] {
                    continue;
                }
                let s = self.edge_src[e] as usize;
                let t = self.edge_dst[e] as usize;
                let table = &self.edge_cost[e * h * h..(e + 1) * h * h];
                let (old, new) = if s == idx {
                    let to = self.location(t, v as u32) as usize;
                    (served_old as usize * h + to, served_new as usize * h + to)
                } else {
                    let from = self.location(s, v as u32) as usize * h;
                    (from + served_old as usize, from + served_new as usize)
                };
                comm_delta += share * (table[new] - table[old]);
            }
            let demand = self.load_ms[idx];
            if demand > 0.0 {
                self.load[served_old as usize] -= share * demand;
                self.load[served_new as usize] += share * demand;
            }
        }

        self.communication.add(comm_delta);
        self.consistency.add(cons_delta);
        comm_delta + cons_delta + (self.overload() - overload_before)
    }

    /// Serving location of `node` for traffic originating at `origin`
    /// (mirrors [`Placement::location`]).
    #[inline]
    fn location(&self, node: usize, origin: u32) -> u32 {
        if self.role[node] == Role::Entry {
            return origin;
        }
        if self.primary[node] == origin || self.repl_mask[node] & (1 << origin) != 0 {
            origin
        } else {
            self.primary[node]
        }
    }

    /// Total communication contribution of edge `e` over all entry origins.
    #[inline]
    fn edge_comm(&self, e: usize) -> f64 {
        let s = self.edge_src[e] as usize;
        let t = self.edge_dst[e] as usize;
        let h = self.hosts;
        let table = &self.edge_cost[e * h * h..(e + 1) * h * h];
        let mut total = 0.0;
        if self.edge_write[e] {
            // Write-path traffic executes at the primaries; only an Entry
            // source varies with the origin.
            let to = self.edge_dst_primary(t);
            if self.role[s] == Role::Entry {
                for &(origin, share) in &self.origins {
                    total += share * table[origin as usize * h + to];
                }
            } else {
                let from = self.primary[s] as usize;
                let w = table[from * h + to];
                for &(_, share) in &self.origins {
                    total += share * w;
                }
            }
        } else {
            for &(origin, share) in &self.origins {
                let from = self.location(s, origin) as usize;
                let to = self.location(t, origin) as usize;
                total += share * table[from * h + to];
            }
        }
        total
    }

    #[inline]
    fn edge_dst_primary(&self, t: usize) -> usize {
        self.primary[t] as usize
    }

    /// Consistency push cost of node `n` (primary → each replica).
    #[inline]
    fn node_consistency(&self, n: usize) -> f64 {
        let rate = self.write_rate[n];
        if rate <= 0.0 {
            return 0.0;
        }
        let from = self.primary[n] as usize * self.hosts;
        let mut mask = self.repl_mask[n];
        let mut total = 0.0;
        while mask != 0 {
            let r = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            total += rate * self.push_cost[from + r];
        }
        total
    }

    /// Adds (`sign = 1.0`) or removes (`sign = -1.0`) node `n`'s CPU load
    /// contributions at its serving locations.
    fn shift_load(&mut self, n: usize, sign: f64) {
        let demand = self.load_ms[n];
        if demand == 0.0 {
            return;
        }
        for &(origin, share) in &self.origins {
            let at = self.location(n, origin) as usize;
            self.load[at] += sign * share * demand;
        }
    }

    /// Overload penalty from the live load vector (mirrors the overload
    /// term of `cost_breakdown`).
    fn overload(&self) -> f64 {
        let mut total = 0.0;
        for (h, &l) in self.load.iter().enumerate() {
            let over = l - self.capacity[h].max(0.0);
            if over > 0.0 && self.capacity[h].is_finite() {
                total += over * self.overload_scale;
            }
        }
        total
    }
}

/// Guards the `usize → u32` narrowing of node ids in the flattened arrays.
fn node_checked(node: NodeIndex, n: usize) {
    debug_assert!(node.index() < n);
    assert!(
        u32::try_from(node.index()).is_ok(),
        "component graph too large for the flattened evaluator"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{cost, cost_breakdown};
    use crate::graph::{Component, ComponentGraph, CostParams, Host};

    fn problem() -> PlacementProblem {
        let mut g = ComponentGraph::new();
        let web = g.add(Component {
            name: "web".into(),
            role: Role::Entry,
            pinned: None,
            cpu_ms_per_call: 5.0,
            write_rate: 0.0,
        });
        let svc = g.add(Component {
            name: "svc".into(),
            role: Role::Stateless,
            pinned: None,
            cpu_ms_per_call: 2.0,
            write_rate: 0.0,
        });
        let entity = g.add(Component {
            name: "entity".into(),
            role: Role::Entity,
            pinned: None,
            cpu_ms_per_call: 1.0,
            write_rate: 0.5,
        });
        let db = g.add(Component {
            name: "db".into(),
            role: Role::Database,
            pinned: Some(HostId(0)),
            cpu_ms_per_call: 1.0,
            write_rate: 0.0,
        });
        g.interact(web, svc, 10.0, 500.0);
        g.interact(svc, entity, 8.0, 300.0);
        g.interact_write(entity, db, 2.0, 400.0);
        PlacementProblem {
            hosts: vec![
                Host {
                    name: "main".into(),
                    entry_share: 0.4,
                    cpu_capacity: 40.0,
                },
                Host {
                    name: "edge".into(),
                    entry_share: 0.6,
                    cpu_capacity: f64::INFINITY,
                },
            ],
            rtt_ms: vec![vec![0.0, 200.0], vec![200.0, 0.0]],
            graph: g,
            params: CostParams::default(),
        }
    }

    fn assert_matches(problem: &PlacementProblem, eval: &CostEvaluator) {
        let expected = cost_breakdown(problem, eval.placement());
        let got = eval.breakdown();
        let tol = 1e-9 * expected.total().abs().max(1.0);
        assert!(
            (got.communication - expected.communication).abs() <= tol,
            "communication {got:?} vs {expected:?}"
        );
        assert!(
            (got.consistency - expected.consistency).abs() <= tol,
            "consistency {got:?} vs {expected:?}"
        );
        assert!(
            (got.overload - expected.overload).abs() <= tol,
            "overload {got:?} vs {expected:?}"
        );
    }

    #[test]
    fn initial_state_matches_full_recompute() {
        let p = problem();
        let eval = CostEvaluator::new(&p, Placement::all_on(&p, HostId(0)));
        assert_matches(&p, &eval);
        let full = cost(&p, eval.placement());
        assert!((eval.total() - full).abs() <= 1e-9 * full.max(1.0));
    }

    #[test]
    fn moves_track_full_recompute_and_undo_restores() {
        let p = problem();
        let svc = p.graph.by_name("svc").unwrap();
        let entity = p.graph.by_name("entity").unwrap();
        let mut eval = CostEvaluator::new(&p, Placement::all_on(&p, HostId(0)));
        let initial = eval.breakdown();

        let moves = [
            Move::MovePrimary {
                node: svc,
                to: HostId(1),
            },
            Move::AddReplica {
                node: entity,
                host: HostId(1),
            },
            Move::MovePrimary {
                node: svc,
                to: HostId(0),
            },
            Move::DropReplica {
                node: entity,
                host: HostId(1),
            },
            Move::AddReplica {
                node: svc,
                host: HostId(1),
            },
        ];
        for mv in moves {
            let before = eval.total();
            let delta = eval.apply(mv);
            assert_matches(&p, &eval);
            assert!(
                (eval.total() - (before + delta)).abs() <= 1e-9 * before.abs().max(1.0),
                "delta inconsistent"
            );
        }
        for _ in 0..moves.len() {
            eval.undo();
            assert_matches(&p, &eval);
        }
        assert_eq!(eval.depth(), 0);
        let back = eval.breakdown();
        assert!((back.total() - initial.total()).abs() <= 1e-9 * initial.total().max(1.0));
    }

    #[test]
    fn move_primary_absorbs_replica_and_undo_restores_it() {
        let p = problem();
        let entity = p.graph.by_name("entity").unwrap();
        let mut eval = CostEvaluator::new(&p, Placement::all_on(&p, HostId(0)));
        eval.apply(Move::AddReplica {
            node: entity,
            host: HostId(1),
        });
        eval.apply(Move::MovePrimary {
            node: entity,
            to: HostId(1),
        });
        assert!(!eval.has_replica(entity, HostId(1)), "replica absorbed");
        assert_matches(&p, &eval);
        eval.undo();
        assert!(eval.has_replica(entity, HostId(1)), "replica restored");
        assert_eq!(eval.primary_of(entity), HostId(0));
        assert_matches(&p, &eval);
    }

    #[test]
    fn overload_term_tracks_capacity_crossings() {
        let p = problem();
        let svc = p.graph.by_name("svc").unwrap();
        let mut eval = CostEvaluator::new(&p, Placement::all_on(&p, HostId(0)));
        // all-on-main exceeds main's 100 ms/s capacity.
        assert!(eval.breakdown().overload > 0.0);
        eval.apply(Move::MovePrimary {
            node: svc,
            to: HostId(1),
        });
        assert_matches(&p, &eval);
    }

    #[test]
    #[should_panic(expected = "AddReplica at the primary host")]
    fn add_replica_at_primary_is_rejected() {
        let p = problem();
        let svc = p.graph.by_name("svc").unwrap();
        let mut eval = CostEvaluator::new(&p, Placement::all_on(&p, HostId(0)));
        eval.apply(Move::AddReplica {
            node: svc,
            host: HostId(0),
        });
    }

    #[test]
    #[should_panic(expected = "undo with no applied move")]
    fn undo_on_empty_history_panics() {
        let p = problem();
        let mut eval = CostEvaluator::new(&p, Placement::all_on(&p, HostId(0)));
        eval.undo();
    }
}
