//! Region-coarsened placement search for planet-scale host sets.
//!
//! The flat algorithms scan every component × every host per round; at
//! hundreds of hosts that scan dominates. But a multi-tier WAN topology is
//! not a flat host set: hosts cluster into network *regions* (a hub and its
//! metro edge PoPs, the main site's LAN) whose intra-region round trips are
//! bounded by [`region_rtt_threshold_ms`](crate::wan::region_rtt_threshold_ms),
//! while inter-region paths cost a WAN round trip or more. Within a region,
//! host choice barely moves the wide-area objective; *between* regions it
//! dominates. The coarsened search exploits exactly that separation:
//!
//! 1. **Coarsen** — partition hosts into regions (union-find over the
//!    round-trip matrix, agreeing with `Topology::regions()` on derived
//!    problems) and pick one *medoid* host per region (minimum total
//!    intra-region round trip).
//! 2. **Coarse solve** — run the greedy search over the medoid-only
//!    problem (entry shares and capacities summed per region), which is
//!    `regions²` work instead of `hosts²`.
//! 3. **Refine** — lift the coarse placement back to real hosts and run
//!    best-improvement refinement with *neighborhood-restricted* move
//!    generation: a component may move within its current region or jump
//!    to another region's medoid (the tier hubs of the search), never to
//!    an arbitrary remote host directly. Two rounds — region hop, then
//!    local settle — reach any (region, host) combination.
//!
//! Small instances bypass the machinery entirely (they delegate to the
//! flat greedy search), so on graphs small enough to run both, coarsened
//! and uncoarsened search agree exactly — the property suite pins that to
//! 1e-9.

use crate::algorithms::greedy::{self, GreedyOptions};
use crate::cost::incremental::{CostEvaluator, Move};
use crate::graph::{Host, HostId, Placement, PlacementProblem};
use crate::wan::region_rtt_threshold_ms;

/// Options for [`solve_regional`].
#[derive(Debug, Clone)]
pub struct RegionalOptions {
    /// Maximum refinement rounds after lifting the coarse placement.
    pub max_rounds: usize,
    /// Consider replica add/drop moves during refinement.
    pub with_replication: bool,
    /// Instances with at most this many hosts skip coarsening and run the
    /// flat greedy search — the coarsening machinery only pays for itself
    /// once the all-hosts scan dominates, and delegation makes the
    /// small-graph equivalence exact.
    pub small_flat: usize,
}

impl Default for RegionalOptions {
    fn default() -> Self {
        RegionalOptions {
            max_rounds: 1_000,
            with_replication: true,
            small_flat: 12,
        }
    }
}

/// Partitions hosts into network regions: union-find over the round-trip
/// matrix merging every pair within
/// [`region_rtt_threshold_ms`](crate::wan::region_rtt_threshold_ms), then
/// dense region ids numbered by lowest member host (mirroring
/// `Topology::regions()` — on problems derived from a topology the two
/// partitions coincide, which the cross-crate property suite pins).
pub fn host_regions(rtt_ms: &[Vec<f64>]) -> Vec<usize> {
    let h = rtt_ms.len();
    let threshold = region_rtt_threshold_ms();
    let mut parent: Vec<usize> = (0..h).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for (a, row) in rtt_ms.iter().enumerate() {
        for (b, &rtt) in row.iter().enumerate().skip(a + 1) {
            if rtt <= threshold {
                let ra = find(&mut parent, a);
                let rb = find(&mut parent, b);
                if ra != rb {
                    // Lower root wins so ids are stable under enumeration
                    // order.
                    let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
                    parent[hi] = lo;
                }
            }
        }
    }
    let mut dense = vec![usize::MAX; h];
    let mut next = 0;
    let mut out = vec![0; h];
    for (x, slot) in out.iter_mut().enumerate() {
        let root = find(&mut parent, x);
        if dense[root] == usize::MAX {
            dense[root] = next;
            next += 1;
        }
        *slot = dense[root];
    }
    out
}

/// Picks one representative host per region: the *medoid*, minimizing the
/// total round trip to the region's other members (ties broken toward the
/// lowest host index). Returns medoid host indices in region-id order.
pub fn region_medoids(rtt_ms: &[Vec<f64>], regions: &[usize]) -> Vec<usize> {
    let region_count = regions.iter().copied().max().map_or(0, |m| m + 1);
    let mut medoids = vec![usize::MAX; region_count];
    let mut best = vec![f64::INFINITY; region_count];
    for (a, &r) in regions.iter().enumerate() {
        let total: f64 = regions
            .iter()
            .enumerate()
            .filter(|&(_, &rb)| rb == r)
            .map(|(b, _)| rtt_ms[a][b])
            .sum();
        if total < best[r] {
            best[r] = total;
            medoids[r] = a;
        }
    }
    medoids
}

/// Builds the region-coarsened problem: one host per region (named after
/// its medoid) carrying the region's summed entry share and CPU capacity,
/// priced by medoid-to-medoid round trips, with pins remapped to the
/// pinned host's region.
fn coarse_problem(
    problem: &PlacementProblem,
    regions: &[usize],
    medoids: &[usize],
) -> PlacementProblem {
    let region_count = medoids.len();
    let mut hosts = Vec::with_capacity(region_count);
    for (r, &m) in medoids.iter().enumerate() {
        let mut share = 0.0;
        let mut capacity = 0.0f64;
        for (h, &rh) in regions.iter().enumerate() {
            if rh == r {
                share += problem.hosts[h].entry_share;
                capacity += problem.hosts[h].cpu_capacity;
            }
        }
        hosts.push(Host {
            name: problem.hosts[m].name.clone(),
            entry_share: share,
            cpu_capacity: capacity,
        });
    }
    let rtt_ms: Vec<Vec<f64>> = medoids
        .iter()
        .map(|&a| medoids.iter().map(|&b| problem.rtt_ms[a][b]).collect())
        .collect();
    let mut graph = problem.graph.clone();
    for node in graph.graph.node_indices() {
        if let Some(HostId(h)) = graph.graph[node].pinned {
            graph.graph[node].pinned = Some(HostId(regions[h]));
        }
    }
    PlacementProblem {
        hosts,
        rtt_ms,
        graph,
        params: problem.params.clone(),
    }
}

/// Lifts a coarse (per-region) placement back to real hosts: every
/// assignment lands on its region's medoid. Pins are repaired to the true
/// pinned hosts afterwards.
fn lift(problem: &PlacementProblem, coarse: &Placement, medoids: &[usize]) -> Placement {
    let mut placement = Placement {
        primary: coarse
            .primary
            .iter()
            .map(|&r| HostId(medoids[r.0]))
            .collect(),
        replicas: coarse
            .replicas
            .iter()
            .zip(&coarse.primary)
            .map(|(set, &p)| {
                set.iter()
                    .map(|&r| HostId(medoids[r.0]))
                    .filter(|&host| host != HostId(medoids[p.0]))
                    .collect()
            })
            .collect(),
    };
    placement.repair_pins(problem);
    placement
}

/// Best-improvement refinement with neighborhood-restricted move
/// generation. Per component:
///
/// * **primary moves** — the expensive probes, `O(degree × origins)` each —
///   are offered only the component's current region members plus every
///   region medoid (the tier hubs): a region hop then a local settle reach
///   any (region, host) pair in two accepted moves. That cuts the primary
///   scan from `O(hosts)` to `O(region + regions)` candidates.
/// * **replica moves** — `O(degree)` fast-path probes — scan every entry
///   host (plus existing replica hosts, so lifted coarse replicas can be
///   dropped). A replica only ever re-routes traffic *originating at its
///   own host*, so non-entry hosts can never profit from one and entry
///   hosts cannot be skipped without losing the paper's edge-replication
///   pattern; keeping the full entry scan is cheap precisely because the
///   replica delta never loops over origins.
fn refine_restricted(
    problem: &PlacementProblem,
    start: Placement,
    regions: &[usize],
    medoids: &[usize],
    options: &RegionalOptions,
) -> (Placement, f64) {
    let region_count = medoids.len();
    let mut region_hosts: Vec<Vec<usize>> = vec![Vec::new(); region_count];
    for (h, &r) in regions.iter().enumerate() {
        region_hosts[r].push(h);
    }
    let entry_hosts: Vec<usize> = problem.entry_hosts().iter().map(|h| h.0).collect();

    let mut eval = CostEvaluator::new(problem, start);
    let mut candidates: Vec<usize> = Vec::with_capacity(problem.hosts.len());
    for _ in 0..options.max_rounds {
        let mut best_move: Option<(Move, f64)> = None;
        for node in problem.graph.graph.node_indices() {
            let spec = &problem.graph.graph[node];
            let primary = eval.primary_of(node);

            if spec.pinned.is_none() {
                candidates.clear();
                candidates.extend_from_slice(&region_hosts[regions[primary.0]]);
                candidates.extend_from_slice(medoids);
                candidates.sort_unstable();
                candidates.dedup();
                for &h in &candidates {
                    let target = HostId(h);
                    if target != primary {
                        probe(
                            &mut eval,
                            Move::MovePrimary { node, to: target },
                            &mut best_move,
                        );
                    }
                }
            }

            if options.with_replication && spec.role.replicable() {
                candidates.clear();
                candidates.extend_from_slice(&entry_hosts);
                candidates.extend(eval.placement().replicas[node.index()].iter().map(|r| r.0));
                candidates.sort_unstable();
                candidates.dedup();
                for &h in &candidates {
                    let target = HostId(h);
                    if target == primary {
                        continue;
                    }
                    let mv = if eval.has_replica(node, target) {
                        Move::DropReplica { node, host: target }
                    } else {
                        Move::AddReplica { node, host: target }
                    };
                    probe(&mut eval, mv, &mut best_move);
                }
            }
        }
        match best_move {
            Some((mv, _)) => {
                eval.apply(mv);
                eval.commit();
            }
            None => break,
        }
    }
    let final_cost = eval.total();
    (eval.into_placement(), final_cost)
}

/// Probes `mv` (apply → delta → undo), keeping the strictest improvement.
fn probe(eval: &mut CostEvaluator, mv: Move, best: &mut Option<(Move, f64)>) {
    let delta = eval.apply(mv);
    eval.undo();
    if delta < -1e-9 && best.is_none_or(|(_, bd)| delta < bd) {
        *best = Some((mv, delta));
    }
}

/// Region-coarsened placement search (see the module docs for the
/// three-stage structure). Deterministic: union-find, medoid selection,
/// the coarse greedy solve and the restricted refinement all break ties by
/// lowest index.
pub fn solve_regional(problem: &PlacementProblem, options: &RegionalOptions) -> (Placement, f64) {
    let flat = GreedyOptions {
        max_rounds: options.max_rounds,
        with_replication: options.with_replication,
    };
    if problem.hosts.len() <= options.small_flat {
        return greedy::solve(problem, &flat);
    }

    let regions = host_regions(&problem.rtt_ms);
    let medoids = region_medoids(&problem.rtt_ms, &regions);
    if medoids.len() == problem.hosts.len() {
        // Every region is a singleton: the coarse problem *is* the flat
        // problem and restricted refinement would scan all hosts anyway.
        return greedy::solve(problem, &flat);
    }

    let coarse = coarse_problem(problem, &regions, &medoids);
    let (coarse_placement, _) = greedy::solve(&coarse, &flat);
    let start = lift(problem, &coarse_placement, &medoids);
    refine_restricted(problem, start, &regions, &medoids, options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Component, ComponentGraph, CostParams, Role};

    /// Two metro regions (hub + 2 edges each) behind a WAN, plus a main
    /// LAN: 7 hosts, 3 regions.
    fn two_region_problem() -> PlacementProblem {
        let mut g = ComponentGraph::new();
        let web = g.add(Component {
            name: "web".into(),
            role: Role::Entry,
            pinned: None,
            cpu_ms_per_call: 1.0,
            write_rate: 0.0,
        });
        let svc = g.add(Component {
            name: "svc".into(),
            role: Role::Stateless,
            pinned: None,
            cpu_ms_per_call: 2.0,
            write_rate: 0.0,
        });
        let entity = g.add(Component {
            name: "entity".into(),
            role: Role::Entity,
            pinned: None,
            cpu_ms_per_call: 1.0,
            write_rate: 0.2,
        });
        let db = g.add(Component {
            name: "db".into(),
            role: Role::Database,
            pinned: Some(HostId(0)),
            cpu_ms_per_call: 1.0,
            write_rate: 0.0,
        });
        g.interact(web, svc, 12.0, 400.0);
        g.interact(svc, entity, 9.0, 300.0);
        g.interact_write(entity, db, 1.0, 400.0);

        // Host layout: 0 = main; 1 = hub-a, 2/3 = its edges; 4 = hub-b,
        // 5/6 = its edges. Tree links (one-way ms): main↔hubs 70/110 WAN,
        // hub↔edge 9 metro. Round trips = 2 × shortest one-way path.
        let h = 7;
        let links = [
            (0, 1, 70.0),
            (0, 4, 110.0),
            (1, 2, 9.0),
            (1, 3, 9.0),
            (4, 5, 9.0),
            (4, 6, 9.0),
        ];
        let mut oneway = vec![vec![f64::INFINITY; h]; h];
        for (i, row) in oneway.iter_mut().enumerate() {
            row[i] = 0.0;
        }
        for &(a, b, ms) in &links {
            oneway[a][b] = ms;
            oneway[b][a] = ms;
        }
        for k in 0..h {
            for a in 0..h {
                for b in 0..h {
                    let through = oneway[a][k] + oneway[k][b];
                    if through < oneway[a][b] {
                        oneway[a][b] = through;
                    }
                }
            }
        }
        let rtt: Vec<Vec<f64>> = oneway
            .iter()
            .map(|row| row.iter().map(|&d| 2.0 * d).collect())
            .collect();
        let shares = [0.2, 0.0, 0.2, 0.2, 0.0, 0.2, 0.2];
        PlacementProblem {
            hosts: (0..h)
                .map(|i| Host {
                    name: format!("h{i}"),
                    entry_share: shares[i],
                    cpu_capacity: f64::INFINITY,
                })
                .collect(),
            rtt_ms: rtt,
            graph: g,
            params: CostParams::default(),
        }
    }

    #[test]
    fn regions_and_medoids_follow_the_rtt_threshold() {
        let p = two_region_problem();
        let regions = host_regions(&p.rtt_ms);
        assert_eq!(regions, vec![0, 1, 1, 1, 2, 2, 2]);
        let medoids = region_medoids(&p.rtt_ms, &regions);
        // Hubs sit 18 ms rtt from each edge; edges sit 36 ms from each
        // other — the hub minimizes the intra-region total.
        assert_eq!(medoids, vec![0, 1, 4]);
    }

    #[test]
    fn coarse_problem_sums_shares_and_remaps_pins() {
        let p = two_region_problem();
        let regions = host_regions(&p.rtt_ms);
        let medoids = region_medoids(&p.rtt_ms, &regions);
        let c = coarse_problem(&p, &regions, &medoids);
        assert_eq!(c.hosts.len(), 3);
        assert!((c.hosts[0].entry_share - 0.2).abs() < 1e-12);
        assert!((c.hosts[1].entry_share - 0.4).abs() < 1e-12);
        assert!((c.hosts[2].entry_share - 0.4).abs() < 1e-12);
        assert!(c.validate().is_ok());
        let db = c.graph.by_name("db").unwrap();
        assert_eq!(c.graph.graph[db].pinned, Some(HostId(0)));
    }

    /// On a problem small enough for both, the coarsened solver must land
    /// within 1e-9 of the flat greedy solver (here: by delegation).
    #[test]
    fn small_graphs_match_flat_greedy_exactly() {
        let p = two_region_problem();
        let (_, flat) = greedy::solve(&p, &GreedyOptions::default());
        let (placement, coarse) = solve_regional(&p, &RegionalOptions::default());
        assert!(placement.respects_pins(&p));
        assert!(
            (coarse - flat).abs() <= 1e-9 * flat.abs().max(1.0),
            "coarse {coarse} flat {flat}"
        );
    }

    /// Force the coarsened path (small_flat = 0) on the same instance: the
    /// restricted search must still respect pins and never lose to the
    /// flat search by more than the intra-region slack it trades away.
    #[test]
    fn forced_coarsening_stays_close_to_flat() {
        let p = two_region_problem();
        let (_, flat) = greedy::solve(&p, &GreedyOptions::default());
        let options = RegionalOptions {
            small_flat: 0,
            ..Default::default()
        };
        let (placement, coarse) = solve_regional(&p, &options);
        assert!(placement.respects_pins(&p));
        assert!(
            coarse >= flat - 1e-9,
            "coarse search beat the superset scan"
        );
        assert!(
            coarse <= flat * 1.05 + 1e-9,
            "coarse {coarse} too far from flat {flat}"
        );
    }

    /// All-singleton regions short-circuit to the flat solver.
    #[test]
    fn singleton_regions_delegate_to_flat() {
        let mut p = two_region_problem();
        for row in &mut p.rtt_ms {
            for v in row.iter_mut() {
                if *v != 0.0 {
                    *v = v.max(100.0);
                }
            }
        }
        let options = RegionalOptions {
            small_flat: 0,
            ..Default::default()
        };
        let (_, flat) = greedy::solve(&p, &GreedyOptions::default());
        let (_, coarse) = solve_regional(&p, &options);
        assert!((coarse - flat).abs() <= 1e-9 * flat.abs().max(1.0));
    }
}
