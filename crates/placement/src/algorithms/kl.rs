//! Kernighan–Lin two-way partition refinement.
//!
//! Operates on an undirected collapse of the interaction graph: the weight
//! between two components is their total interaction rate (both directions),
//! scaled by the RTT between the two candidate hosts. Pinned components are
//! locked to their side. The classic KL pass computes gains for swapping
//! unlocked vertex pairs and applies the best prefix of swaps; passes repeat
//! until no pass improves the cut.

use crate::graph::{HostId, Placement, PlacementProblem};

/// Builds the symmetric weight matrix (interaction rates, both directions).
fn weights(problem: &PlacementProblem) -> Vec<Vec<f64>> {
    let n = problem.graph.len();
    let mut w = vec![vec![0.0; n]; n];
    for edge in problem.graph.graph.edge_references() {
        let (a, b) = (edge.source().index(), edge.target().index());
        if a != b {
            w[a][b] += edge.weight().calls_per_sec;
            w[b][a] += edge.weight().calls_per_sec;
        }
    }
    w
}

/// The weighted cut between the two sides (`side[i]` ∈ {false, true}).
pub fn cut_weight(problem: &PlacementProblem, side: &[bool]) -> f64 {
    let w = weights(problem);
    let mut cut = 0.0;
    for i in 0..side.len() {
        for j in (i + 1)..side.len() {
            if side[i] != side[j] {
                cut += w[i][j];
            }
        }
    }
    cut
}

/// Refines a two-way split of the components between `host_a` (side false)
/// and `host_b` (side true), minimizing the weighted cut. Returns the side
/// assignment.
pub fn refine(
    problem: &PlacementProblem,
    host_a: HostId,
    host_b: HostId,
    mut side: Vec<bool>,
) -> Vec<bool> {
    let n = problem.graph.len();
    assert_eq!(side.len(), n, "side assignment arity mismatch");
    let w = weights(problem);

    // Lock pinned components onto their side.
    let mut locked_base = vec![false; n];
    for node in problem.graph.graph.node_indices() {
        if let Some(pin) = problem.graph.graph[node].pinned {
            let i = node.index();
            locked_base[i] = true;
            if pin == host_a {
                side[i] = false;
            } else if pin == host_b {
                side[i] = true;
            }
        }
    }

    // D-value: external minus internal connection weight.
    let d_value = |side: &[bool], i: usize| -> f64 {
        let mut d = 0.0;
        for j in 0..n {
            if j == i {
                continue;
            }
            if side[j] != side[i] {
                d += w[i][j];
            } else {
                d -= w[i][j];
            }
        }
        d
    };

    for _pass in 0..n.max(4) {
        let mut locked = locked_base.clone();
        let mut work = side.clone();
        let mut swaps: Vec<(usize, usize, f64)> = Vec::new();

        loop {
            // Best unlocked cross-side pair by KL gain.
            let mut best: Option<(usize, usize, f64)> = None;
            for i in 0..n {
                if locked[i] || work[i] {
                    continue;
                }
                for j in 0..n {
                    if locked[j] || !work[j] {
                        continue;
                    }
                    let gain = d_value(&work, i) + d_value(&work, j) - 2.0 * w[i][j];
                    if best.is_none_or(|(_, _, g)| gain > g) {
                        best = Some((i, j, gain));
                    }
                }
            }
            let Some((i, j, gain)) = best else {
                break;
            };
            work.swap(i, j);
            locked[i] = true;
            locked[j] = true;
            swaps.push((i, j, gain));
        }

        // Apply the best positive prefix of swaps.
        let mut best_prefix = 0;
        let mut best_sum = 0.0;
        let mut sum = 0.0;
        for (k, &(_, _, g)) in swaps.iter().enumerate() {
            sum += g;
            if sum > best_sum {
                best_sum = sum;
                best_prefix = k + 1;
            }
        }
        if best_prefix == 0 {
            break;
        }
        for &(i, j, _) in &swaps[..best_prefix] {
            side.swap(i, j);
        }
    }
    side
}

/// Two-way placement: partitions all components between `host_a` and
/// `host_b` starting from everything-on-`host_a`, then converts to a
/// [`Placement`].
pub fn solve_two_way(problem: &PlacementProblem, host_a: HostId, host_b: HostId) -> Placement {
    let n = problem.graph.len();
    // Seed: alternate sides for balance, entry components toward host_b if
    // it carries entry share (clients live there).
    let seed: Vec<bool> = (0..n).map(|i| i % 2 == 1).collect();
    let side = refine(problem, host_a, host_b, seed);
    let mut placement = Placement::all_on(problem, host_a);
    for (i, &s) in side.iter().enumerate() {
        placement.primary[i] = if s { host_b } else { host_a };
    }
    placement.repair_pins(problem);
    placement
}

/// Recursive KL bisection into one part per host: hosts are split into two
/// groups (balanced by entry share), components KL-partitioned between them,
/// then each side recurses. Pinned components steer their sub-problems.
///
/// The cut objective KL refines is a rate-only proxy; a short incremental
/// polish against the *true* wide-area cost (primary moves only, priced by
/// the delta [`CostEvaluator`](crate::cost::incremental::CostEvaluator))
/// finishes the placement.
pub fn solve_recursive(problem: &PlacementProblem) -> Placement {
    let all_hosts: Vec<HostId> = (0..problem.hosts.len()).map(HostId).collect();
    let all_nodes: Vec<usize> = (0..problem.graph.len()).collect();
    let mut placement = Placement::all_on(problem, HostId(0));
    bisect(problem, &all_hosts, &all_nodes, &mut placement);
    placement.repair_pins(problem);
    crate::algorithms::polish_primaries(problem, placement).0
}

fn bisect(
    problem: &PlacementProblem,
    hosts: &[HostId],
    nodes: &[usize],
    placement: &mut Placement,
) {
    match hosts {
        [] => {}
        [single] => {
            for &n in nodes {
                placement.primary[n] = *single;
            }
        }
        _ => {
            let mid = hosts.len() / 2;
            let (left, right) = hosts.split_at(mid.max(1));
            // Two representative hosts anchor the KL refinement.
            let (host_a, host_b) = (left[0], right[0]);
            // Seed: keep nodes pinned inside either group on that side.
            let mut side = vec![false; problem.graph.len()];
            for (i, &n) in nodes.iter().enumerate() {
                let node = petgraph::graph::NodeIndex::new(n);
                side[n] = match problem.graph.graph[node].pinned {
                    Some(p) if left.contains(&p) => false,
                    Some(p) if right.contains(&p) => true,
                    _ => i % 2 == 1,
                };
            }
            let refined = refine(problem, host_a, host_b, side);
            let left_nodes: Vec<usize> = nodes.iter().copied().filter(|&n| !refined[n]).collect();
            let right_nodes: Vec<usize> = nodes.iter().copied().filter(|&n| refined[n]).collect();
            bisect(problem, left, &left_nodes, placement);
            bisect(problem, right, &right_nodes, placement);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Component, ComponentGraph, CostParams, Host, Role};

    /// Two tightly-coupled clusters joined by one weak edge; the optimal cut
    /// severs the weak edge.
    fn clustered() -> (PlacementProblem, Vec<petgraph::graph::NodeIndex>) {
        let mut g = ComponentGraph::new();
        let mut nodes = Vec::new();
        for i in 0..6 {
            let pinned = match i {
                0 => Some(HostId(0)),
                5 => Some(HostId(1)),
                _ => None,
            };
            nodes.push(g.add(Component {
                name: format!("c{i}"),
                role: if pinned.is_some() {
                    Role::Database
                } else {
                    Role::Stateless
                },
                pinned,
                cpu_ms_per_call: 1.0,
                write_rate: 0.0,
            }));
        }
        // Cluster A: 0-1-2 heavily coupled; cluster B: 3-4-5.
        for &(a, b) in &[(0, 1), (1, 2), (0, 2)] {
            g.interact(nodes[a], nodes[b], 50.0, 0.0);
        }
        for &(a, b) in &[(3, 4), (4, 5), (3, 5)] {
            g.interact(nodes[a], nodes[b], 50.0, 0.0);
        }
        g.interact(nodes[2], nodes[3], 1.0, 0.0); // the weak bridge
        let problem = PlacementProblem {
            hosts: vec![
                Host {
                    name: "h0".into(),
                    entry_share: 1.0,
                    cpu_capacity: f64::INFINITY,
                },
                Host {
                    name: "h1".into(),
                    entry_share: 0.0,
                    cpu_capacity: f64::INFINITY,
                },
            ],
            rtt_ms: vec![vec![0.0, 100.0], vec![100.0, 0.0]],
            graph: g,
            params: CostParams::default(),
        };
        (problem, nodes)
    }

    #[test]
    fn kl_finds_the_weak_bridge() {
        let (p, nodes) = clustered();
        let side = refine(
            &p,
            HostId(0),
            HostId(1),
            vec![false, true, false, true, false, true],
        );
        // Clusters end up whole on opposite sides.
        assert_eq!(side[nodes[0].index()], side[nodes[1].index()]);
        assert_eq!(side[nodes[1].index()], side[nodes[2].index()]);
        assert_eq!(side[nodes[3].index()], side[nodes[4].index()]);
        assert_eq!(side[nodes[4].index()], side[nodes[5].index()]);
        assert_ne!(side[nodes[0].index()], side[nodes[5].index()]);
        assert!((cut_weight(&p, &side) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pinned_components_stay_locked() {
        let (p, nodes) = clustered();
        let side = refine(&p, HostId(0), HostId(1), vec![true; 6]);
        assert!(!side[nodes[0].index()], "db0 locked to host a");
        assert!(side[nodes[5].index()], "db5 locked to host b");
    }

    #[test]
    fn solve_two_way_yields_valid_placement() {
        let (p, nodes) = clustered();
        let placement = solve_two_way(&p, HostId(0), HostId(1));
        assert!(placement.respects_pins(&p));
        assert_eq!(
            placement.primary[nodes[1].index()],
            placement.primary[nodes[2].index()]
        );
    }

    #[test]
    fn recursive_bisection_covers_three_hosts() {
        // Three pinned chains, three hosts.
        let mut g = ComponentGraph::new();
        let mut nodes = Vec::new();
        for c in 0..3 {
            for i in 0..4 {
                let pinned = if i == 0 { Some(HostId(c)) } else { None };
                let n = g.add(Component {
                    name: format!("c{c}-{i}"),
                    role: if pinned.is_some() {
                        Role::Database
                    } else {
                        Role::Stateless
                    },
                    pinned,
                    cpu_ms_per_call: 1.0,
                    write_rate: 0.0,
                });
                if i > 0 {
                    g.interact(nodes[c * 4 + i - 1], n, 30.0, 0.0);
                }
                nodes.push(n);
            }
        }
        let problem = PlacementProblem {
            hosts: (0..3)
                .map(|i| Host {
                    name: format!("h{i}"),
                    entry_share: 1.0 / 3.0,
                    cpu_capacity: f64::INFINITY,
                })
                .collect(),
            rtt_ms: vec![
                vec![0.0, 200.0, 200.0],
                vec![200.0, 0.0, 200.0],
                vec![200.0, 200.0, 0.0],
            ],
            graph: g,
            params: CostParams::default(),
        };
        let placement = solve_recursive(&problem);
        assert!(placement.respects_pins(&problem));
        let used: std::collections::BTreeSet<_> = placement.primary.iter().collect();
        assert!(
            used.len() >= 2,
            "recursive bisection uses several hosts: {used:?}"
        );
    }

    #[test]
    fn refinement_never_increases_the_cut() {
        let (p, _) = clustered();
        for seed in [
            vec![false, false, true, true, false, true],
            vec![true, false, true, false, true, true],
            vec![false, true, true, false, false, true],
        ] {
            // Apply pin locking to the seed for a fair before/after.
            let mut locked_seed = seed.clone();
            locked_seed[0] = false;
            locked_seed[5] = true;
            let before = cut_weight(&p, &locked_seed);
            let side = refine(&p, HostId(0), HostId(1), seed);
            let after = cut_weight(&p, &side);
            assert!(after <= before + 1e-9, "cut {before} -> {after}");
        }
    }
}
