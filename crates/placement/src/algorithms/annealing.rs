//! Simulated annealing over placements with replication moves.
//!
//! Escapes the local optima that best-improvement hill-climbing can fall
//! into (e.g. chicken-and-egg chains where a façade replica only pays off
//! once its entity replica exists, and vice versa). Deterministic given the
//! seed.
//!
//! Moves are priced through the incremental [`CostEvaluator`]: accepting a
//! move is a no-op (the evaluator already holds the new state) and
//! rejecting one is a single `undo`, so each annealing step costs
//! `O(degree × hosts)` instead of a whole-graph cost sweep. The freed
//! budget is spent on a deeper default schedule (see
//! [`AnnealingOptions::default`]).

use mutsvc_desim::rng::SimRng;

use crate::cost::incremental::{CostEvaluator, Move};
use crate::graph::{HostId, Placement, PlacementProblem, Role};

/// Annealing schedule parameters.
#[derive(Debug, Clone)]
pub struct AnnealingOptions {
    /// Moves attempted at each temperature step.
    pub moves_per_step: usize,
    /// Number of temperature steps.
    pub steps: usize,
    /// Initial temperature as a fraction of the starting cost.
    pub initial_temperature: f64,
    /// Geometric cooling factor per step.
    pub cooling: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AnnealingOptions {
    fn default() -> Self {
        // 160 × 450 = 72k moves ≈ 10× the pre-incremental default (120 × 60):
        // delta evaluation made each move ~2 orders of magnitude cheaper, so
        // the default schedule explores deeper at the same wall-clock.
        AnnealingOptions {
            moves_per_step: 450,
            steps: 160,
            initial_temperature: 0.2,
            cooling: 0.95,
            seed: 42,
        }
    }
}

/// Runs simulated annealing from `start`, returning the best placement seen.
pub fn anneal(
    problem: &PlacementProblem,
    start: Placement,
    options: &AnnealingOptions,
) -> (Placement, f64) {
    let mut rng = SimRng::seed_from_u64(options.seed);
    let mut start = start;
    start.repair_pins(problem);
    let mut eval = CostEvaluator::new(problem, start);
    let mut best = eval.placement().clone();
    let mut best_cost = eval.total();
    // Scale the temperature to the starting cost. A positive floor exists
    // only to keep the Metropolis ratio well-defined: the previous floor of
    // 1.0 ms/s over-heated near-zero-cost starts (any already-good placement
    // was churned as if it were bad); MIN_POSITIVE degrades gracefully to
    // accept-improving-moves-only when the start is already free.
    let temperature0 = best_cost * options.initial_temperature;
    let mut temperature = temperature0.max(f64::MIN_POSITIVE);

    let nodes: Vec<_> = problem.graph.graph.node_indices().collect();
    let hosts = problem.hosts.len();

    for _ in 0..options.steps {
        for _ in 0..options.moves_per_step {
            let node = nodes[rng.index(nodes.len())];
            let spec = &problem.graph.graph[node];
            let target = HostId(rng.index(hosts));

            let replica_move = spec.role.replicable()
                && spec.role != Role::Entry
                && rng.chance(0.5)
                && eval.primary_of(node) != target;
            let mv = if replica_move {
                if eval.has_replica(node, target) {
                    Move::DropReplica { node, host: target }
                } else {
                    Move::AddReplica { node, host: target }
                }
            } else {
                if spec.pinned.is_some() || eval.primary_of(node) == target {
                    continue;
                }
                Move::MovePrimary { node, to: target }
            };

            let delta = eval.apply(mv);
            let accept = delta <= 0.0 || rng.chance((-delta / temperature).exp());
            if accept {
                eval.commit();
                let current_cost = eval.total();
                if current_cost < best_cost {
                    best_cost = current_cost;
                    best = eval.placement().clone();
                }
            } else {
                eval.undo();
            }
        }
        temperature *= options.cooling;
    }
    (best, best_cost)
}

/// Anneals from the all-on-main start.
pub fn solve(problem: &PlacementProblem, options: &AnnealingOptions) -> (Placement, f64) {
    anneal(problem, Placement::all_on(problem, HostId(0)), options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::greedy::{solve as greedy, GreedyOptions};
    use crate::cost::cost;
    use crate::derive::{petstore_problem, rubis_problem};

    #[test]
    fn annealing_matches_greedy_on_the_derived_problems() {
        for (name, problem) in [
            ("petstore", petstore_problem().0),
            ("rubis", rubis_problem().0),
        ] {
            let (_, greedy_cost) = greedy(&problem, &GreedyOptions::default());
            let (placement, annealed_cost) = solve(&problem, &AnnealingOptions::default());
            assert!(placement.respects_pins(&problem));
            assert!(
                annealed_cost <= greedy_cost * 1.15,
                "{name}: annealed {annealed_cost:.0} vs greedy {greedy_cost:.0}"
            );
        }
    }

    #[test]
    fn annealing_is_deterministic_per_seed() {
        let (problem, _) = rubis_problem();
        let a = solve(&problem, &AnnealingOptions::default());
        let b = solve(&problem, &AnnealingOptions::default());
        assert_eq!(a.1.to_bits(), b.1.to_bits());
        assert_eq!(a.0, b.0);
        let c = solve(
            &problem,
            &AnnealingOptions {
                seed: 7,
                ..Default::default()
            },
        );
        // Different seeds explore differently (costs may coincide, the
        // trajectory rarely does — compare placements loosely).
        let _ = c;
    }

    #[test]
    fn annealing_improves_on_the_centralized_start() {
        let (problem, _) = petstore_problem();
        let start_cost = cost(&problem, &Placement::all_on(&problem, HostId(0)));
        let (_, annealed) = solve(&problem, &AnnealingOptions::default());
        assert!(
            annealed < start_cost / 2.0,
            "{annealed:.0} vs start {start_cost:.0}"
        );
    }
}
