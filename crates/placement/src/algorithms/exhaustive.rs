//! Exhaustive search over primary assignments (no replication).
//!
//! Exponential — use only for small graphs (≲ 12 free components on 3
//! hosts). Serves as the optimality oracle for the heuristic algorithms.
//!
//! Candidates are visited by mutating a single [`CostEvaluator`] in place:
//! each odometer tick is one (amortized) primary move priced by delta
//! evaluation, instead of a full `Placement` rebuild plus `repair_pins`
//! plus whole-graph cost sweep per candidate.

use petgraph::graph::NodeIndex;

use crate::cost::incremental::{CostEvaluator, Move};
use crate::graph::{HostId, Placement, PlacementProblem};

/// Finds the cost-minimal primary-only placement by enumeration.
///
/// # Panics
///
/// Panics if the search space exceeds `10^7` candidates (guard against
/// accidental exponential blow-up).
pub fn solve(problem: &PlacementProblem) -> (Placement, f64) {
    let free: Vec<NodeIndex> = problem
        .graph
        .graph
        .node_indices()
        .filter(|&n| problem.graph.graph[n].pinned.is_none())
        .collect();
    let h = problem.hosts.len();
    let space = (h as f64).powi(free.len() as i32);
    assert!(space <= 1e7, "exhaustive search space too large: {space}");

    // The all-zeros odometer state IS the all-on-host-0 start (pins repaired
    // by `all_on`); every subsequent candidate is one in-place move away.
    let mut eval = CostEvaluator::new(problem, Placement::all_on(problem, HostId(0)));
    let mut best = eval.placement().clone();
    let mut best_cost = eval.total();

    let mut assignment = vec![0usize; free.len()];
    loop {
        // Odometer increment, mutating the evaluator digit by digit.
        let mut i = 0;
        loop {
            if i == assignment.len() {
                return (best, best_cost);
            }
            assignment[i] += 1;
            if assignment[i] < h {
                eval.apply(Move::MovePrimary {
                    node: free[i],
                    to: HostId(assignment[i]),
                });
                break;
            }
            assignment[i] = 0;
            eval.apply(Move::MovePrimary {
                node: free[i],
                to: HostId(0),
            });
            i += 1;
        }
        eval.commit();
        let c = eval.total();
        if c < best_cost {
            best_cost = c;
            best = eval.placement().clone();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Component, ComponentGraph, CostParams, Host, Role};

    #[test]
    fn exhaustive_colocates_a_chatty_chain() {
        // a -(100/s)- b -(1/s)- db@h0 ; entry at h1 only.
        let mut g = ComponentGraph::new();
        let web = g.add(Component {
            name: "web".into(),
            role: Role::Entry,
            pinned: None,
            cpu_ms_per_call: 1.0,
            write_rate: 0.0,
        });
        let a = g.add(Component {
            name: "a".into(),
            role: Role::Stateless,
            pinned: None,
            cpu_ms_per_call: 1.0,
            write_rate: 0.0,
        });
        let b = g.add(Component {
            name: "b".into(),
            role: Role::Stateless,
            pinned: None,
            cpu_ms_per_call: 1.0,
            write_rate: 0.0,
        });
        let db = g.add(Component {
            name: "db".into(),
            role: Role::Database,
            pinned: Some(HostId(0)),
            cpu_ms_per_call: 1.0,
            write_rate: 0.0,
        });
        g.interact(web, a, 10.0, 0.0);
        g.interact(a, b, 100.0, 0.0);
        g.interact(b, db, 1.0, 0.0);
        let problem = PlacementProblem {
            hosts: vec![
                Host {
                    name: "h0".into(),
                    entry_share: 0.0,
                    cpu_capacity: f64::INFINITY,
                },
                Host {
                    name: "h1".into(),
                    entry_share: 1.0,
                    cpu_capacity: f64::INFINITY,
                },
            ],
            rtt_ms: vec![vec![0.0, 100.0], vec![100.0, 0.0]],
            graph: g,
            params: CostParams::default(),
        };
        let (placement, c) = solve(&problem);
        // a and b belong together at the entry host; only b->db crosses.
        assert_eq!(placement.primary[a.index()], HostId(1));
        assert_eq!(placement.primary[b.index()], HostId(1));
        assert!((c - 1.0 * 100.0 * 1.65).abs() < 1.0, "cost {c}");
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn blowup_guard() {
        let mut g = ComponentGraph::new();
        for i in 0..40 {
            g.add(Component {
                name: format!("c{i}"),
                role: Role::Stateless,
                pinned: None,
                cpu_ms_per_call: 1.0,
                write_rate: 0.0,
            });
        }
        let problem = PlacementProblem {
            hosts: vec![
                Host {
                    name: "h0".into(),
                    entry_share: 1.0,
                    cpu_capacity: f64::INFINITY,
                },
                Host {
                    name: "h1".into(),
                    entry_share: 0.0,
                    cpu_capacity: f64::INFINITY,
                },
            ],
            rtt_ms: vec![vec![0.0, 1.0], vec![1.0, 0.0]],
            graph: g,
            params: CostParams::default(),
        };
        let _ = solve(&problem);
    }
}
