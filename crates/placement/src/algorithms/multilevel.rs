//! METIS-style multilevel k-way partitioning.
//!
//! The classic three-phase scheme:
//!
//! 1. **Coarsening** — heavy-edge matching collapses strongly interacting
//!    component pairs into super-vertices until the graph is small;
//! 2. **Initial partitioning** — greedy balanced growth assigns the coarse
//!    vertices to `k` parts (one per host), seeding each part with its
//!    pinned vertices;
//! 3. **Uncoarsening + refinement** — the partition is projected back level
//!    by level, with boundary moves applied whenever they reduce the
//!    weighted cut without violating the balance constraint.
//!
//! The cut objective weights each crossing edge by the RTT between its
//! parts' hosts, so "far" hosts repel chatty component pairs more than
//! "near" ones — a wide-area-aware twist on the standard algorithm.

use std::collections::HashMap;

use crate::graph::{HostId, Placement, PlacementProblem};

/// Options for the multilevel partitioner.
#[derive(Debug, Clone)]
pub struct MultilevelOptions {
    /// Stop coarsening below this many vertices.
    pub coarsen_until: usize,
    /// Allowed imbalance: a part may carry up to `(1 + tolerance) × avg`
    /// vertex weight.
    pub balance_tolerance: f64,
    /// Refinement rounds per level.
    pub refine_rounds: usize,
}

impl Default for MultilevelOptions {
    fn default() -> Self {
        MultilevelOptions {
            coarsen_until: 12,
            balance_tolerance: 1.5,
            refine_rounds: 8,
        }
    }
}

/// One level of the coarsening hierarchy.
#[derive(Debug, Clone)]
struct Level {
    /// Symmetric adjacency (upper triangle mirrored), by coarse vertex.
    adj: Vec<HashMap<usize, f64>>,
    /// Vertex weights (aggregated CPU load).
    vweight: Vec<f64>,
    /// Pinned part per coarse vertex, if any.
    pinned: Vec<Option<usize>>,
    /// Mapping from the previous (finer) level's vertices to this level's.
    map_from_finer: Vec<usize>,
}

fn base_level(problem: &PlacementProblem) -> Level {
    let n = problem.graph.len();
    let mut adj: Vec<HashMap<usize, f64>> = vec![HashMap::new(); n];
    for edge in problem.graph.graph.edge_references() {
        let (a, b) = (edge.source().index(), edge.target().index());
        if a == b {
            continue;
        }
        let w = edge.weight().calls_per_sec;
        *adj[a].entry(b).or_insert(0.0) += w;
        *adj[b].entry(a).or_insert(0.0) += w;
    }
    let mut vweight = vec![0.0; n];
    let mut pinned = vec![None; n];
    for node in problem.graph.graph.node_indices() {
        let c = &problem.graph.graph[node];
        vweight[node.index()] = c.cpu_ms_per_call * problem.graph.read_rate(node).max(1.0);
        pinned[node.index()] = c.pinned.map(|h| h.0);
    }
    Level {
        adj,
        vweight,
        pinned,
        map_from_finer: (0..n).collect(),
    }
}

/// Heavy-edge matching: visit vertices in order of decreasing total edge
/// weight, match each unmatched vertex with its heaviest unmatched neighbour
/// (never merging two differently-pinned vertices).
fn coarsen(level: &Level) -> Option<Level> {
    let n = level.adj.len();
    let mut order: Vec<usize> = (0..n).collect();
    let degree: Vec<f64> = level.adj.iter().map(|a| a.values().sum()).collect();
    order.sort_by(|&a, &b| degree[b].total_cmp(&degree[a]));

    let mut matched = vec![usize::MAX; n];
    let mut merged = 0;
    for &v in &order {
        if matched[v] != usize::MAX {
            continue;
        }
        let mut best: Option<(usize, f64)> = None;
        for (&u, &w) in &level.adj[v] {
            if matched[u] != usize::MAX {
                continue;
            }
            let pin_conflict = matches!(
                (level.pinned[v], level.pinned[u]),
                (Some(a), Some(b)) if a != b
            );
            if pin_conflict {
                continue;
            }
            if best.is_none_or(|(_, bw)| w > bw) {
                best = Some((u, w));
            }
        }
        if let Some((u, _)) = best {
            matched[v] = u;
            matched[u] = v;
            merged += 1;
        } else {
            matched[v] = v;
        }
    }
    if merged == 0 {
        return None;
    }

    // Assign coarse ids.
    let mut coarse_id = vec![usize::MAX; n];
    let mut next = 0;
    for v in 0..n {
        if coarse_id[v] != usize::MAX {
            continue;
        }
        coarse_id[v] = next;
        let m = matched[v];
        if m != v && coarse_id[m] == usize::MAX {
            coarse_id[m] = next;
        }
        next += 1;
    }

    let mut adj: Vec<HashMap<usize, f64>> = vec![HashMap::new(); next];
    let mut vweight = vec![0.0; next];
    let mut pinned: Vec<Option<usize>> = vec![None; next];
    for v in 0..n {
        let cv = coarse_id[v];
        vweight[cv] += level.vweight[v];
        if let Some(p) = level.pinned[v] {
            pinned[cv] = Some(p);
        }
        for (&u, &w) in &level.adj[v] {
            let cu = coarse_id[u];
            if cu != cv {
                *adj[cv].entry(cu).or_insert(0.0) += w / 2.0; // each edge seen twice
            }
        }
    }
    Some(Level {
        adj,
        vweight,
        pinned,
        map_from_finer: coarse_id,
    })
}

/// Greedy balanced initial partition of the coarsest level into `k` parts.
fn initial_partition(level: &Level, k: usize, tolerance: f64) -> Vec<usize> {
    let n = level.adj.len();
    let total: f64 = level.vweight.iter().sum();
    let cap = total / k as f64 * (1.0 + tolerance);
    let mut part = vec![usize::MAX; n];
    let mut load = vec![0.0; k];

    // Seed with pinned vertices.
    for v in 0..n {
        if let Some(p) = level.pinned[v] {
            part[v] = p.min(k - 1);
            load[part[v]] += level.vweight[v];
        }
    }
    // Assign remaining vertices in decreasing weight order to the part with
    // the strongest connection (ties → lightest part).
    let mut order: Vec<usize> = (0..n).filter(|&v| part[v] == usize::MAX).collect();
    order.sort_by(|&a, &b| level.vweight[b].total_cmp(&level.vweight[a]));
    for v in order {
        let mut gain = vec![0.0; k];
        for (&u, &w) in &level.adj[v] {
            if part[u] != usize::MAX {
                gain[part[u]] += w;
            }
        }
        let mut best = 0;
        for p in 1..k {
            let better = (gain[p], -load[p]) > (gain[best], -load[best]);
            let fits = load[p] + level.vweight[v] <= cap || load[p] < load[best];
            if better && fits {
                best = p;
            }
        }
        if load[best] + level.vweight[v] > cap {
            // Overflow: fall back to the lightest part.
            best = (0..k).min_by(|&a, &b| load[a].total_cmp(&load[b])).unwrap();
        }
        part[v] = best;
        load[best] += level.vweight[v];
    }
    part
}

/// Boundary refinement: move vertices to the part with maximal RTT-weighted
/// gain, respecting pins and balance.
fn refine_level(
    level: &Level,
    rtt: &[Vec<f64>],
    part: &mut [usize],
    k: usize,
    tolerance: f64,
    rounds: usize,
) {
    let n = level.adj.len();
    let total: f64 = level.vweight.iter().sum();
    let cap = total / k as f64 * (1.0 + tolerance);
    let mut load = vec![0.0; k];
    for v in 0..n {
        load[part[v]] += level.vweight[v];
    }
    for _ in 0..rounds {
        let mut moved = false;
        for v in 0..n {
            if level.pinned[v].is_some() {
                continue;
            }
            let current = part[v];
            // Connection cost of v toward each candidate part.
            let cost_in = |p: usize| -> f64 {
                level.adj[v]
                    .iter()
                    .map(|(&u, &w)| {
                        let pu = if u == v { p } else { part[u] };
                        if pu == p {
                            0.0
                        } else {
                            w * rtt[p][pu]
                        }
                    })
                    .sum()
            };
            let here = cost_in(current);
            let mut best = (current, 0.0f64);
            for (p, &part_load) in load.iter().enumerate().take(k) {
                if p == current || part_load + level.vweight[v] > cap {
                    continue;
                }
                let gain = here - cost_in(p);
                if gain > best.1 + 1e-9 {
                    best = (p, gain);
                }
            }
            if best.0 != current {
                load[current] -= level.vweight[v];
                load[best.0] += level.vweight[v];
                part[v] = best.0;
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }
}

/// Partitions the components across all hosts (one part per host) and
/// returns the per-component host assignment.
pub fn partition(problem: &PlacementProblem, options: &MultilevelOptions) -> Vec<HostId> {
    let k = problem.hosts.len();
    let base = base_level(problem);
    let mut hierarchy = vec![base];
    while hierarchy.last().expect("nonempty").adj.len() > options.coarsen_until {
        match coarsen(hierarchy.last().expect("nonempty")) {
            Some(next) => hierarchy.push(next),
            None => break,
        }
    }

    let coarsest = hierarchy.last().expect("nonempty");
    let mut part = initial_partition(coarsest, k, options.balance_tolerance);
    refine_level(
        coarsest,
        &problem.rtt_ms,
        &mut part,
        k,
        options.balance_tolerance,
        options.refine_rounds,
    );

    // Project back down the hierarchy, refining at each level.
    for idx in (1..hierarchy.len()).rev() {
        let finer = &hierarchy[idx - 1];
        let map = &hierarchy[idx].map_from_finer;
        let mut finer_part = vec![0usize; finer.adj.len()];
        for v in 0..finer.adj.len() {
            finer_part[v] = part[map[v]];
        }
        part = finer_part;
        refine_level(
            finer,
            &problem.rtt_ms,
            &mut part,
            k,
            options.balance_tolerance,
            options.refine_rounds,
        );
    }
    part.into_iter().map(HostId).collect()
}

/// Runs the partitioner and wraps the result as a [`Placement`]
/// (primaries only; combine with greedy replication for the full pattern).
///
/// The multilevel cut is refined against the rate×RTT proxy objective; the
/// wrapped placement gets a final bounded polish against the true wide-area
/// cost through the incremental
/// [`CostEvaluator`](crate::cost::incremental::CostEvaluator).
pub fn solve(problem: &PlacementProblem, options: &MultilevelOptions) -> Placement {
    let assignment = partition(problem, options);
    let mut placement = Placement::all_on(problem, HostId(0));
    for (i, host) in assignment.into_iter().enumerate() {
        placement.primary[i] = host;
    }
    placement.repair_pins(problem);
    crate::algorithms::polish_primaries(problem, placement).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::cost;
    use crate::graph::{Component, ComponentGraph, CostParams, Host, Role};

    /// `clusters` chains of `size` components each, chained internally with
    /// heavy edges; cluster heads pinned round-robin across hosts.
    fn chained_clusters(clusters: usize, size: usize, k: usize) -> PlacementProblem {
        let mut g = ComponentGraph::new();
        let mut all = Vec::new();
        for c in 0..clusters {
            let mut prev = None;
            for i in 0..size {
                let pinned = if i == 0 { Some(HostId(c % k)) } else { None };
                let node = g.add(Component {
                    name: format!("c{c}-{i}"),
                    role: if pinned.is_some() {
                        Role::Database
                    } else {
                        Role::Stateless
                    },
                    pinned,
                    cpu_ms_per_call: 1.0,
                    write_rate: 0.0,
                });
                if let Some(p) = prev {
                    g.interact(p, node, 40.0, 0.0);
                }
                prev = Some(node);
                all.push(node);
            }
        }
        // Weak inter-cluster links.
        for c in 1..clusters {
            g.interact(all[(c - 1) * size], all[c * size], 0.5, 0.0);
        }
        let hosts = (0..k)
            .map(|i| Host {
                name: format!("h{i}"),
                entry_share: 1.0 / k as f64,
                cpu_capacity: f64::INFINITY,
            })
            .collect();
        let rtt = (0..k)
            .map(|i| (0..k).map(|j| if i == j { 0.0 } else { 200.0 }).collect())
            .collect();
        PlacementProblem {
            hosts,
            rtt_ms: rtt,
            graph: g,
            params: CostParams::default(),
        }
    }

    #[test]
    fn clusters_stay_whole() {
        let p = chained_clusters(3, 6, 3);
        let assignment = partition(&p, &MultilevelOptions::default());
        // Every chain ends up entirely on its pinned head's host.
        for c in 0..3 {
            let head = assignment[c * 6];
            for i in 0..6 {
                assert_eq!(assignment[c * 6 + i], head, "cluster {c} split");
            }
            assert_eq!(head, HostId(c));
        }
    }

    #[test]
    fn respects_pins_and_covers_all_hosts() {
        let p = chained_clusters(4, 5, 2);
        let placement = solve(&p, &MultilevelOptions::default());
        assert!(placement.respects_pins(&p));
        let used: std::collections::BTreeSet<_> = placement.primary.iter().collect();
        assert_eq!(used.len(), 2, "both hosts used");
    }

    #[test]
    fn multilevel_beats_naive_centralization_on_distributed_pins() {
        let p = chained_clusters(3, 8, 3);
        let ml = solve(&p, &MultilevelOptions::default());
        let naive = Placement::all_on(&p, HostId(0));
        // repair_pins scatters only the pinned heads; the chains then cross.
        assert!(
            cost(&p, &ml) < cost(&p, &naive),
            "{} vs {}",
            cost(&p, &ml),
            cost(&p, &naive)
        );
    }

    #[test]
    fn coarsening_terminates_on_edgeless_graphs() {
        let mut g = ComponentGraph::new();
        for i in 0..20 {
            g.add(Component {
                name: format!("c{i}"),
                role: Role::Stateless,
                pinned: None,
                cpu_ms_per_call: 1.0,
                write_rate: 0.0,
            });
        }
        let p = PlacementProblem {
            hosts: vec![
                Host {
                    name: "h0".into(),
                    entry_share: 1.0,
                    cpu_capacity: f64::INFINITY,
                },
                Host {
                    name: "h1".into(),
                    entry_share: 0.0,
                    cpu_capacity: f64::INFINITY,
                },
            ],
            rtt_ms: vec![vec![0.0, 100.0], vec![100.0, 0.0]],
            graph: g,
            params: CostParams::default(),
        };
        let assignment = partition(&p, &MultilevelOptions::default());
        assert_eq!(assignment.len(), 20);
    }

    #[test]
    fn balance_tolerance_limits_part_sizes() {
        let p = chained_clusters(4, 4, 2);
        let options = MultilevelOptions {
            balance_tolerance: 0.6,
            ..Default::default()
        };
        let assignment = partition(&p, &options);
        let mut counts = [0usize; 2];
        for a in &assignment {
            counts[a.0] += 1;
        }
        // With tolerance 0.6 neither side may hold more than 80% of weight.
        let max = counts.iter().max().unwrap();
        assert!(*max <= (16.0_f64 * 0.5 * 1.6).ceil() as usize, "{counts:?}");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]
            #[test]
            fn partition_is_total_and_pin_respecting(
                clusters in 1usize..4,
                size in 2usize..6,
                k in 2usize..4,
            ) {
                let p = chained_clusters(clusters, size, k);
                let placement = solve(&p, &MultilevelOptions::default());
                prop_assert_eq!(placement.primary.len(), clusters * size);
                prop_assert!(placement.respects_pins(&p));
                for h in &placement.primary {
                    prop_assert!(h.0 < k);
                }
            }
        }
    }
}
