//! Greedy hill-climbing with replication moves.
//!
//! Best-improvement local search over three move kinds:
//!
//! * move a component's primary to another host,
//! * add a read-only replica of a replicable component,
//! * drop a replica.
//!
//! Replica moves are how the search *derives the read-mostly pattern*: a
//! replica is added exactly when the remote-read savings exceed the
//! consistency-push cost — the trade-off §4.3 discusses qualitatively.
//!
//! Candidate moves are priced through the incremental [`CostEvaluator`]
//! (apply → read delta → undo), so probing a move costs `O(degree × hosts)`
//! instead of a whole-graph sweep per candidate.

use crate::cost::incremental::{CostEvaluator, Move};
use crate::graph::{HostId, Placement, PlacementProblem};

/// Search options.
#[derive(Debug, Clone)]
pub struct GreedyOptions {
    /// Maximum improvement rounds (defensive bound; convergence is typical).
    pub max_rounds: usize,
    /// Also try replica add/remove moves.
    pub with_replication: bool,
}

impl Default for GreedyOptions {
    fn default() -> Self {
        GreedyOptions {
            max_rounds: 1_000,
            with_replication: true,
        }
    }
}

/// Runs hill-climbing from `start` until no move improves the cost.
pub fn improve(
    problem: &PlacementProblem,
    mut start: Placement,
    options: &GreedyOptions,
) -> (Placement, f64) {
    start.repair_pins(problem);
    let mut eval = CostEvaluator::new(problem, start);

    for _ in 0..options.max_rounds {
        let mut best_move: Option<(Move, f64)> = None;
        for node in problem.graph.graph.node_indices() {
            let spec = &problem.graph.graph[node];
            // Primary moves (pinned components cannot move).
            if spec.pinned.is_none() {
                for h in 0..problem.hosts.len() {
                    let target = HostId(h);
                    if eval.primary_of(node) == target {
                        continue;
                    }
                    consider(
                        &mut eval,
                        Move::MovePrimary { node, to: target },
                        &mut best_move,
                    );
                }
            }
            // Replica moves.
            if options.with_replication && spec.role.replicable() {
                for h in 0..problem.hosts.len() {
                    let target = HostId(h);
                    if eval.primary_of(node) == target {
                        continue;
                    }
                    let mv = if eval.has_replica(node, target) {
                        Move::DropReplica { node, host: target }
                    } else {
                        Move::AddReplica { node, host: target }
                    };
                    consider(&mut eval, mv, &mut best_move);
                }
            }
        }
        match best_move {
            Some((mv, _)) => {
                eval.apply(mv);
            }
            None => break,
        }
    }
    let final_cost = eval.total();
    (eval.into_placement(), final_cost)
}

/// Probes `mv` through the evaluator and records it when it is the best
/// strict improvement seen this round.
fn consider(eval: &mut CostEvaluator, mv: Move, best: &mut Option<(Move, f64)>) {
    let delta = eval.apply(mv);
    eval.undo();
    if delta < -1e-9 && best.is_none_or(|(_, bd)| delta < bd) {
        *best = Some((mv, delta));
    }
}

/// Runs hill-climbing from several canonical starts (everything on each
/// host) and returns the best result.
pub fn solve(problem: &PlacementProblem, options: &GreedyOptions) -> (Placement, f64) {
    let mut best: Option<(Placement, f64)> = None;
    for h in 0..problem.hosts.len() {
        let (placement, c) = improve(problem, Placement::all_on(problem, HostId(h)), options);
        if best.as_ref().is_none_or(|(_, bc)| c < *bc) {
            best = Some((placement, c));
        }
    }
    best.expect("at least one host")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::exhaustive;
    use crate::graph::{Component, ComponentGraph, CostParams, Host, Role};

    fn star_problem(read_rate: f64, write_rate: f64) -> PlacementProblem {
        // web@entries -> entity -> (db edge only on writes, folded into
        // write_rate), db pinned at h0.
        let mut g = ComponentGraph::new();
        let web = g.add(Component {
            name: "web".into(),
            role: Role::Entry,
            pinned: None,
            cpu_ms_per_call: 1.0,
            write_rate: 0.0,
        });
        let entity = g.add(Component {
            name: "entity".into(),
            role: Role::Entity,
            pinned: Some(HostId(0)),
            cpu_ms_per_call: 1.0,
            write_rate,
        });
        g.interact(web, entity, read_rate, 200.0);
        PlacementProblem {
            hosts: vec![
                Host {
                    name: "main".into(),
                    entry_share: 1.0 / 3.0,
                    cpu_capacity: f64::INFINITY,
                },
                Host {
                    name: "edge1".into(),
                    entry_share: 1.0 / 3.0,
                    cpu_capacity: f64::INFINITY,
                },
                Host {
                    name: "edge2".into(),
                    entry_share: 1.0 / 3.0,
                    cpu_capacity: f64::INFINITY,
                },
            ],
            rtt_ms: vec![
                vec![0.0, 200.0, 200.0],
                vec![200.0, 0.0, 400.0],
                vec![200.0, 400.0, 0.0],
            ],
            graph: g,
            params: CostParams::default(),
        }
    }

    #[test]
    fn read_mostly_state_gets_replicated() {
        let p = star_problem(10.0, 0.1);
        let (placement, _) = solve(&p, &GreedyOptions::default());
        let entity = p.graph.by_name("entity").unwrap();
        assert_eq!(
            placement.primary[entity.index()],
            HostId(0),
            "primary pinned"
        );
        assert_eq!(
            placement.replicas[entity.index()].len(),
            2,
            "replicas at both edges"
        );
    }

    #[test]
    fn write_heavy_state_stays_centralized() {
        let p = star_problem(0.2, 50.0);
        let (placement, _) = solve(&p, &GreedyOptions::default());
        let entity = p.graph.by_name("entity").unwrap();
        assert!(
            placement.replicas[entity.index()].is_empty(),
            "no replicas for hot writers"
        );
    }

    #[test]
    fn crossover_follows_the_read_write_ratio() {
        // Sweep the write rate: replication should stop paying at some point.
        let mut replicated = Vec::new();
        for write_rate in [0.0, 0.5, 2.0, 10.0, 40.0] {
            let p = star_problem(5.0, write_rate);
            let (placement, _) = solve(&p, &GreedyOptions::default());
            let entity = p.graph.by_name("entity").unwrap();
            replicated.push(!placement.replicas[entity.index()].is_empty());
        }
        assert!(replicated[0], "free replication at zero writes");
        assert!(!replicated[4], "replication must stop at high write rates");
        // Monotone: once it stops paying it never resumes.
        let first_false = replicated.iter().position(|r| !r).unwrap();
        assert!(
            replicated[first_false..].iter().all(|r| !r),
            "{replicated:?}"
        );
    }

    #[test]
    fn matches_exhaustive_without_replication() {
        let p = star_problem(3.0, 1.0);
        let options = GreedyOptions {
            with_replication: false,
            ..Default::default()
        };
        let (_, greedy_cost) = solve(&p, &options);
        let (_, optimal) = exhaustive::solve(&p);
        assert!(
            greedy_cost <= optimal + 1e-6,
            "greedy {greedy_cost} vs optimal {optimal}"
        );
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn random_problem(
            n: usize,
            edges: &[(usize, usize, f64)],
            shares: (f64, f64),
        ) -> PlacementProblem {
            let mut g = ComponentGraph::new();
            let mut nodes = Vec::new();
            for i in 0..n {
                let role = if i == 0 {
                    Role::Entry
                } else if i == n - 1 {
                    Role::Database
                } else {
                    Role::Stateless
                };
                nodes.push(g.add(Component {
                    name: format!("c{i}"),
                    role,
                    pinned: if role == Role::Database {
                        Some(HostId(0))
                    } else {
                        None
                    },
                    cpu_ms_per_call: 1.0,
                    write_rate: 0.0,
                }));
            }
            for &(a, b, rate) in edges {
                if a != b {
                    g.interact(nodes[a % n], nodes[b % n], rate, 100.0);
                }
            }
            let total = shares.0 + shares.1;
            PlacementProblem {
                hosts: vec![
                    Host {
                        name: "h0".into(),
                        entry_share: shares.0 / total,
                        cpu_capacity: f64::INFINITY,
                    },
                    Host {
                        name: "h1".into(),
                        entry_share: shares.1 / total,
                        cpu_capacity: f64::INFINITY,
                    },
                ],
                rtt_ms: vec![vec![0.0, 150.0], vec![150.0, 0.0]],
                graph: g,
                params: CostParams::default(),
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]
            /// Greedy (without replication moves) never loses to exhaustive
            /// enumeration on small random graphs — it is locally optimal
            /// from every all-on-one-host start, and those starts cover the
            /// exhaustive optimum's basin in these instances.
            #[test]
            fn greedy_close_to_optimal(
                n in 3usize..7,
                edges in proptest::collection::vec((0usize..7, 0usize..7, 0.1f64..20.0), 2..12),
                shares in (0.1f64..1.0, 0.1f64..1.0),
            ) {
                let p = random_problem(n, &edges, shares);
                prop_assume!(p.validate().is_ok());
                let options = GreedyOptions { with_replication: false, ..Default::default() };
                let (placement, c) = solve(&p, &options);
                let (_, optimal) = exhaustive::solve(&p);
                prop_assert!(placement.respects_pins(&p));
                // Hill climbing may stop in a local optimum; allow slack but
                // verify it never *beats* the true optimum (cost soundness).
                prop_assert!(c >= optimal - 1e-6);
                prop_assert!(c <= optimal * 1.5 + 1e-6, "greedy {} optimal {}", c, optimal);
            }

            /// Replication moves can only improve the final cost.
            #[test]
            fn replication_never_hurts(
                n in 3usize..6,
                edges in proptest::collection::vec((0usize..6, 0usize..6, 0.1f64..20.0), 2..10),
            ) {
                let p = random_problem(n, &edges, (0.5, 0.5));
                prop_assume!(p.validate().is_ok());
                let without = solve(&p, &GreedyOptions { with_replication: false, ..Default::default() }).1;
                let with = solve(&p, &GreedyOptions::default()).1;
                prop_assert!(with <= without + 1e-6);
            }
        }
    }
}
