//! Placement algorithms: exhaustive enumeration, greedy hill-climbing with
//! replication, Kernighan–Lin bipartitioning, and METIS-style multilevel
//! k-way partitioning.

pub mod annealing;
pub mod exhaustive;
pub mod greedy;
pub mod kl;
pub mod multilevel;

pub use annealing::{solve as annealing_solve, AnnealingOptions};
pub use greedy::{improve as greedy_improve, solve as greedy_solve, GreedyOptions};
pub use kl::solve_recursive as kl_recursive_solve;
pub use multilevel::{
    partition as multilevel_partition, solve as multilevel_solve, MultilevelOptions,
};
