//! Placement algorithms: exhaustive enumeration, greedy hill-climbing with
//! replication, Kernighan–Lin bipartitioning, METIS-style multilevel k-way
//! partitioning, and deterministic parallel multi-start search.
//!
//! Every algorithm prices candidate moves through the incremental
//! [`CostEvaluator`](crate::cost::incremental::CostEvaluator) — a
//! single-component move costs `O(degree × hosts)` instead of a
//! whole-graph cost sweep.

pub mod annealing;
pub mod exhaustive;
pub mod greedy;
pub mod kl;
pub mod multilevel;
pub mod multistart;
pub mod regional;

use crate::graph::{Placement, PlacementProblem};

pub use annealing::{solve as annealing_solve, AnnealingOptions};
pub use greedy::{improve as greedy_improve, solve as greedy_solve, GreedyOptions};
pub use kl::solve_recursive as kl_recursive_solve;
pub use multilevel::{
    partition as multilevel_partition, solve as multilevel_solve, MultilevelOptions,
};
pub use multistart::{solve_multistart, MultistartOptions};
pub use regional::{host_regions, region_medoids, solve_regional, RegionalOptions};

/// Bounded primary-move polish against the true wide-area cost, shared by
/// the partitioners (KL, multilevel) whose internal objective is a rate×RTT
/// proxy. At most one best-improvement move per component, no replication —
/// the partition contracts ("primaries only") are preserved.
pub(crate) fn polish_primaries(
    problem: &PlacementProblem,
    placement: Placement,
) -> (Placement, f64) {
    greedy::improve(
        problem,
        placement,
        &GreedyOptions {
            max_rounds: problem.graph.len(),
            with_replication: false,
        },
    )
}
