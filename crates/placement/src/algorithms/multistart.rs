//! Deterministic parallel multi-start search.
//!
//! RAFDA-style continuous re-deployment (see PAPERS.md) needs placement
//! answers that are both fast *and* reproducible: the same interaction
//! graph must yield the same deployment on a 4-core laptop and a 64-core
//! server, or re-evaluation would flap deployments for no reason. This
//! module runs `starts` independent annealing chains — each with its own
//! derived seed and rotation through the all-on-one-host starting points —
//! in parallel via rayon, polishes each with greedy hill-climbing, and
//! reduces the results by the **total order** `(cost bits, seed)`. The
//! reduction is associative and commutative over a total order, so the
//! winner is independent of thread count and scheduling; a test pins that
//! property by re-running under differently sized thread pools.

use rayon::prelude::*;

use crate::algorithms::annealing::{anneal, AnnealingOptions};
use crate::algorithms::greedy::{improve, GreedyOptions};
use crate::graph::{HostId, Placement, PlacementProblem};

/// Options for [`solve_multistart`].
#[derive(Debug, Clone)]
pub struct MultistartOptions {
    /// Number of independent annealing starts.
    pub starts: usize,
    /// Annealing schedule template; each start derives its own seed from
    /// `annealing.seed` and the start index.
    pub annealing: AnnealingOptions,
    /// Finish each start with greedy hill-climbing (replication moves
    /// included) before the reduction.
    pub greedy_polish: bool,
}

impl Default for MultistartOptions {
    fn default() -> Self {
        MultistartOptions {
            starts: 8,
            annealing: AnnealingOptions::default(),
            greedy_polish: true,
        }
    }
}

/// Per-start seed: decorrelate neighbouring start indices with the 64-bit
/// golden-ratio increment (splitmix64's stream constant).
fn start_seed(base: u64, index: usize) -> u64 {
    base.wrapping_add((index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Runs `options.starts` seeded annealing chains in parallel and returns
/// the best placement under the deterministic `(cost, seed)` order.
///
/// The result is bit-identical regardless of rayon thread count: every
/// chain is deterministic given its derived seed, and the reduction
/// compares `(f64::total_cmp(cost), seed)` — a total order with no float
/// ties left to scheduling.
///
/// # Panics
///
/// Panics if `options.starts` is zero.
pub fn solve_multistart(
    problem: &PlacementProblem,
    options: &MultistartOptions,
) -> (Placement, f64) {
    assert!(options.starts > 0, "multi-start needs at least one start");
    let hosts = problem.hosts.len();
    (0..options.starts)
        .into_par_iter()
        .map(|i| {
            let seed = start_seed(options.annealing.seed, i);
            let chain = AnnealingOptions {
                seed,
                ..options.annealing.clone()
            };
            let start = Placement::all_on(problem, HostId(i % hosts));
            let (placement, cost) = anneal(problem, start, &chain);
            let (placement, cost) = if options.greedy_polish {
                improve(problem, placement, &GreedyOptions::default())
            } else {
                (placement, cost)
            };
            (cost, seed, placement)
        })
        .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
        .map(|(cost, _, placement)| (placement, cost))
        .expect("at least one start")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::greedy::solve as greedy_solve;
    use crate::derive::{petstore_problem, rubis_problem};

    #[test]
    fn multistart_matches_or_beats_single_methods() {
        for (name, problem) in [
            ("petstore", petstore_problem().0),
            ("rubis", rubis_problem().0),
        ] {
            let (_, greedy_cost) = greedy_solve(&problem, &GreedyOptions::default());
            let options = MultistartOptions {
                starts: 4,
                annealing: AnnealingOptions {
                    steps: 40,
                    moves_per_step: 80,
                    ..Default::default()
                },
                ..Default::default()
            };
            let (placement, cost) = solve_multistart(&problem, &options);
            assert!(placement.respects_pins(&problem));
            assert!(
                cost <= greedy_cost + 1e-9,
                "{name}: multistart {cost:.1} worse than greedy {greedy_cost:.1}"
            );
        }
    }

    #[test]
    fn multistart_is_thread_count_invariant() {
        let (problem, _) = rubis_problem();
        let options = MultistartOptions {
            starts: 6,
            annealing: AnnealingOptions {
                steps: 30,
                moves_per_step: 60,
                ..Default::default()
            },
            greedy_polish: true,
        };
        let mut runs = Vec::new();
        for threads in [1, 2, 6] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool");
            runs.push(pool.install(|| solve_multistart(&problem, &options)));
        }
        for (placement, cost) in &runs[1..] {
            assert_eq!(placement, &runs[0].0, "placement differs across pools");
            assert_eq!(
                cost.to_bits(),
                runs[0].1.to_bits(),
                "cost bits differ across pools"
            );
        }
    }

    #[test]
    fn start_seeds_are_distinct() {
        let seeds: std::collections::BTreeSet<u64> = (0..64).map(|i| start_seed(42, i)).collect();
        assert_eq!(seeds.len(), 64);
    }
}
