//! # mutsvc-placement — automatic wide-area component placement
//!
//! The paper hand-derives its edge deployments and argues (§5, §7) that
//! containers should automate them. This crate is that automation:
//!
//! * [`graph`] — component interaction graphs (petgraph-backed), hosts,
//!   pinning/replication attributes and placement problems;
//! * [`cost`] — the wide-area objective: RMI round trips × rates across the
//!   placement cut, plus replica-consistency pushes and capacity penalties —
//!   with an incremental evaluator ([`cost::incremental`]) that prices
//!   single-component moves in `O(degree × hosts)` instead of re-sweeping
//!   the whole graph;
//! * [`algorithms`] — exhaustive enumeration (optimality oracle), greedy
//!   hill-climbing with replica moves (derives the read-mostly pattern),
//!   Kernighan–Lin bipartitioning, and a METIS-style multilevel k-way
//!   partitioner with RTT-aware refinement;
//! * [`derive`] — extracting problems from the Pet Store and RUBiS models
//!   under the paper's workload, with validation that the optimizer
//!   *recovers the paper's final deployments*;
//! * [`wan`] — deriving host matrices from simulated multi-tier topologies
//!   (latency-shortest multi-hop round trips, the same pricing the engine
//!   and the static analyzer use).
//!
//! ## Example
//!
//! ```
//! use mutsvc_placement::algorithms::greedy::{solve, GreedyOptions};
//! use mutsvc_placement::derive::petstore_problem;
//!
//! let (problem, _app) = petstore_problem();
//! let (placement, cost) = solve(&problem, &GreedyOptions::default());
//! assert!(cost.is_finite());
//! // The catalog entities end up replicated on the edge servers.
//! let item = problem.graph.by_name("ItemEJB").unwrap();
//! assert_eq!(placement.replicas[item.index()].len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithms;
pub mod cost;
pub mod derive;
pub mod graph;
pub mod wan;

pub use cost::incremental::{shared_distances, CostEvaluator, Move};
pub use cost::{cost, cost_breakdown, CostBreakdown};
pub use graph::{
    Component, ComponentGraph, CostParams, Host, HostId, Interaction, Placement, PlacementProblem,
    Role,
};
/// Component handle into a [`ComponentGraph`] (re-exported so downstream
/// crates can name [`Move`] targets without depending on petgraph).
pub use petgraph::graph::NodeIndex;
