//! The paper's testbed network (Figure 2).
//!
//! Three application servers and a database host joined by a Click-style
//! software router: the main server, its clients and the database sit on
//! fast LAN legs; the two edge servers hang off 100 ms shaped WAN legs with
//! their own client LANs. For the RUBiS experiments the database runs *on*
//! the main server's workstation (§3.1), which `db_on_main` reproduces.

use mutsvc_desim::time::SimDuration;
use mutsvc_netsim::{NodeId, Topology, TopologyBuilder};
use serde::{Deserialize, Serialize};

/// One-way WAN latency (§3.1: "100 ms latency each way").
pub const WAN_ONE_WAY: SimDuration = SimDuration::from_millis(100);
/// LAN leg latency.
pub const LAN_ONE_WAY: SimDuration = SimDuration::from_micros(200);
/// Link bandwidth (§3.1: 100 Mbit/s maximum combined).
pub const LINK_BANDWIDTH_BPS: f64 = 100e6;

/// Node handles of the paper topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PaperNodes {
    /// Main application server (dual-CPU workstation).
    pub main: NodeId,
    /// First edge application server.
    pub edge1: NodeId,
    /// Second edge application server.
    pub edge2: NodeId,
    /// Database host. Equal to `main` when the database is co-located
    /// (RUBiS / MySQL); a separate LAN host otherwise (Pet Store / Oracle).
    pub db: NodeId,
    /// The software router at the topology's center.
    pub router: NodeId,
    /// Client machines co-located with the main server.
    pub client_local: NodeId,
    /// Client machines co-located with edge 1.
    pub client_edge1: NodeId,
    /// Client machines co-located with edge 2.
    pub client_edge2: NodeId,
}

impl PaperNodes {
    /// The three application servers.
    pub fn servers(&self) -> [NodeId; 3] {
        [self.main, self.edge1, self.edge2]
    }

    /// The two edge servers.
    pub fn edges(&self) -> [NodeId; 2] {
        [self.edge1, self.edge2]
    }

    /// Whether `(a, b)` crosses a WAN leg.
    pub fn is_wan(&self, a: NodeId, b: NodeId) -> bool {
        let edge_side = |n: NodeId| {
            if n == self.edge1 || n == self.client_edge1 {
                1
            } else if n == self.edge2 || n == self.client_edge2 {
                2
            } else {
                0
            }
        };
        edge_side(a) != edge_side(b)
    }
}

/// Builds the Figure 2 topology with the paper's 100 ms WAN legs.
pub fn paper_topology(db_on_main: bool) -> (Topology, PaperNodes) {
    topology_with_wan(db_on_main, WAN_ONE_WAY)
}

/// Builds the Figure 2 topology with a custom one-way WAN latency
/// (ablation studies).
pub fn topology_with_wan(db_on_main: bool, wan_one_way: SimDuration) -> (Topology, PaperNodes) {
    let mut b = TopologyBuilder::new();
    // Dual-processor Pentium III workstations (§3.1); client machines are
    // aggregated per group (three physical boxes each).
    let main = b.node("main", 2);
    let edge1 = b.node("edge1", 2);
    let edge2 = b.node("edge2", 2);
    let db = if db_on_main { main } else { b.node("db", 2) };
    let router = b.node("router", 8);
    let client_local = b.node("client-local", 6);
    let client_edge1 = b.node("client-edge1", 6);
    let client_edge2 = b.node("client-edge2", 6);

    b.duplex_link(main, router, LAN_ONE_WAY, LINK_BANDWIDTH_BPS);
    if !db_on_main {
        b.duplex_link(db, router, LAN_ONE_WAY, LINK_BANDWIDTH_BPS);
    }
    b.duplex_link(client_local, router, LAN_ONE_WAY, LINK_BANDWIDTH_BPS);
    b.duplex_link(edge1, router, wan_one_way, LINK_BANDWIDTH_BPS);
    b.duplex_link(edge2, router, wan_one_way, LINK_BANDWIDTH_BPS);
    b.duplex_link(client_edge1, edge1, LAN_ONE_WAY, LINK_BANDWIDTH_BPS);
    b.duplex_link(client_edge2, edge2, LAN_ONE_WAY, LINK_BANDWIDTH_BPS);

    let nodes = PaperNodes {
        main,
        edge1,
        edge2,
        db,
        router,
        client_local,
        client_edge1,
        client_edge2,
    };
    (b.finalize(), nodes)
}

/// Node handles of a [`fanout_topology`]: the paper's local cluster plus an
/// arbitrary number of WAN edge regions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FanoutNodes {
    /// Main application server.
    pub main: NodeId,
    /// Database host (`main` when co-located).
    pub db: NodeId,
    /// The central software router.
    pub router: NodeId,
    /// Client machines on the main server's LAN.
    pub client_local: NodeId,
    /// Edge application servers, one per WAN region.
    pub edges: Vec<NodeId>,
    /// Client machines co-located with each edge (same order as `edges`).
    pub edge_clients: Vec<NodeId>,
}

/// Builds a widened Figure 2 topology: the paper's local cluster with
/// `edges` WAN edge regions instead of two. Each edge region is an edge
/// server plus a client LAN behind a 100 ms shaped leg, so the topology
/// decomposes into `edges + 1` client regions — the scaling axis of the
/// conservative-parallel engine benchmarks (DESIGN.md §6.5).
pub fn fanout_topology(db_on_main: bool, edges: usize) -> (Topology, FanoutNodes) {
    let mut b = TopologyBuilder::new();
    let main = b.node("main", 2);
    let db = if db_on_main { main } else { b.node("db", 2) };
    let router = b.node("router", 8);
    let client_local = b.node("client-local", 6);
    b.duplex_link(main, router, LAN_ONE_WAY, LINK_BANDWIDTH_BPS);
    if !db_on_main {
        b.duplex_link(db, router, LAN_ONE_WAY, LINK_BANDWIDTH_BPS);
    }
    b.duplex_link(client_local, router, LAN_ONE_WAY, LINK_BANDWIDTH_BPS);

    let mut edge_nodes = Vec::with_capacity(edges);
    let mut edge_clients = Vec::with_capacity(edges);
    for i in 1..=edges {
        let edge = b.node(format!("edge{i}"), 2);
        let clients = b.node(format!("client-edge{i}"), 6);
        b.duplex_link(edge, router, WAN_ONE_WAY, LINK_BANDWIDTH_BPS);
        b.duplex_link(clients, edge, LAN_ONE_WAY, LINK_BANDWIDTH_BPS);
        edge_nodes.push(edge);
        edge_clients.push(clients);
    }

    let nodes = FanoutNodes {
        main,
        db,
        router,
        client_local,
        edges: edge_nodes,
        edge_clients,
    };
    (b.finalize(), nodes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wan_rtt_is_two_hundred_ms() {
        let (t, n) = paper_topology(false);
        let rtt = t.rtt(n.main, n.edge1).as_millis_f64();
        assert!((rtt - 200.8).abs() < 0.5, "rtt {rtt}");
        // Edge-to-edge crosses two WAN legs.
        let rtt2 = t.rtt(n.edge1, n.edge2).as_millis_f64();
        assert!((rtt2 - 400.0).abs() < 1.0, "rtt {rtt2}");
    }

    #[test]
    fn local_clients_reach_main_over_lan() {
        let (t, n) = paper_topology(false);
        assert!(t.rtt(n.client_local, n.main).as_millis_f64() < 1.0);
        assert!(t.rtt(n.client_edge1, n.edge1).as_millis_f64() < 1.0);
        // Remote clients pay the WAN to reach main.
        assert!(t.rtt(n.client_edge1, n.main).as_millis_f64() > 200.0);
    }

    #[test]
    fn db_placement_variants() {
        let (t, n) = paper_topology(false);
        assert_ne!(n.db, n.main);
        assert!(t.rtt(n.main, n.db).as_millis_f64() < 1.0);
        let (_, n) = paper_topology(true);
        assert_eq!(n.db, n.main);
    }

    #[test]
    fn fanout_topology_scales_the_region_count() {
        let (t, n) = fanout_topology(false, 7);
        assert_eq!(n.edges.len(), 7);
        let regions = t.regions();
        let distinct: std::collections::BTreeSet<usize> = regions.iter().copied().collect();
        assert_eq!(distinct.len(), 8, "local + 7 edge regions");
        // Every edge client reaches main across exactly one WAN leg.
        for (&edge, &client) in n.edges.iter().zip(&n.edge_clients) {
            assert_eq!(regions[edge.index()], regions[client.index()]);
            assert_ne!(regions[edge.index()], regions[n.main.index()]);
            let rtt = t.rtt(client, n.main).as_millis_f64();
            assert!((200.0..202.0).contains(&rtt), "rtt {rtt}");
        }
        assert_eq!(t.min_wan_latency(), Some(WAN_ONE_WAY));
    }

    #[test]
    fn wan_classification() {
        let (_, n) = paper_topology(false);
        assert!(n.is_wan(n.main, n.edge1));
        assert!(n.is_wan(n.client_edge1, n.main));
        assert!(n.is_wan(n.edge1, n.edge2));
        assert!(!n.is_wan(n.main, n.db));
        assert!(!n.is_wan(n.edge1, n.client_edge1));
        assert!(!n.is_wan(n.client_local, n.main));
    }
}
