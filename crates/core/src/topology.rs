//! The paper's testbed network (Figure 2).
//!
//! Three application servers and a database host joined by a Click-style
//! software router: the main server, its clients and the database sit on
//! fast LAN legs; the two edge servers hang off 100 ms shaped WAN legs with
//! their own client LANs. For the RUBiS experiments the database runs *on*
//! the main server's workstation (§3.1), which `db_on_main` reproduces.

use mutsvc_desim::time::SimDuration;
use mutsvc_netsim::{NodeId, Topology, TopologyBuilder};
use serde::{Deserialize, Serialize};

/// One-way WAN latency (§3.1: "100 ms latency each way").
pub const WAN_ONE_WAY: SimDuration = SimDuration::from_millis(100);
/// LAN leg latency.
pub const LAN_ONE_WAY: SimDuration = SimDuration::from_micros(200);
/// Link bandwidth (§3.1: 100 Mbit/s maximum combined).
pub const LINK_BANDWIDTH_BPS: f64 = 100e6;

/// Node handles of the paper topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PaperNodes {
    /// Main application server (dual-CPU workstation).
    pub main: NodeId,
    /// First edge application server.
    pub edge1: NodeId,
    /// Second edge application server.
    pub edge2: NodeId,
    /// Database host. Equal to `main` when the database is co-located
    /// (RUBiS / MySQL); a separate LAN host otherwise (Pet Store / Oracle).
    pub db: NodeId,
    /// The software router at the topology's center.
    pub router: NodeId,
    /// Client machines co-located with the main server.
    pub client_local: NodeId,
    /// Client machines co-located with edge 1.
    pub client_edge1: NodeId,
    /// Client machines co-located with edge 2.
    pub client_edge2: NodeId,
}

impl PaperNodes {
    /// The three application servers.
    pub fn servers(&self) -> [NodeId; 3] {
        [self.main, self.edge1, self.edge2]
    }

    /// The two edge servers.
    pub fn edges(&self) -> [NodeId; 2] {
        [self.edge1, self.edge2]
    }

    /// Whether `(a, b)` crosses a WAN leg.
    pub fn is_wan(&self, a: NodeId, b: NodeId) -> bool {
        let edge_side = |n: NodeId| {
            if n == self.edge1 || n == self.client_edge1 {
                1
            } else if n == self.edge2 || n == self.client_edge2 {
                2
            } else {
                0
            }
        };
        edge_side(a) != edge_side(b)
    }
}

/// Builds the Figure 2 topology with the paper's 100 ms WAN legs.
pub fn paper_topology(db_on_main: bool) -> (Topology, PaperNodes) {
    topology_with_wan(db_on_main, WAN_ONE_WAY)
}

/// Builds the Figure 2 topology with a custom one-way WAN latency
/// (ablation studies).
pub fn topology_with_wan(db_on_main: bool, wan_one_way: SimDuration) -> (Topology, PaperNodes) {
    let mut b = TopologyBuilder::new();
    // Dual-processor Pentium III workstations (§3.1); client machines are
    // aggregated per group (three physical boxes each).
    let main = b.node("main", 2);
    let edge1 = b.node("edge1", 2);
    let edge2 = b.node("edge2", 2);
    let db = if db_on_main { main } else { b.node("db", 2) };
    let router = b.node("router", 8);
    let client_local = b.node("client-local", 6);
    let client_edge1 = b.node("client-edge1", 6);
    let client_edge2 = b.node("client-edge2", 6);

    b.duplex_link(main, router, LAN_ONE_WAY, LINK_BANDWIDTH_BPS);
    if !db_on_main {
        b.duplex_link(db, router, LAN_ONE_WAY, LINK_BANDWIDTH_BPS);
    }
    b.duplex_link(client_local, router, LAN_ONE_WAY, LINK_BANDWIDTH_BPS);
    b.duplex_link(edge1, router, wan_one_way, LINK_BANDWIDTH_BPS);
    b.duplex_link(edge2, router, wan_one_way, LINK_BANDWIDTH_BPS);
    b.duplex_link(client_edge1, edge1, LAN_ONE_WAY, LINK_BANDWIDTH_BPS);
    b.duplex_link(client_edge2, edge2, LAN_ONE_WAY, LINK_BANDWIDTH_BPS);

    let nodes = PaperNodes {
        main,
        edge1,
        edge2,
        db,
        router,
        client_local,
        client_edge1,
        client_edge2,
    };
    (b.finalize(), nodes)
}

/// Node handles of a [`fanout_topology`]: the paper's local cluster plus an
/// arbitrary number of WAN edge regions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FanoutNodes {
    /// Main application server.
    pub main: NodeId,
    /// Database host (`main` when co-located).
    pub db: NodeId,
    /// The central software router.
    pub router: NodeId,
    /// Client machines on the main server's LAN.
    pub client_local: NodeId,
    /// Edge application servers, one per WAN region.
    pub edges: Vec<NodeId>,
    /// Client machines co-located with each edge (same order as `edges`).
    pub edge_clients: Vec<NodeId>,
}

/// Builds a widened Figure 2 topology: the paper's local cluster with
/// `edges` WAN edge regions instead of two. Each edge region is an edge
/// server plus a client LAN behind a 100 ms shaped leg, so the topology
/// decomposes into `edges + 1` client regions — the scaling axis of the
/// conservative-parallel engine benchmarks (DESIGN.md §6.5).
pub fn fanout_topology(db_on_main: bool, edges: usize) -> (Topology, FanoutNodes) {
    let mut b = TopologyBuilder::new();
    let main = b.node("main", 2);
    let db = if db_on_main { main } else { b.node("db", 2) };
    let router = b.node("router", 8);
    let client_local = b.node("client-local", 6);
    b.duplex_link(main, router, LAN_ONE_WAY, LINK_BANDWIDTH_BPS);
    if !db_on_main {
        b.duplex_link(db, router, LAN_ONE_WAY, LINK_BANDWIDTH_BPS);
    }
    b.duplex_link(client_local, router, LAN_ONE_WAY, LINK_BANDWIDTH_BPS);

    let mut edge_nodes = Vec::with_capacity(edges);
    let mut edge_clients = Vec::with_capacity(edges);
    for i in 1..=edges {
        let edge = b.node(format!("edge{i}"), 2);
        let clients = b.node(format!("client-edge{i}"), 6);
        b.duplex_link(edge, router, WAN_ONE_WAY, LINK_BANDWIDTH_BPS);
        b.duplex_link(clients, edge, LAN_ONE_WAY, LINK_BANDWIDTH_BPS);
        edge_nodes.push(edge);
        edge_clients.push(clients);
    }

    let nodes = FanoutNodes {
        main,
        db,
        router,
        client_local,
        edges: edge_nodes,
        edge_clients,
    };
    (b.finalize(), nodes)
}

/// Shape of a generated multi-tier WAN topology: a core site, `hubs`
/// regional hubs on long-haul legs, and `edges_per_hub` CDN-style edge
/// PoPs per hub.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiTierSpec {
    /// Number of regional hubs on long-haul WAN legs off the core router.
    pub hubs: usize,
    /// Edge PoPs (edge server + client LAN) hanging off each hub.
    pub edges_per_hub: usize,
    /// Edge tier reach: `true` = metro legs (under the engine's WAN
    /// threshold, so a hub and its PoPs form *one* network region — the
    /// coarsening ladder shape); `false` = WAN legs (every PoP is its own
    /// region — the parallel-engine sharding shape).
    pub metro_edges: bool,
    /// Run the database on the main server's workstation (RUBiS / MySQL).
    pub db_on_main: bool,
}

impl MultiTierSpec {
    /// Application-server host count: main + hubs + edge PoPs.
    pub fn host_count(&self) -> usize {
        1 + self.hubs * (1 + self.edges_per_hub)
    }

    /// The benchmark ladder rung with exactly `hosts` application servers
    /// (metro edge tier, database co-located): 4, 16, 64 or 256.
    ///
    /// # Panics
    ///
    /// Panics on a host count that is not a supported rung.
    pub fn ladder_rung(hosts: usize) -> MultiTierSpec {
        let (hubs, edges_per_hub) = match hosts {
            4 => (1, 2),
            16 => (3, 4),
            64 => (7, 8),
            256 => (15, 16),
            _ => panic!("no ladder rung with {hosts} hosts"),
        };
        let spec = MultiTierSpec {
            hubs,
            edges_per_hub,
            metro_edges: true,
            db_on_main: true,
        };
        debug_assert_eq!(spec.host_count(), hosts);
        spec
    }
}

/// Node handles of a [`multi_tier_topology`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiTierNodes {
    /// Main application server at the core site.
    pub main: NodeId,
    /// Database host (`main` when co-located).
    pub db: NodeId,
    /// The core software router.
    pub router: NodeId,
    /// Client machines on the core LAN.
    pub client_local: NodeId,
    /// Regional hub servers, one per long-haul leg.
    pub hubs: Vec<NodeId>,
    /// Edge PoP servers in hub-major order (`edges[hub * edges_per_hub + j]`).
    pub edges: Vec<NodeId>,
    /// Client machines co-located with each edge PoP (same order).
    pub edge_clients: Vec<NodeId>,
}

impl MultiTierNodes {
    /// All application-server hosts in placement order: main first, then
    /// hubs, then edge PoPs — the main server keeps host index 0, so
    /// problems derived against the paper's 3-host star re-target onto a
    /// multi-tier host list without touching their pins.
    pub fn servers(&self) -> Vec<NodeId> {
        let mut servers = Vec::with_capacity(1 + self.hubs.len() + self.edges.len());
        servers.push(self.main);
        servers.extend_from_slice(&self.hubs);
        servers.extend_from_slice(&self.edges);
        servers
    }
}

/// One-way long-haul latency of hub `i` (milliseconds): a deterministic
/// spread over 60–140 ms, so every hub leg is distinctly WAN and repeated
/// builds are bit-identical (no RNG in topology generation).
fn hub_latency_ms(i: usize) -> u64 {
    60 + ((i as u64) * 37) % 81
}

/// One-way edge-tier latency of PoP `(i, j)` in milliseconds: 2–17 ms
/// metro legs (strictly under the 20 ms WAN threshold) or 25–80 ms WAN
/// legs (strictly over it) — never *exactly* at the threshold, so the
/// region structure is unambiguous.
fn edge_latency_ms(i: usize, j: usize, metro: bool) -> u64 {
    let mix = (i as u64) * 5 + (j as u64) * 11;
    if metro {
        2 + mix % 16
    } else {
        25 + mix % 56
    }
}

/// Heterogeneous link bandwidth (bits/s) seeded by the link's tier slot.
fn tier_bandwidth_bps(tier: u64, slot: u64) -> f64 {
    let mbit = 40 + (tier * 23 + slot * 17) % 111;
    mbit as f64 * 1e6
}

/// Builds a multi-tier WAN topology: the paper's core site (main server,
/// optional separate database, client LAN, software router), `spec.hubs`
/// regional hubs on heterogeneous long-haul legs (60–140 ms one way), and
/// `spec.edges_per_hub` edge PoPs per hub — each an edge server with its
/// own client LAN, reached over metro (2–17 ms) or WAN (25–80 ms) legs.
/// All latencies and bandwidths are deterministic index formulas; building
/// the same spec twice yields identical topologies.
///
/// This is the scaling axis past [`fanout_topology`]: a client request
/// from an edge PoP to the core crosses *two* WAN hops (PoP → hub → core)
/// when the edge tier is WAN, exercising multi-hop path pricing in the
/// placement layer and the analyzer, and hundreds of hosts at the 256-host
/// ladder rung.
pub fn multi_tier_topology(spec: &MultiTierSpec) -> (Topology, MultiTierNodes) {
    assert!(spec.hubs > 0, "at least one hub");
    let mut b = TopologyBuilder::new();
    let main = b.node("main", 2);
    let db = if spec.db_on_main {
        main
    } else {
        b.node("db", 2)
    };
    let router = b.node("router", 8);
    let client_local = b.node("client-local", 6);
    b.duplex_link(main, router, LAN_ONE_WAY, LINK_BANDWIDTH_BPS);
    if !spec.db_on_main {
        b.duplex_link(db, router, LAN_ONE_WAY, LINK_BANDWIDTH_BPS);
    }
    b.duplex_link(client_local, router, LAN_ONE_WAY, LINK_BANDWIDTH_BPS);

    let mut hubs = Vec::with_capacity(spec.hubs);
    let mut edges = Vec::with_capacity(spec.hubs * spec.edges_per_hub);
    let mut edge_clients = Vec::with_capacity(spec.hubs * spec.edges_per_hub);
    for i in 0..spec.hubs {
        let hub = b.node(format!("hub{i}"), 4);
        b.duplex_link(
            hub,
            router,
            SimDuration::from_millis(hub_latency_ms(i)),
            tier_bandwidth_bps(1, i as u64),
        );
        for j in 0..spec.edges_per_hub {
            let edge = b.node(format!("edge{i}-{j}"), 2);
            let clients = b.node(format!("client-edge{i}-{j}"), 6);
            b.duplex_link(
                edge,
                hub,
                SimDuration::from_millis(edge_latency_ms(i, j, spec.metro_edges)),
                tier_bandwidth_bps(2, (i * spec.edges_per_hub + j) as u64),
            );
            b.duplex_link(clients, edge, LAN_ONE_WAY, LINK_BANDWIDTH_BPS);
            edges.push(edge);
            edge_clients.push(clients);
        }
        hubs.push(hub);
    }

    let nodes = MultiTierNodes {
        main,
        db,
        router,
        client_local,
        hubs,
        edges,
        edge_clients,
    };
    (b.finalize(), nodes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wan_rtt_is_two_hundred_ms() {
        let (t, n) = paper_topology(false);
        let rtt = t.rtt(n.main, n.edge1).as_millis_f64();
        assert!((rtt - 200.8).abs() < 0.5, "rtt {rtt}");
        // Edge-to-edge crosses two WAN legs.
        let rtt2 = t.rtt(n.edge1, n.edge2).as_millis_f64();
        assert!((rtt2 - 400.0).abs() < 1.0, "rtt {rtt2}");
    }

    #[test]
    fn local_clients_reach_main_over_lan() {
        let (t, n) = paper_topology(false);
        assert!(t.rtt(n.client_local, n.main).as_millis_f64() < 1.0);
        assert!(t.rtt(n.client_edge1, n.edge1).as_millis_f64() < 1.0);
        // Remote clients pay the WAN to reach main.
        assert!(t.rtt(n.client_edge1, n.main).as_millis_f64() > 200.0);
    }

    #[test]
    fn db_placement_variants() {
        let (t, n) = paper_topology(false);
        assert_ne!(n.db, n.main);
        assert!(t.rtt(n.main, n.db).as_millis_f64() < 1.0);
        let (_, n) = paper_topology(true);
        assert_eq!(n.db, n.main);
    }

    #[test]
    fn fanout_topology_scales_the_region_count() {
        let (t, n) = fanout_topology(false, 7);
        assert_eq!(n.edges.len(), 7);
        let regions = t.regions();
        let distinct: std::collections::BTreeSet<usize> = regions.iter().copied().collect();
        assert_eq!(distinct.len(), 8, "local + 7 edge regions");
        // Every edge client reaches main across exactly one WAN leg.
        for (&edge, &client) in n.edges.iter().zip(&n.edge_clients) {
            assert_eq!(regions[edge.index()], regions[client.index()]);
            assert_ne!(regions[edge.index()], regions[n.main.index()]);
            let rtt = t.rtt(client, n.main).as_millis_f64();
            assert!((200.0..202.0).contains(&rtt), "rtt {rtt}");
        }
        assert_eq!(t.min_wan_latency(), Some(WAN_ONE_WAY));
    }

    #[test]
    fn multi_tier_metro_groups_pops_under_their_hub() {
        let spec = MultiTierSpec::ladder_rung(16);
        let (t, n) = multi_tier_topology(&spec);
        assert_eq!(n.servers().len(), 16);
        assert_eq!(n.servers()[0], n.main);
        let regions = t.regions();
        let distinct: std::collections::BTreeSet<usize> = regions.iter().copied().collect();
        assert_eq!(distinct.len(), spec.hubs + 1, "core + one region per hub");
        for (i, &hub) in n.hubs.iter().enumerate() {
            for j in 0..spec.edges_per_hub {
                let edge = n.edges[i * spec.edges_per_hub + j];
                assert_eq!(regions[edge.index()], regions[hub.index()]);
            }
            assert_ne!(regions[hub.index()], regions[n.main.index()]);
        }
    }

    #[test]
    fn multi_tier_wan_edges_split_every_pop_into_its_own_region() {
        let spec = MultiTierSpec {
            hubs: 4,
            edges_per_hub: 8,
            metro_edges: false,
            db_on_main: true,
        };
        let (t, n) = multi_tier_topology(&spec);
        let regions = t.regions();
        let distinct: std::collections::BTreeSet<usize> = regions.iter().copied().collect();
        assert_eq!(distinct.len(), 1 + 4 + 32, "core + hubs + every PoP");
        // Client LANs stay glued to their edge server.
        for (&edge, &client) in n.edges.iter().zip(&n.edge_clients) {
            assert_eq!(regions[edge.index()], regions[client.index()]);
        }
        // An edge client reaches the core across two WAN hops.
        let rtt = t.rtt(n.edge_clients[0], n.main).as_millis_f64();
        let expected = 2.0 * (25.0 + 60.0); // edge_latency(0,0) + hub_latency(0)
        assert!((rtt - expected).abs() < 2.0, "rtt {rtt} vs {expected}");
    }

    #[test]
    fn multi_tier_generation_is_deterministic_and_never_at_threshold() {
        let spec = MultiTierSpec::ladder_rung(64);
        let (a, _) = multi_tier_topology(&spec);
        let (b, _) = multi_tier_topology(&spec);
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.link_count(), b.link_count());
        let threshold = mutsvc_netsim::WAN_LATENCY_THRESHOLD;
        for id in a.link_ids() {
            let link = a.link(id);
            assert_ne!(link.latency, threshold, "link exactly at the WAN threshold");
            assert_eq!(link.latency, b.link(id).latency);
            assert_eq!(link.bandwidth_bps, b.link(id).bandwidth_bps);
        }
        assert_eq!(a.regions(), b.regions());
    }

    #[test]
    fn ladder_rungs_hit_the_advertised_host_counts() {
        for hosts in [4usize, 16, 64, 256] {
            let spec = MultiTierSpec::ladder_rung(hosts);
            assert_eq!(spec.host_count(), hosts);
            let (_, n) = multi_tier_topology(&spec);
            assert_eq!(n.servers().len(), hosts);
        }
    }

    #[test]
    fn wan_classification() {
        let (_, n) = paper_topology(false);
        assert!(n.is_wan(n.main, n.edge1));
        assert!(n.is_wan(n.client_edge1, n.main));
        assert!(n.is_wan(n.edge1, n.edge2));
        assert!(!n.is_wan(n.main, n.db));
        assert!(!n.is_wan(n.edge1, n.client_edge1));
        assert!(!n.is_wan(n.client_local, n.main));
    }
}
