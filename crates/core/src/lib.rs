//! # mutsvc-core — the wide-area distribution study
//!
//! Ties the testbed together and reproduces the paper's evaluation:
//!
//! * [`topology`] — the Figure 2 network (three application servers, shaped
//!   100 ms WAN legs through a software router);
//! * [`configs`] — the five configurations of §4 as deployment descriptors;
//! * [`experiment`] — scenario assembly and sweeps;
//! * [`paper`] — the published Tables 6/7 as reference data;
//! * [`report`] — regenerating Tables 6/7 and Figures 7/8, comparing against
//!   the paper, and validating the qualitative shape criteria.
//!
//! ## Example: one cell of Table 6
//!
//! ```no_run
//! use mutsvc_core::{AppKind, Config, Scenario};
//!
//! let report = Scenario::quick(AppKind::PetStore, Config::RemoteFacade).run();
//! let item = report.stats.mean_ms("local", "Browser", "Item").unwrap();
//! println!("local browser Item page: {item:.0} ms");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod configs;
pub mod experiment;
pub mod faultsuite;
pub mod invariants;
pub mod paper;
pub mod report;
pub mod topology;

pub use configs::{
    petstore_adaptive_baseline, petstore_descriptor, petstore_descriptor_on,
    rubis_adaptive_baseline, rubis_descriptor, rubis_descriptor_on, Config,
};
pub use experiment::{
    adaptive_episode_input, fanout_input, multi_tier_input, run_sweep, AppKind, Scenario,
};
pub use faultsuite::{AdaptiveEpisode, EpisodeTargets, EpisodeView, FaultCase};
pub use invariants::{wan_invariant, WanInvariant};
pub use mutsvc_workload::{MetricsSettings, SloSpec};
pub use report::{
    figure_series, measured_mean, render_comparison, render_figure, render_percentiles,
    render_table, validate_shapes, FigureBar,
};
pub use topology::{
    fanout_topology, multi_tier_topology, paper_topology, FanoutNodes, MultiTierNodes,
    MultiTierSpec, PaperNodes,
};
