//! Expected wide-area invariants per configuration.
//!
//! §4.2's structural claim is that the remote-façade refactoring bounds every
//! page to **one** wide-area round trip between an edge server and the
//! central site, with the documented exception of Pet Store's *VerifySignIn*
//! (authentication deliberately crosses twice: sign-on check, then profile
//! retrieval). The centralized baseline keeps all components on the main
//! server, so its call trees cross the WAN zero times — clients only pay the
//! HTTP leg. These tables give the static analyzer its per-page budgets.

use crate::configs::Config;

/// The WAN round-trip budget of one configuration.
#[derive(Debug, Clone, Copy)]
pub struct WanInvariant {
    /// Default per-page ceiling on wide-area crossings inside the call tree
    /// (RMI, delegated fetches, JDBC — the HTTP envelope is excluded).
    pub max_wan_round_trips: u32,
    /// `(page name, ceiling)` overrides for pages the paper documents as
    /// exceptions.
    pub exceptions: &'static [(&'static str, u32)],
}

impl WanInvariant {
    /// The ceiling that applies to `page`.
    pub fn page_limit(&self, page: &str) -> u32 {
        self.exceptions
            .iter()
            .find(|(name, _)| *name == page)
            .map_or(self.max_wan_round_trips, |&(_, limit)| limit)
    }
}

/// §4.2's sign-in exception: two wide-area exchanges (credential check, then
/// profile retrieval).
const SIGN_IN_EXCEPTIONS: &[(&str, u32)] = &[("VerifySignIn", 2)];

/// The wide-area budget of `config` (identical for both applications).
pub fn wan_invariant(config: Config) -> WanInvariant {
    match config {
        Config::Centralized => WanInvariant {
            max_wan_round_trips: 0,
            exceptions: &[],
        },
        Config::RemoteFacade
        | Config::StatefulCaching
        | Config::QueryCaching
        | Config::AsyncUpdates => WanInvariant {
            max_wan_round_trips: 1,
            exceptions: SIGN_IN_EXCEPTIONS,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn centralized_allows_no_wan_crossings() {
        let inv = wan_invariant(Config::Centralized);
        assert_eq!(inv.page_limit("Item"), 0);
        assert_eq!(inv.page_limit("VerifySignIn"), 0);
    }

    #[test]
    fn facade_configs_allow_one_with_sign_in_exception() {
        for config in [
            Config::RemoteFacade,
            Config::StatefulCaching,
            Config::QueryCaching,
            Config::AsyncUpdates,
        ] {
            let inv = wan_invariant(config);
            assert_eq!(inv.page_limit("Item"), 1, "{config:?}");
            assert_eq!(inv.page_limit("VerifySignIn"), 2, "{config:?}");
        }
    }
}
