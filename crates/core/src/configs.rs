//! The five experimental configurations of §4, expressed as deployment
//! descriptors — the paper's incremental design patterns with application
//! code untouched (beyond the one-time façade refactoring of §4.2).

use mutsvc_apps::petstore::{PsComponents, TAG_ITEMS_BY_PRODUCT, TAG_PRODUCTS_BY_CATEGORY};
use mutsvc_apps::rubis::{tags, RubisComponents};
use mutsvc_middleware::{
    ComponentRegistry, DeploymentDescriptor, DescriptorBuilder, UpdatePropagation,
};
use mutsvc_netsim::NodeId;
use serde::{Deserialize, Serialize};

use crate::topology::PaperNodes;

/// The five configurations, in the paper's incremental order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Config {
    /// §4.1 — everything on the main server.
    Centralized,
    /// §4.2 — web components and stateful session beans on the edges; all
    /// shared access through session façades; stub caching.
    RemoteFacade,
    /// §4.3 — read-only entity replicas on the edges with blocking
    /// synchronous push (zero staleness).
    StatefulCaching,
    /// §4.4 — aggregate-query result caches on the edges.
    QueryCaching,
    /// §4.5 — update propagation through a JMS topic and message-driven
    /// façades; writers no longer block.
    AsyncUpdates,
}

impl Config {
    /// All configurations in order.
    pub fn all() -> [Config; 5] {
        [
            Config::Centralized,
            Config::RemoteFacade,
            Config::StatefulCaching,
            Config::QueryCaching,
            Config::AsyncUpdates,
        ]
    }

    /// The configuration name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Config::Centralized => "centralized",
            Config::RemoteFacade => "remote-facade",
            Config::StatefulCaching => "stateful-caching",
            Config::QueryCaching => "query-caching",
            Config::AsyncUpdates => "async-updates",
        }
    }

    /// The paper section introducing it.
    pub fn section(self) -> &'static str {
        match self {
            Config::Centralized => "4.1",
            Config::RemoteFacade => "4.2",
            Config::StatefulCaching => "4.3",
            Config::QueryCaching => "4.4",
            Config::AsyncUpdates => "4.5",
        }
    }

    /// Whether this configuration uses the façade-refactored application
    /// (every configuration after the centralized baseline).
    pub fn uses_facade_app(self) -> bool {
        self != Config::Centralized
    }
}

/// Builds the Pet Store deployment descriptor for `config` on the paper
/// topology (two edge servers).
pub fn petstore_descriptor(
    config: Config,
    registry: &ComponentRegistry,
    c: &PsComponents,
    nodes: &PaperNodes,
) -> DeploymentDescriptor {
    petstore_descriptor_on(config, registry, c, nodes.main, nodes.db, &nodes.edges())
}

/// Builds the Pet Store deployment descriptor for `config` over an
/// arbitrary set of edge servers — the paper's two, or the wider fan-out
/// topologies the parallel-engine benchmarks use
/// ([`crate::topology::fanout_topology`]).
pub fn petstore_descriptor_on(
    config: Config,
    registry: &ComponentRegistry,
    c: &PsComponents,
    main: NodeId,
    db: NodeId,
    edges: &[NodeId],
) -> DeploymentDescriptor {
    let mut b = DescriptorBuilder::new(registry, config.name(), db);
    b.central_node(main);
    let edges = || edges.iter().copied();

    // Start from everything on main.
    for comp in c.all() {
        b.place(comp, main);
    }

    if config >= Config::RemoteFacade {
        // Web tier and stateful session beans on every server (§4.2).
        for comp in c.edge_session_components() {
            b.place_replicated(comp, main, edges());
        }
    }
    if config >= Config::StatefulCaching {
        // Read-only entity replicas plus the edge Catalog/Updater (§4.3).
        // Propagation is push-based, so replicas are populated as part of
        // deployment warm-up and kept fresh by pushes (the driver re-runs
        // the warm-up after a node restart for the same reason).
        b.place_replicated(c.catalog, main, edges());
        b.place_replicated(c.updater, main, edges());
        for entity in c.cacheable_entities() {
            b.place_replicated(entity, main, edges());
        }
        b.entity_propagation(UpdatePropagation::SyncPush);
        b.eager_cache_warmup(true);
    }
    if config >= Config::QueryCaching {
        // Catalog query caches on the edges; the Pet Store catalog is
        // read-only, so the paper used the simple pull-based variant (§4.4).
        b.query_cache(
            edges(),
            [TAG_PRODUCTS_BY_CATEGORY, TAG_ITEMS_BY_PRODUCT],
            UpdatePropagation::Invalidate,
        );
    }
    if config >= Config::AsyncUpdates {
        // Message-driven propagation (§4.5).
        b.entity_propagation(UpdatePropagation::AsyncPush);
        b.place_replicated(c.update_subscriber, main, edges());
        b.jms_broker(main);
    }

    b.build().expect("petstore descriptor is complete")
}

/// Builds the Pet Store *adaptive baseline*: remote clients enter at their
/// edge server — the web façade is replicated there, because request
/// binding requires the root web component at every entry node — but the
/// stateful session tier and everything behind it stay centralized.
///
/// This is the deployment the live-migration controller (DESIGN.md §6.8)
/// is meant to improve at runtime: when a region's WAN leg degrades or its
/// demand surges, replicating its session beans out to the stressed edge
/// is a real, model-visible win, while a quiescent run leaves the
/// descriptor untouched.
pub fn petstore_adaptive_baseline(
    registry: &ComponentRegistry,
    c: &PsComponents,
    main: NodeId,
    db: NodeId,
    edges: &[NodeId],
) -> DeploymentDescriptor {
    let mut b = DescriptorBuilder::new(registry, "adaptive-baseline", db);
    b.central_node(main);
    for comp in c.all() {
        b.place(comp, main);
    }
    b.place_replicated(c.web, main, edges.iter().copied());
    b.build().expect("adaptive baseline descriptor is complete")
}

/// The RUBiS adaptive baseline (see [`petstore_adaptive_baseline`]): the
/// servlet tier at every entry, session façades and entities centralized.
pub fn rubis_adaptive_baseline(
    registry: &ComponentRegistry,
    c: &RubisComponents,
    main: NodeId,
    db: NodeId,
    edges: &[NodeId],
) -> DeploymentDescriptor {
    let mut b = DescriptorBuilder::new(registry, "adaptive-baseline", db);
    b.central_node(main);
    for comp in c.all() {
        b.place(comp, main);
    }
    b.place_replicated(c.web, main, edges.iter().copied());
    b.build().expect("adaptive baseline descriptor is complete")
}

/// Builds the RUBiS deployment descriptor for `config` on the paper
/// topology (two edge servers).
pub fn rubis_descriptor(
    config: Config,
    registry: &ComponentRegistry,
    c: &RubisComponents,
    nodes: &PaperNodes,
) -> DeploymentDescriptor {
    rubis_descriptor_on(config, registry, c, nodes.main, nodes.db, &nodes.edges())
}

/// Builds the RUBiS deployment descriptor for `config` over an arbitrary
/// set of edge servers (see [`petstore_descriptor_on`]).
pub fn rubis_descriptor_on(
    config: Config,
    registry: &ComponentRegistry,
    c: &RubisComponents,
    main: NodeId,
    db: NodeId,
    edges: &[NodeId],
) -> DeploymentDescriptor {
    let mut b = DescriptorBuilder::new(registry, config.name(), db);
    b.central_node(main);
    let edges = || edges.iter().copied();

    for comp in c.all() {
        b.place(comp, main);
    }

    if config >= Config::RemoteFacade {
        // RUBiS has no stateful session beans: only the servlet tier moves
        // to the edges (§4.2), with EJBHomeFactory stub caching.
        b.place_replicated(c.web, main, edges());
    }
    if config >= Config::StatefulCaching {
        // Read-only Item and User beans plus the three read façades (§4.3).
        // RUBiS propagation is push-based throughout, so freshly deployed
        // replicas/caches are populated eagerly and kept fresh by pushes.
        for comp in c.edge_read_facades() {
            b.place_replicated(comp, main, edges());
        }
        for entity in c.cacheable_entities() {
            b.place_replicated(entity, main, edges());
        }
        b.entity_propagation(UpdatePropagation::SyncPush);
        b.eager_cache_warmup(true);
    }
    if config >= Config::QueryCaching {
        // Every browse/form façade on the edges, all session queries cached,
        // push-based updates in one bulk RMI (§4.4).
        for comp in c.edge_browse_facades() {
            b.place_replicated(comp, main, edges());
        }
        b.query_cache(edges(), tags::ALL, UpdatePropagation::SyncPush);
    }
    if config >= Config::AsyncUpdates {
        b.entity_propagation(UpdatePropagation::AsyncPush);
        b.query_cache(edges(), tags::ALL, UpdatePropagation::AsyncPush);
        b.place_replicated(c.update_subscriber, main, edges());
        b.jms_broker(main);
    }

    b.build().expect("rubis descriptor is complete")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::paper_topology;
    use mutsvc_apps::App;

    fn ps() -> (ComponentRegistry, PsComponents, PaperNodes) {
        let (app, registry, _) = App::petstore(true);
        let c = match app {
            App::PetStore(ps) => ps.components,
            _ => unreachable!(),
        };
        let (_, nodes) = paper_topology(false);
        (registry, c, nodes)
    }

    fn rubis() -> (ComponentRegistry, RubisComponents, PaperNodes) {
        let (app, registry, _) = App::rubis();
        let c = match app {
            App::Rubis(r) => r.components,
            _ => unreachable!(),
        };
        let (_, nodes) = paper_topology(true);
        (registry, c, nodes)
    }

    #[test]
    fn centralized_uses_only_main() {
        let (reg, c, nodes) = ps();
        let d = petstore_descriptor(Config::Centralized, &reg, &c, &nodes);
        for comp in c.all() {
            assert_eq!(d.placement(comp).primary, nodes.main);
            assert!(d.placement(comp).replicas.is_empty());
        }
        assert_eq!(d.entity_propagation, UpdatePropagation::None);
    }

    #[test]
    fn facade_moves_session_tier_only() {
        let (reg, c, nodes) = ps();
        let d = petstore_descriptor(Config::RemoteFacade, &reg, &c, &nodes);
        assert!(d.placement(c.web).hosts(nodes.edge1));
        assert!(d.placement(c.cart).hosts(nodes.edge2));
        assert!(!d.placement(c.catalog).hosts(nodes.edge1));
        assert!(!d.placement(c.item).hosts(nodes.edge1));
    }

    #[test]
    fn stateful_caching_replicates_catalog_entities_with_sync_push() {
        let (reg, c, nodes) = ps();
        let d = petstore_descriptor(Config::StatefulCaching, &reg, &c, &nodes);
        for entity in c.cacheable_entities() {
            assert!(d.placement(entity).hosts(nodes.edge1));
            assert_eq!(d.placement(entity).primary, nodes.main);
        }
        // SignOn / Order / Account stay centralized (Verify keeps 2 RMIs).
        assert!(!d.placement(c.signon).hosts(nodes.edge1));
        assert!(!d.placement(c.order).hosts(nodes.edge1));
        assert_eq!(d.entity_propagation, UpdatePropagation::SyncPush);
        assert!(d.query_cache.nodes.is_empty());
    }

    #[test]
    fn query_caching_adds_edge_caches_pull_mode_for_petstore() {
        let (reg, c, nodes) = ps();
        let d = petstore_descriptor(Config::QueryCaching, &reg, &c, &nodes);
        assert!(d.query_cache.covers(nodes.edge1, TAG_PRODUCTS_BY_CATEGORY));
        assert!(d.query_cache.covers(nodes.edge2, TAG_ITEMS_BY_PRODUCT));
        assert_eq!(d.query_cache.propagation, UpdatePropagation::Invalidate);
        assert_eq!(d.entity_propagation, UpdatePropagation::SyncPush);
    }

    #[test]
    fn async_updates_switch_propagation_and_deploy_mdbs() {
        let (reg, c, nodes) = ps();
        let d = petstore_descriptor(Config::AsyncUpdates, &reg, &c, &nodes);
        assert_eq!(d.entity_propagation, UpdatePropagation::AsyncPush);
        assert!(d.placement(c.update_subscriber).hosts(nodes.edge1));
        assert_eq!(d.jms_broker, nodes.main);
    }

    #[test]
    fn rubis_facade_moves_only_servlets() {
        let (reg, c, nodes) = rubis();
        let d = rubis_descriptor(Config::RemoteFacade, &reg, &c, &nodes);
        assert!(d.placement(c.web).hosts(nodes.edge1));
        for sb in [c.sb_view_item, c.sb_store_bid, c.sb_put_bid] {
            assert!(!d.placement(sb).hosts(nodes.edge1));
        }
    }

    #[test]
    fn rubis_caching_deploys_read_facades_and_replicas() {
        let (reg, c, nodes) = rubis();
        let d = rubis_descriptor(Config::StatefulCaching, &reg, &c, &nodes);
        for sb in c.edge_read_facades() {
            assert!(d.placement(sb).hosts(nodes.edge1));
        }
        assert!(d.placement(c.item).hosts(nodes.edge2));
        assert!(d.placement(c.user).hosts(nodes.edge1));
        // Bid/Comment entities are write-path: not replicated.
        assert!(!d.placement(c.bid).hosts(nodes.edge1));
        // Form façades arrive only with query caching.
        assert!(!d.placement(c.sb_put_bid).hosts(nodes.edge1));
    }

    #[test]
    fn rubis_query_caching_is_push_based_and_covers_all_tags() {
        let (reg, c, nodes) = rubis();
        let d = rubis_descriptor(Config::QueryCaching, &reg, &c, &nodes);
        for tag in tags::ALL {
            assert!(d.query_cache.covers(nodes.edge1, tag), "{tag}");
        }
        assert_eq!(d.query_cache.propagation, UpdatePropagation::SyncPush);
        assert!(d.placement(c.sb_put_bid).hosts(nodes.edge1));
        // Writers stay centralized.
        assert!(!d.placement(c.sb_store_bid).hosts(nodes.edge1));
    }

    #[test]
    fn config_metadata() {
        assert_eq!(Config::all().len(), 5);
        assert!(!Config::Centralized.uses_facade_app());
        assert!(Config::RemoteFacade.uses_facade_app());
        assert_eq!(Config::StatefulCaching.section(), "4.3");
        let names: Vec<_> = Config::all().iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), 5);
    }
}
