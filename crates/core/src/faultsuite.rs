//! The standard WAN fault suite.
//!
//! Three canonical failure episodes against the Figure 2 testbed, each
//! scripted into the measured window of a [`crate::Scenario`]:
//!
//! * **main-link partition** — both directions of the edge-1 WAN leg go
//!   down for the middle half of the window. The centralized configuration
//!   goes dark for edge-1 clients; configurations with edge caches keep
//!   answering reads locally (with recorded staleness when the policy's
//!   stale-serve knob is on).
//! * **edge crash** — the edge-1 application process crashes for the middle
//!   half of the window, losing its caches; the host keeps forwarding, so
//!   failover to the main server is physically possible and a restart
//!   replays cache warm-up cold.
//! * **lossy link** — the edge-1 uplink drops 5 % of messages for the
//!   middle half of the window; retry policies recover most requests.
//!
//! Schedules are scripted (not random), so a suite run is a deterministic
//! function of the scenario seed and timing alone.
//!
//! A second, *adaptation* suite ([`AdaptiveEpisode`]) scripts environmental
//! drift rather than outages — flash crowds, degraded (not dead) WAN legs,
//! diurnal demand shifts, plus a quiescent control — as the canonical
//! exercises for the closed-loop placement controller (DESIGN.md §6.8).

use mutsvc_desim::fault::{FaultEvent, FaultKind, FaultSchedule};
use mutsvc_desim::time::SimDuration;
use mutsvc_netsim::{LinkId, NodeId, Topology, WAN_LATENCY_THRESHOLD};
use mutsvc_workload::Surge;
use serde::{Deserialize, Serialize};

use crate::topology::PaperNodes;

/// Message-drop probability of the lossy-link episode.
pub const LOSSY_LINK_PROBABILITY: f64 = 0.05;

/// One canonical failure episode of the standard suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultCase {
    /// The edge-1 WAN leg partitions in both directions.
    MainLinkPartition,
    /// The edge-1 application process crashes and later restarts.
    EdgeCrash,
    /// The edge-1 uplink drops messages.
    LossyLink,
}

impl FaultCase {
    /// All cases, in report order.
    pub fn all() -> [FaultCase; 3] {
        [
            FaultCase::MainLinkPartition,
            FaultCase::EdgeCrash,
            FaultCase::LossyLink,
        ]
    }

    /// Stable name used in reports and JSON artifacts.
    pub fn name(self) -> &'static str {
        match self {
            FaultCase::MainLinkPartition => "main-link-partition",
            FaultCase::EdgeCrash => "edge-crash",
            FaultCase::LossyLink => "lossy-link",
        }
    }

    /// Scripts the episode against a built paper topology: onset at one
    /// quarter into the measured window, recovery at three quarters.
    ///
    /// # Panics
    ///
    /// Panics if the topology lacks the paper's edge-1 links (it was not
    /// built by [`crate::topology::paper_topology`]).
    pub fn schedule(
        self,
        topology: &Topology,
        nodes: &PaperNodes,
        warmup: SimDuration,
        duration: SimDuration,
    ) -> FaultSchedule {
        let down = warmup + duration / 4;
        let up = warmup + (duration / 4) * 3;
        let uplink = directed_link(topology, nodes, true);
        let downlink = directed_link(topology, nodes, false);
        let events = match self {
            FaultCase::MainLinkPartition => vec![
                FaultEvent {
                    at: down,
                    kind: FaultKind::LinkDown { link: uplink },
                },
                FaultEvent {
                    at: down,
                    kind: FaultKind::LinkDown { link: downlink },
                },
                FaultEvent {
                    at: up,
                    kind: FaultKind::LinkRestore { link: uplink },
                },
                FaultEvent {
                    at: up,
                    kind: FaultKind::LinkRestore { link: downlink },
                },
            ],
            FaultCase::EdgeCrash => {
                let node = nodes.edge1.index() as u32;
                vec![
                    FaultEvent {
                        at: down,
                        kind: FaultKind::NodeCrash { node },
                    },
                    FaultEvent {
                        at: up,
                        kind: FaultKind::NodeRestart { node },
                    },
                ]
            }
            FaultCase::LossyLink => vec![
                FaultEvent {
                    at: down,
                    kind: FaultKind::MsgLoss {
                        link: uplink,
                        probability: LOSSY_LINK_PROBABILITY,
                    },
                },
                FaultEvent {
                    at: up,
                    kind: FaultKind::MsgLoss {
                        link: uplink,
                        probability: 0.0,
                    },
                },
            ],
        };
        FaultSchedule::scripted(events)
    }
}

/// The static fault set of one episode, exposed for consumption by the
/// deployment verifier: which directed links and nodes are down — and which
/// links are lossy — while the episode is active, plus its active window.
///
/// A view is a pure fold over the scripted [`FaultSchedule`]: events strictly
/// before the final (heal) timestamp are applied in order, so restores at the
/// heal tick do not empty the set. For the standard suite the fault set is
/// constant between onset and heal, so the view is exact; schedules whose
/// fault set varies mid-episode flatten to the set standing just before heal.
#[derive(Debug, Clone, PartialEq)]
pub struct EpisodeView {
    /// Stable episode name ([`FaultCase::name`] for the standard suite).
    pub name: String,
    /// Directed links that are down while the episode is active.
    pub dead_links: Vec<LinkId>,
    /// Nodes whose application process is crashed while active.
    pub dead_nodes: Vec<NodeId>,
    /// Directed links dropping messages while active, with drop probability.
    pub lossy_links: Vec<(LinkId, f64)>,
    /// Absolute time the fault set takes effect.
    pub onset: SimDuration,
    /// Absolute time the fault set is fully restored.
    pub heal: SimDuration,
}

impl EpisodeView {
    /// Folds a scripted schedule into its static fault set.
    ///
    /// Dense `u32` indices in the events are mapped back to topology ids;
    /// onset is the first event's time and heal the last's.
    pub fn from_schedule(name: &str, schedule: &FaultSchedule, topology: &Topology) -> EpisodeView {
        let link_at = |index: u32| {
            topology
                .link_ids()
                .nth(index as usize)
                .expect("schedule link index within topology")
        };
        let node_at = |index: u32| {
            topology
                .node_ids()
                .nth(index as usize)
                .expect("schedule node index within topology")
        };
        let mut view = EpisodeView {
            name: name.to_string(),
            dead_links: Vec::new(),
            dead_nodes: Vec::new(),
            lossy_links: Vec::new(),
            onset: schedule.events.first().map(|e| e.at).unwrap_or_default(),
            heal: schedule.events.last().map(|e| e.at).unwrap_or_default(),
        };
        for event in &schedule.events {
            if event.at >= view.heal && schedule.events.len() > 1 {
                break;
            }
            match event.kind {
                FaultKind::LinkDown { link } => {
                    let link = link_at(link);
                    if !view.dead_links.contains(&link) {
                        view.dead_links.push(link);
                    }
                }
                FaultKind::LinkRestore { link } | FaultKind::LinkDegraded { link, .. } => {
                    let link = link_at(link);
                    view.dead_links.retain(|&l| l != link);
                }
                FaultKind::NodeCrash { node } => {
                    let node = node_at(node);
                    if !view.dead_nodes.contains(&node) {
                        view.dead_nodes.push(node);
                    }
                }
                FaultKind::NodeRestart { node } => {
                    let node = node_at(node);
                    view.dead_nodes.retain(|&n| n != node);
                }
                FaultKind::MsgLoss { link, probability } => {
                    let link = link_at(link);
                    view.lossy_links.retain(|&(l, _)| l != link);
                    if probability > 0.0 {
                        view.lossy_links.push((link, probability));
                    }
                }
            }
        }
        view
    }

    /// How long the fault set is active.
    pub fn active(&self) -> SimDuration {
        self.heal.saturating_sub(self.onset)
    }
}

impl FaultCase {
    /// The episode's static fault set against a built paper topology, with
    /// the same onset/heal timing [`FaultCase::schedule`] scripts.
    pub fn view(
        self,
        topology: &Topology,
        nodes: &PaperNodes,
        warmup: SimDuration,
        duration: SimDuration,
    ) -> EpisodeView {
        EpisodeView::from_schedule(
            self.name(),
            &self.schedule(topology, nodes, warmup, duration),
            topology,
        )
    }
}

/// Latency multiplier of the [`AdaptiveEpisode::LinkDegradation`] episode.
pub const LINK_DEGRADATION_FACTOR: f64 = 8.0;

/// Latency multiplier each half of [`AdaptiveEpisode::DiurnalShift`]
/// applies to the off-peak region's WAN leg.
pub const DIURNAL_SHIFT_FACTOR: f64 = 6.0;

/// Rate multiplier of the [`AdaptiveEpisode::FlashCrowd`] surge.
pub const FLASH_CROWD_FACTOR: f64 = 4.0;

/// One canonical adaptation episode of the closed-loop suite (DESIGN.md
/// §6.8): a scripted environmental shift the live-migration controller is
/// expected to react to — or, for the quiescent control, expected to leave
/// strictly alone.
///
/// Episodes script *drift*, not destruction: links slow down or demand
/// moves, but nothing partitions, so controller-off runs stay comparable
/// and any availability delta is attributable to adaptation alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AdaptiveEpisode {
    /// Nothing changes. The controller must commit zero migrations and
    /// leave the run byte-identical to a controller-off run's statistics.
    Quiescent,
    /// The stressed region's client group surges to
    /// [`FLASH_CROWD_FACTOR`]× its steady rate for the middle half of the
    /// measured window, shifting the observed demand shares toward it.
    FlashCrowd,
    /// Every WAN link on the corridor between the stressed region's edge
    /// and the core runs at [`LINK_DEGRADATION_FACTOR`]× latency (both
    /// directions) for the middle half of the window — the classic
    /// route-flap/bufferbloat drift case.
    LinkDegradation,
    /// Demand follows the sun: the *counterpart* region's leg degrades
    /// during the first half of the episode and recovers while the
    /// stressed region's leg degrades for the second half.
    DiurnalShift,
}

/// Which nodes and client group an [`AdaptiveEpisode`] stresses. Built by
/// the scenario assembler from whichever topology is in play (the paper
/// star or a generated multi-tier network).
#[derive(Debug, Clone, PartialEq)]
pub struct EpisodeTargets {
    /// The core site the degraded corridors are measured against (the main
    /// application server).
    pub core: NodeId,
    /// The stressed edge PoP: its corridor degrades, its clients surge.
    pub edge1: NodeId,
    /// The counterpart PoP the diurnal shift swings away from.
    pub edge2: NodeId,
    /// Name of the client group entering at `edge1`.
    pub group1: String,
}

impl AdaptiveEpisode {
    /// All episodes, in report order.
    pub fn all() -> [AdaptiveEpisode; 4] {
        [
            AdaptiveEpisode::Quiescent,
            AdaptiveEpisode::FlashCrowd,
            AdaptiveEpisode::LinkDegradation,
            AdaptiveEpisode::DiurnalShift,
        ]
    }

    /// Stable name used in reports and JSON artifacts.
    pub fn name(self) -> &'static str {
        match self {
            AdaptiveEpisode::Quiescent => "quiescent",
            AdaptiveEpisode::FlashCrowd => "flash-crowd",
            AdaptiveEpisode::LinkDegradation => "link-degradation",
            AdaptiveEpisode::DiurnalShift => "diurnal-shift",
        }
    }

    /// Scripts the episode: onset at one quarter into the measured window,
    /// full recovery at three quarters (the diurnal shift hands over at the
    /// midpoint). Returns the fault timeline plus any load surges.
    ///
    /// # Panics
    ///
    /// Panics if a target edge has no route to the core, or the corridor
    /// between them crosses no WAN link.
    pub fn schedule(
        self,
        topology: &Topology,
        targets: &EpisodeTargets,
        warmup: SimDuration,
        duration: SimDuration,
    ) -> (FaultSchedule, Vec<Surge>) {
        let onset = warmup + duration / 4;
        let midpoint = warmup + duration / 2;
        let heal = warmup + (duration / 4) * 3;
        let leg1 = corridor(topology, targets.edge1, targets.core);
        let degrade = |at, links: &[u32], factor| {
            links
                .iter()
                .map(|&link| FaultEvent {
                    at,
                    kind: FaultKind::LinkDegraded { link, factor },
                })
                .collect::<Vec<_>>()
        };
        let (events, surges) = match self {
            AdaptiveEpisode::Quiescent => (vec![], vec![]),
            AdaptiveEpisode::FlashCrowd => (
                vec![],
                vec![Surge {
                    group: targets.group1.clone(),
                    from: onset,
                    to: heal,
                    factor: FLASH_CROWD_FACTOR,
                }],
            ),
            AdaptiveEpisode::LinkDegradation => {
                let mut events = Vec::new();
                events.extend(degrade(onset, &leg1, LINK_DEGRADATION_FACTOR));
                events.extend(degrade(heal, &leg1, 1.0));
                (events, vec![])
            }
            AdaptiveEpisode::DiurnalShift => {
                let leg2 = corridor(topology, targets.edge2, targets.core);
                let mut events = Vec::new();
                events.extend(degrade(onset, &leg2, DIURNAL_SHIFT_FACTOR));
                events.extend(degrade(midpoint, &leg2, 1.0));
                events.extend(degrade(midpoint, &leg1, DIURNAL_SHIFT_FACTOR));
                events.extend(degrade(heal, &leg1, 1.0));
                (events, vec![])
            }
        };
        (FaultSchedule::scripted(events), surges)
    }
}

/// The dense indices of every WAN link on the corridor between an edge PoP
/// and the core, both directions. On the paper star this is the edge's
/// shaped leg; on a multi-tier network it is the whole regional path
/// (PoP → hub → core), so degrading a corridor bites however many WAN
/// hops the topology stacks. Sub-threshold (LAN/metro) hops are left alone.
fn corridor(topology: &Topology, edge: NodeId, core: NodeId) -> Vec<u32> {
    let mut links = Vec::new();
    for (a, b) in [(edge, core), (core, edge)] {
        let route = topology
            .route(a, b)
            .unwrap_or_else(|| panic!("no route between edge and core"));
        for &l in route {
            if topology.link(l).latency > WAN_LATENCY_THRESHOLD {
                links.push(l.index() as u32);
            }
        }
    }
    assert!(!links.is_empty(), "corridor crosses no WAN link");
    links
}

/// The dense index of the edge-1 WAN leg (`true`: edge1 → router).
fn directed_link(topology: &Topology, nodes: &PaperNodes, uplink: bool) -> u32 {
    let (from, to) = if uplink {
        (nodes.edge1, nodes.router)
    } else {
        (nodes.router, nodes.edge1)
    };
    let link: LinkId = topology
        .link_ids()
        .find(|&l| topology.link(l).from == from && topology.link(l).to == to)
        .expect("paper topology has the edge-1 WAN leg");
    link.index() as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::paper_topology;

    #[test]
    fn schedules_target_the_edge1_leg_and_midwindow() {
        let (t, n) = paper_topology(false);
        let warmup = SimDuration::from_secs(100);
        let duration = SimDuration::from_secs(400);
        for case in FaultCase::all() {
            let s = case.schedule(&t, &n, warmup, duration);
            assert!(!s.is_empty(), "{}", case.name());
            assert_eq!(s.events.first().unwrap().at, SimDuration::from_secs(200));
            assert_eq!(s.events.last().unwrap().at, SimDuration::from_secs(400));
        }
        let partition = FaultCase::MainLinkPartition.schedule(&t, &n, warmup, duration);
        let downs = partition
            .events
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::LinkDown { .. }))
            .count();
        assert_eq!(downs, 2, "both directions cut");
        let crash = FaultCase::EdgeCrash.schedule(&t, &n, warmup, duration);
        assert!(matches!(
            crash.events[0].kind,
            FaultKind::NodeCrash { node } if node == n.edge1.index() as u32
        ));
    }

    #[test]
    fn views_expose_the_static_fault_set() {
        let (t, n) = paper_topology(false);
        let warmup = SimDuration::from_secs(100);
        let duration = SimDuration::from_secs(400);

        let partition = FaultCase::MainLinkPartition.view(&t, &n, warmup, duration);
        assert_eq!(partition.dead_links.len(), 2, "both directions of the leg");
        assert!(partition.dead_nodes.is_empty() && partition.lossy_links.is_empty());
        assert_eq!(partition.onset, SimDuration::from_secs(200));
        assert_eq!(partition.heal, SimDuration::from_secs(400));
        assert_eq!(partition.active(), duration / 2);
        for &link in &partition.dead_links {
            let l = t.link(link);
            assert!(
                (l.from == n.edge1 && l.to == n.router) || (l.from == n.router && l.to == n.edge1),
                "partition cuts the edge-1 leg only"
            );
        }

        let crash = FaultCase::EdgeCrash.view(&t, &n, warmup, duration);
        assert_eq!(crash.dead_nodes, vec![n.edge1]);
        assert!(crash.dead_links.is_empty() && crash.lossy_links.is_empty());

        let lossy = FaultCase::LossyLink.view(&t, &n, warmup, duration);
        assert_eq!(lossy.lossy_links.len(), 1);
        assert_eq!(lossy.lossy_links[0].1, LOSSY_LINK_PROBABILITY);
        let uplink = t.link(lossy.lossy_links[0].0);
        assert!(
            uplink.from == n.edge1 && uplink.to == n.router,
            "uplink only"
        );
        assert!(lossy.dead_links.is_empty() && lossy.dead_nodes.is_empty());
    }

    #[test]
    fn view_fold_honors_restores() {
        let (t, n) = paper_topology(false);
        let link = directed_link(&t, &n, true);
        let schedule = FaultSchedule::scripted(vec![
            FaultEvent {
                at: SimDuration::from_secs(1),
                kind: FaultKind::LinkDown { link },
            },
            FaultEvent {
                at: SimDuration::from_secs(2),
                kind: FaultKind::LinkRestore { link },
            },
            FaultEvent {
                at: SimDuration::from_secs(3),
                kind: FaultKind::MsgLoss {
                    link,
                    probability: 0.2,
                },
            },
            FaultEvent {
                at: SimDuration::from_secs(4),
                kind: FaultKind::MsgLoss {
                    link,
                    probability: 0.0,
                },
            },
        ]);
        let view = EpisodeView::from_schedule("custom", &schedule, &t);
        assert!(view.dead_links.is_empty(), "restored link is not dead");
        assert_eq!(
            view.lossy_links,
            vec![(t.link_ids().nth(link as usize).unwrap(), 0.2)],
            "loss zeroed only at the heal tick stays in the active set"
        );
        assert_eq!(view.onset, SimDuration::from_secs(1));
        assert_eq!(view.heal, SimDuration::from_secs(4));
    }

    #[test]
    fn adaptive_episodes_script_drift_not_outages() {
        let (t, n) = paper_topology(false);
        let warmup = SimDuration::from_secs(90);
        let duration = SimDuration::from_secs(300);
        let targets = EpisodeTargets {
            core: n.main,
            edge1: n.edge1,
            edge2: n.edge2,
            group1: "remote1".to_string(),
        };
        for episode in AdaptiveEpisode::all() {
            let (schedule, surges) = episode.schedule(&t, &targets, warmup, duration);
            // Drift only: no partitions, crashes or message loss.
            for e in &schedule.events {
                assert!(
                    matches!(e.kind, FaultKind::LinkDegraded { .. }),
                    "{}: {:?}",
                    episode.name(),
                    e.kind
                );
            }
            match episode {
                AdaptiveEpisode::Quiescent => {
                    assert!(schedule.is_empty() && surges.is_empty());
                }
                AdaptiveEpisode::FlashCrowd => {
                    assert!(schedule.is_empty());
                    assert_eq!(surges.len(), 1);
                    assert_eq!(surges[0].group, "remote1");
                    assert_eq!(surges[0].factor, FLASH_CROWD_FACTOR);
                    assert_eq!(surges[0].from, SimDuration::from_secs(165));
                    assert_eq!(surges[0].to, SimDuration::from_secs(315));
                }
                AdaptiveEpisode::LinkDegradation => {
                    assert_eq!(schedule.events.len(), 4, "two legs, degrade + heal");
                    assert!(surges.is_empty());
                    assert_eq!(schedule.events[0].at, SimDuration::from_secs(165));
                    assert_eq!(schedule.events[3].at, SimDuration::from_secs(315));
                    // Both directions of the edge-1 WAN leg, nothing else.
                    let (up, down) = (directed_link(&t, &n, true), directed_link(&t, &n, false));
                    for e in &schedule.events {
                        let FaultKind::LinkDegraded { link, .. } = e.kind else {
                            unreachable!()
                        };
                        assert!(link == up || link == down, "targets the edge-1 leg");
                    }
                }
                AdaptiveEpisode::DiurnalShift => {
                    assert_eq!(schedule.events.len(), 8, "handover at the midpoint");
                    assert!(surges.is_empty());
                    assert_eq!(schedule.events[0].at, SimDuration::from_secs(165));
                    assert_eq!(schedule.events[2].at, SimDuration::from_secs(240));
                    assert_eq!(schedule.events[7].at, SimDuration::from_secs(315));
                }
            }
        }
    }

    #[test]
    fn corridor_picks_the_shaped_legs_not_the_lans() {
        let (t, n) = paper_topology(false);
        let links = corridor(&t, n.edge1, n.main);
        assert_eq!(links.len(), 2, "one shaped leg, both directions");
        for idx in links {
            let l = t.link(t.link_ids().nth(idx as usize).unwrap());
            assert!(
                (l.from == n.edge1 && l.to == n.router) || (l.from == n.router && l.to == n.edge1),
                "only the edge-1 WAN leg degrades"
            );
        }
    }

    #[test]
    fn schedules_are_identical_across_builds() {
        let (ta, na) = paper_topology(false);
        let (tb, nb) = paper_topology(false);
        let w = SimDuration::from_secs(90);
        let d = SimDuration::from_secs(300);
        for case in FaultCase::all() {
            assert_eq!(
                case.schedule(&ta, &na, w, d).render_timeline(),
                case.schedule(&tb, &nb, w, d).render_timeline()
            );
        }
    }
}
