//! The standard WAN fault suite.
//!
//! Three canonical failure episodes against the Figure 2 testbed, each
//! scripted into the measured window of a [`crate::Scenario`]:
//!
//! * **main-link partition** — both directions of the edge-1 WAN leg go
//!   down for the middle half of the window. The centralized configuration
//!   goes dark for edge-1 clients; configurations with edge caches keep
//!   answering reads locally (with recorded staleness when the policy's
//!   stale-serve knob is on).
//! * **edge crash** — the edge-1 application process crashes for the middle
//!   half of the window, losing its caches; the host keeps forwarding, so
//!   failover to the main server is physically possible and a restart
//!   replays cache warm-up cold.
//! * **lossy link** — the edge-1 uplink drops 5 % of messages for the
//!   middle half of the window; retry policies recover most requests.
//!
//! Schedules are scripted (not random), so a suite run is a deterministic
//! function of the scenario seed and timing alone.

use mutsvc_desim::fault::{FaultEvent, FaultKind, FaultSchedule};
use mutsvc_desim::time::SimDuration;
use mutsvc_netsim::{LinkId, NodeId, Topology};
use serde::{Deserialize, Serialize};

use crate::topology::PaperNodes;

/// Message-drop probability of the lossy-link episode.
pub const LOSSY_LINK_PROBABILITY: f64 = 0.05;

/// One canonical failure episode of the standard suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultCase {
    /// The edge-1 WAN leg partitions in both directions.
    MainLinkPartition,
    /// The edge-1 application process crashes and later restarts.
    EdgeCrash,
    /// The edge-1 uplink drops messages.
    LossyLink,
}

impl FaultCase {
    /// All cases, in report order.
    pub fn all() -> [FaultCase; 3] {
        [
            FaultCase::MainLinkPartition,
            FaultCase::EdgeCrash,
            FaultCase::LossyLink,
        ]
    }

    /// Stable name used in reports and JSON artifacts.
    pub fn name(self) -> &'static str {
        match self {
            FaultCase::MainLinkPartition => "main-link-partition",
            FaultCase::EdgeCrash => "edge-crash",
            FaultCase::LossyLink => "lossy-link",
        }
    }

    /// Scripts the episode against a built paper topology: onset at one
    /// quarter into the measured window, recovery at three quarters.
    ///
    /// # Panics
    ///
    /// Panics if the topology lacks the paper's edge-1 links (it was not
    /// built by [`crate::topology::paper_topology`]).
    pub fn schedule(
        self,
        topology: &Topology,
        nodes: &PaperNodes,
        warmup: SimDuration,
        duration: SimDuration,
    ) -> FaultSchedule {
        let down = warmup + duration / 4;
        let up = warmup + (duration / 4) * 3;
        let uplink = directed_link(topology, nodes, true);
        let downlink = directed_link(topology, nodes, false);
        let events = match self {
            FaultCase::MainLinkPartition => vec![
                FaultEvent {
                    at: down,
                    kind: FaultKind::LinkDown { link: uplink },
                },
                FaultEvent {
                    at: down,
                    kind: FaultKind::LinkDown { link: downlink },
                },
                FaultEvent {
                    at: up,
                    kind: FaultKind::LinkRestore { link: uplink },
                },
                FaultEvent {
                    at: up,
                    kind: FaultKind::LinkRestore { link: downlink },
                },
            ],
            FaultCase::EdgeCrash => {
                let node = nodes.edge1.index() as u32;
                vec![
                    FaultEvent {
                        at: down,
                        kind: FaultKind::NodeCrash { node },
                    },
                    FaultEvent {
                        at: up,
                        kind: FaultKind::NodeRestart { node },
                    },
                ]
            }
            FaultCase::LossyLink => vec![
                FaultEvent {
                    at: down,
                    kind: FaultKind::MsgLoss {
                        link: uplink,
                        probability: LOSSY_LINK_PROBABILITY,
                    },
                },
                FaultEvent {
                    at: up,
                    kind: FaultKind::MsgLoss {
                        link: uplink,
                        probability: 0.0,
                    },
                },
            ],
        };
        FaultSchedule::scripted(events)
    }
}

/// The static fault set of one episode, exposed for consumption by the
/// deployment verifier: which directed links and nodes are down — and which
/// links are lossy — while the episode is active, plus its active window.
///
/// A view is a pure fold over the scripted [`FaultSchedule`]: events strictly
/// before the final (heal) timestamp are applied in order, so restores at the
/// heal tick do not empty the set. For the standard suite the fault set is
/// constant between onset and heal, so the view is exact; schedules whose
/// fault set varies mid-episode flatten to the set standing just before heal.
#[derive(Debug, Clone, PartialEq)]
pub struct EpisodeView {
    /// Stable episode name ([`FaultCase::name`] for the standard suite).
    pub name: String,
    /// Directed links that are down while the episode is active.
    pub dead_links: Vec<LinkId>,
    /// Nodes whose application process is crashed while active.
    pub dead_nodes: Vec<NodeId>,
    /// Directed links dropping messages while active, with drop probability.
    pub lossy_links: Vec<(LinkId, f64)>,
    /// Absolute time the fault set takes effect.
    pub onset: SimDuration,
    /// Absolute time the fault set is fully restored.
    pub heal: SimDuration,
}

impl EpisodeView {
    /// Folds a scripted schedule into its static fault set.
    ///
    /// Dense `u32` indices in the events are mapped back to topology ids;
    /// onset is the first event's time and heal the last's.
    pub fn from_schedule(name: &str, schedule: &FaultSchedule, topology: &Topology) -> EpisodeView {
        let link_at = |index: u32| {
            topology
                .link_ids()
                .nth(index as usize)
                .expect("schedule link index within topology")
        };
        let node_at = |index: u32| {
            topology
                .node_ids()
                .nth(index as usize)
                .expect("schedule node index within topology")
        };
        let mut view = EpisodeView {
            name: name.to_string(),
            dead_links: Vec::new(),
            dead_nodes: Vec::new(),
            lossy_links: Vec::new(),
            onset: schedule.events.first().map(|e| e.at).unwrap_or_default(),
            heal: schedule.events.last().map(|e| e.at).unwrap_or_default(),
        };
        for event in &schedule.events {
            if event.at >= view.heal && schedule.events.len() > 1 {
                break;
            }
            match event.kind {
                FaultKind::LinkDown { link } => {
                    let link = link_at(link);
                    if !view.dead_links.contains(&link) {
                        view.dead_links.push(link);
                    }
                }
                FaultKind::LinkRestore { link } | FaultKind::LinkDegraded { link, .. } => {
                    let link = link_at(link);
                    view.dead_links.retain(|&l| l != link);
                }
                FaultKind::NodeCrash { node } => {
                    let node = node_at(node);
                    if !view.dead_nodes.contains(&node) {
                        view.dead_nodes.push(node);
                    }
                }
                FaultKind::NodeRestart { node } => {
                    let node = node_at(node);
                    view.dead_nodes.retain(|&n| n != node);
                }
                FaultKind::MsgLoss { link, probability } => {
                    let link = link_at(link);
                    view.lossy_links.retain(|&(l, _)| l != link);
                    if probability > 0.0 {
                        view.lossy_links.push((link, probability));
                    }
                }
            }
        }
        view
    }

    /// How long the fault set is active.
    pub fn active(&self) -> SimDuration {
        self.heal.saturating_sub(self.onset)
    }
}

impl FaultCase {
    /// The episode's static fault set against a built paper topology, with
    /// the same onset/heal timing [`FaultCase::schedule`] scripts.
    pub fn view(
        self,
        topology: &Topology,
        nodes: &PaperNodes,
        warmup: SimDuration,
        duration: SimDuration,
    ) -> EpisodeView {
        EpisodeView::from_schedule(
            self.name(),
            &self.schedule(topology, nodes, warmup, duration),
            topology,
        )
    }
}

/// The dense index of the edge-1 WAN leg (`true`: edge1 → router).
fn directed_link(topology: &Topology, nodes: &PaperNodes, uplink: bool) -> u32 {
    let (from, to) = if uplink {
        (nodes.edge1, nodes.router)
    } else {
        (nodes.router, nodes.edge1)
    };
    let link: LinkId = topology
        .link_ids()
        .find(|&l| topology.link(l).from == from && topology.link(l).to == to)
        .expect("paper topology has the edge-1 WAN leg");
    link.index() as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::paper_topology;

    #[test]
    fn schedules_target_the_edge1_leg_and_midwindow() {
        let (t, n) = paper_topology(false);
        let warmup = SimDuration::from_secs(100);
        let duration = SimDuration::from_secs(400);
        for case in FaultCase::all() {
            let s = case.schedule(&t, &n, warmup, duration);
            assert!(!s.is_empty(), "{}", case.name());
            assert_eq!(s.events.first().unwrap().at, SimDuration::from_secs(200));
            assert_eq!(s.events.last().unwrap().at, SimDuration::from_secs(400));
        }
        let partition = FaultCase::MainLinkPartition.schedule(&t, &n, warmup, duration);
        let downs = partition
            .events
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::LinkDown { .. }))
            .count();
        assert_eq!(downs, 2, "both directions cut");
        let crash = FaultCase::EdgeCrash.schedule(&t, &n, warmup, duration);
        assert!(matches!(
            crash.events[0].kind,
            FaultKind::NodeCrash { node } if node == n.edge1.index() as u32
        ));
    }

    #[test]
    fn views_expose_the_static_fault_set() {
        let (t, n) = paper_topology(false);
        let warmup = SimDuration::from_secs(100);
        let duration = SimDuration::from_secs(400);

        let partition = FaultCase::MainLinkPartition.view(&t, &n, warmup, duration);
        assert_eq!(partition.dead_links.len(), 2, "both directions of the leg");
        assert!(partition.dead_nodes.is_empty() && partition.lossy_links.is_empty());
        assert_eq!(partition.onset, SimDuration::from_secs(200));
        assert_eq!(partition.heal, SimDuration::from_secs(400));
        assert_eq!(partition.active(), duration / 2);
        for &link in &partition.dead_links {
            let l = t.link(link);
            assert!(
                (l.from == n.edge1 && l.to == n.router) || (l.from == n.router && l.to == n.edge1),
                "partition cuts the edge-1 leg only"
            );
        }

        let crash = FaultCase::EdgeCrash.view(&t, &n, warmup, duration);
        assert_eq!(crash.dead_nodes, vec![n.edge1]);
        assert!(crash.dead_links.is_empty() && crash.lossy_links.is_empty());

        let lossy = FaultCase::LossyLink.view(&t, &n, warmup, duration);
        assert_eq!(lossy.lossy_links.len(), 1);
        assert_eq!(lossy.lossy_links[0].1, LOSSY_LINK_PROBABILITY);
        let uplink = t.link(lossy.lossy_links[0].0);
        assert!(
            uplink.from == n.edge1 && uplink.to == n.router,
            "uplink only"
        );
        assert!(lossy.dead_links.is_empty() && lossy.dead_nodes.is_empty());
    }

    #[test]
    fn view_fold_honors_restores() {
        let (t, n) = paper_topology(false);
        let link = directed_link(&t, &n, true);
        let schedule = FaultSchedule::scripted(vec![
            FaultEvent {
                at: SimDuration::from_secs(1),
                kind: FaultKind::LinkDown { link },
            },
            FaultEvent {
                at: SimDuration::from_secs(2),
                kind: FaultKind::LinkRestore { link },
            },
            FaultEvent {
                at: SimDuration::from_secs(3),
                kind: FaultKind::MsgLoss {
                    link,
                    probability: 0.2,
                },
            },
            FaultEvent {
                at: SimDuration::from_secs(4),
                kind: FaultKind::MsgLoss {
                    link,
                    probability: 0.0,
                },
            },
        ]);
        let view = EpisodeView::from_schedule("custom", &schedule, &t);
        assert!(view.dead_links.is_empty(), "restored link is not dead");
        assert_eq!(
            view.lossy_links,
            vec![(t.link_ids().nth(link as usize).unwrap(), 0.2)],
            "loss zeroed only at the heal tick stays in the active set"
        );
        assert_eq!(view.onset, SimDuration::from_secs(1));
        assert_eq!(view.heal, SimDuration::from_secs(4));
    }

    #[test]
    fn schedules_are_identical_across_builds() {
        let (ta, na) = paper_topology(false);
        let (tb, nb) = paper_topology(false);
        let w = SimDuration::from_secs(90);
        let d = SimDuration::from_secs(300);
        for case in FaultCase::all() {
            assert_eq!(
                case.schedule(&ta, &na, w, d).render_timeline(),
                case.schedule(&tb, &nb, w, d).render_timeline()
            );
        }
    }
}
