//! The standard WAN fault suite.
//!
//! Three canonical failure episodes against the Figure 2 testbed, each
//! scripted into the measured window of a [`crate::Scenario`]:
//!
//! * **main-link partition** — both directions of the edge-1 WAN leg go
//!   down for the middle half of the window. The centralized configuration
//!   goes dark for edge-1 clients; configurations with edge caches keep
//!   answering reads locally (with recorded staleness when the policy's
//!   stale-serve knob is on).
//! * **edge crash** — the edge-1 application process crashes for the middle
//!   half of the window, losing its caches; the host keeps forwarding, so
//!   failover to the main server is physically possible and a restart
//!   replays cache warm-up cold.
//! * **lossy link** — the edge-1 uplink drops 5 % of messages for the
//!   middle half of the window; retry policies recover most requests.
//!
//! Schedules are scripted (not random), so a suite run is a deterministic
//! function of the scenario seed and timing alone.

use mutsvc_desim::fault::{FaultEvent, FaultKind, FaultSchedule};
use mutsvc_desim::time::SimDuration;
use mutsvc_netsim::{LinkId, Topology};
use serde::{Deserialize, Serialize};

use crate::topology::PaperNodes;

/// Message-drop probability of the lossy-link episode.
pub const LOSSY_LINK_PROBABILITY: f64 = 0.05;

/// One canonical failure episode of the standard suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultCase {
    /// The edge-1 WAN leg partitions in both directions.
    MainLinkPartition,
    /// The edge-1 application process crashes and later restarts.
    EdgeCrash,
    /// The edge-1 uplink drops messages.
    LossyLink,
}

impl FaultCase {
    /// All cases, in report order.
    pub fn all() -> [FaultCase; 3] {
        [
            FaultCase::MainLinkPartition,
            FaultCase::EdgeCrash,
            FaultCase::LossyLink,
        ]
    }

    /// Stable name used in reports and JSON artifacts.
    pub fn name(self) -> &'static str {
        match self {
            FaultCase::MainLinkPartition => "main-link-partition",
            FaultCase::EdgeCrash => "edge-crash",
            FaultCase::LossyLink => "lossy-link",
        }
    }

    /// Scripts the episode against a built paper topology: onset at one
    /// quarter into the measured window, recovery at three quarters.
    ///
    /// # Panics
    ///
    /// Panics if the topology lacks the paper's edge-1 links (it was not
    /// built by [`crate::topology::paper_topology`]).
    pub fn schedule(
        self,
        topology: &Topology,
        nodes: &PaperNodes,
        warmup: SimDuration,
        duration: SimDuration,
    ) -> FaultSchedule {
        let down = warmup + duration / 4;
        let up = warmup + (duration / 4) * 3;
        let uplink = directed_link(topology, nodes, true);
        let downlink = directed_link(topology, nodes, false);
        let events = match self {
            FaultCase::MainLinkPartition => vec![
                FaultEvent {
                    at: down,
                    kind: FaultKind::LinkDown { link: uplink },
                },
                FaultEvent {
                    at: down,
                    kind: FaultKind::LinkDown { link: downlink },
                },
                FaultEvent {
                    at: up,
                    kind: FaultKind::LinkRestore { link: uplink },
                },
                FaultEvent {
                    at: up,
                    kind: FaultKind::LinkRestore { link: downlink },
                },
            ],
            FaultCase::EdgeCrash => {
                let node = nodes.edge1.index() as u32;
                vec![
                    FaultEvent {
                        at: down,
                        kind: FaultKind::NodeCrash { node },
                    },
                    FaultEvent {
                        at: up,
                        kind: FaultKind::NodeRestart { node },
                    },
                ]
            }
            FaultCase::LossyLink => vec![
                FaultEvent {
                    at: down,
                    kind: FaultKind::MsgLoss {
                        link: uplink,
                        probability: LOSSY_LINK_PROBABILITY,
                    },
                },
                FaultEvent {
                    at: up,
                    kind: FaultKind::MsgLoss {
                        link: uplink,
                        probability: 0.0,
                    },
                },
            ],
        };
        FaultSchedule::scripted(events)
    }
}

/// The dense index of the edge-1 WAN leg (`true`: edge1 → router).
fn directed_link(topology: &Topology, nodes: &PaperNodes, uplink: bool) -> u32 {
    let (from, to) = if uplink {
        (nodes.edge1, nodes.router)
    } else {
        (nodes.router, nodes.edge1)
    };
    let link: LinkId = topology
        .link_ids()
        .find(|&l| topology.link(l).from == from && topology.link(l).to == to)
        .expect("paper topology has the edge-1 WAN leg");
    link.index() as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::paper_topology;

    #[test]
    fn schedules_target_the_edge1_leg_and_midwindow() {
        let (t, n) = paper_topology(false);
        let warmup = SimDuration::from_secs(100);
        let duration = SimDuration::from_secs(400);
        for case in FaultCase::all() {
            let s = case.schedule(&t, &n, warmup, duration);
            assert!(!s.is_empty(), "{}", case.name());
            assert_eq!(s.events.first().unwrap().at, SimDuration::from_secs(200));
            assert_eq!(s.events.last().unwrap().at, SimDuration::from_secs(400));
        }
        let partition = FaultCase::MainLinkPartition.schedule(&t, &n, warmup, duration);
        let downs = partition
            .events
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::LinkDown { .. }))
            .count();
        assert_eq!(downs, 2, "both directions cut");
        let crash = FaultCase::EdgeCrash.schedule(&t, &n, warmup, duration);
        assert!(matches!(
            crash.events[0].kind,
            FaultKind::NodeCrash { node } if node == n.edge1.index() as u32
        ));
    }

    #[test]
    fn schedules_are_identical_across_builds() {
        let (ta, na) = paper_topology(false);
        let (tb, nb) = paper_topology(false);
        let w = SimDuration::from_secs(90);
        let d = SimDuration::from_secs(300);
        for case in FaultCase::all() {
            assert_eq!(
                case.schedule(&ta, &na, w, d).render_timeline(),
                case.schedule(&tb, &nb, w, d).render_timeline()
            );
        }
    }
}
