//! Report generation: regenerates the paper's Tables 6/7 and Figures 7/8
//! from measured runs, renders side-by-side comparisons against the paper's
//! numbers, and validates the qualitative *shape* criteria listed in
//! `DESIGN.md` §5.

use mutsvc_workload::ExperimentReport;

use crate::configs::Config;
use crate::experiment::AppKind;
use crate::paper::{paper_mean, PaperRow, PETSTORE_COLUMNS, RUBIS_COLUMNS, TABLE6, TABLE7};

/// The two remote client groups aggregated into the paper's single
/// "Remote" row.
pub const REMOTE_GROUPS: [&str; 2] = ["remote1", "remote2"];

/// Table metadata for an application.
pub fn columns_of(app: AppKind) -> &'static [(&'static str, &'static str)] {
    match app {
        AppKind::PetStore => &PETSTORE_COLUMNS,
        AppKind::Rubis => &RUBIS_COLUMNS,
    }
}

/// The paper reference table for an application.
pub fn paper_table_of(app: AppKind) -> &'static [PaperRow; 5] {
    match app {
        AppKind::PetStore => &TABLE6,
        AppKind::Rubis => &TABLE7,
    }
}

/// The table number an application's sweep reproduces.
pub fn table_number(app: AppKind) -> u32 {
    match app {
        AppKind::PetStore => 6,
        AppKind::Rubis => 7,
    }
}

/// The measured mean of one table cell (remote = both edge groups pooled).
pub fn measured_mean(
    report: &ExperimentReport,
    remote: bool,
    pattern: &str,
    page: &str,
) -> Option<f64> {
    if remote {
        report
            .stats
            .mean_ms_over_groups(&REMOTE_GROUPS, pattern, page)
    } else {
        report.stats.mean_ms("local", pattern, page)
    }
}

/// Renders the measured table (the paper's Table 6 or 7) as fixed-width text.
///
/// `reports` must hold the five configurations in [`Config::all`] order.
pub fn render_table(app: AppKind, reports: &[ExperimentReport]) -> String {
    let columns = columns_of(app);
    let mut out = String::new();
    out.push_str(&format!(
        "Table {}: average response times (ms), {} — measured\n",
        table_number(app),
        app.name()
    ));
    out.push_str(&format!("{:<18}{:>3}", "configuration", ""));
    for (_, page) in columns {
        out.push_str(&format!("{:>9}", truncate(page, 8)));
    }
    out.push('\n');
    for (config, report) in Config::all().iter().zip(reports) {
        for remote in [false, true] {
            out.push_str(&format!(
                "{:<18}{:>3}",
                config.name(),
                if remote { "R" } else { "L" }
            ));
            for (pattern, page) in columns {
                match measured_mean(report, remote, pattern, page) {
                    Some(v) => out.push_str(&format!("{:>9.0}", v)),
                    None => out.push_str(&format!("{:>9}", "-")),
                }
            }
            out.push('\n');
        }
    }
    out
}

/// Renders measured vs paper, cell by cell, with the measured/paper ratio.
pub fn render_comparison(app: AppKind, reports: &[ExperimentReport]) -> String {
    let columns = columns_of(app);
    let paper = paper_table_of(app);
    let mut out = String::new();
    out.push_str(&format!(
        "Table {} comparison ({}): measured ms / paper ms (ratio)\n",
        table_number(app),
        app.name()
    ));
    for (config, report) in Config::all().iter().zip(reports) {
        out.push_str(&format!("-- {} (§{})\n", config.name(), config.section()));
        for remote in [false, true] {
            out.push_str(&format!("  {:<7}", if remote { "remote" } else { "local" }));
            for (pattern, page) in columns {
                let measured = measured_mean(report, remote, pattern, page);
                let reference = paper_mean(paper, columns, *config, remote, pattern, page);
                match (measured, reference) {
                    (Some(m), Some(p)) if p > 0.0 => {
                        out.push_str(&format!(" {page}={m:.0}/{p:.0}({:.2})", m / p));
                    }
                    _ => out.push_str(&format!(" {page}=-")),
                }
            }
            out.push('\n');
        }
    }
    out
}

/// Renders the tail-latency companion to Table 6/7: per-page p95 response
/// times. The paper reports means only; percentiles expose the blocking-push
/// tail that means smooth over.
pub fn render_percentiles(app: AppKind, reports: &[ExperimentReport]) -> String {
    let columns = columns_of(app);
    let mut out = format!(
        "Table {}-p95: 95th-percentile response times (ms), {} — measured\n",
        table_number(app),
        app.name()
    );
    out.push_str(&format!("{:<18}{:>3}", "configuration", ""));
    for (_, page) in columns {
        out.push_str(&format!("{:>9}", truncate(page, 8)));
    }
    out.push('\n');
    for (config, report) in Config::all().iter().zip(reports) {
        for remote in [false, true] {
            out.push_str(&format!(
                "{:<18}{:>3}",
                config.name(),
                if remote { "R" } else { "L" }
            ));
            for (pattern, page) in columns {
                let p95 = if remote {
                    // Pool the worse of the two edge groups (conservative).
                    mutsvc_desim::pooled_max(
                        REMOTE_GROUPS
                            .iter()
                            .filter_map(|g| report.stats.series(g, pattern, page))
                            .map(mutsvc_desim::Summary::p95),
                    )
                } else {
                    report
                        .stats
                        .series("local", pattern, page)
                        .map(mutsvc_desim::Summary::p95)
                };
                match p95 {
                    Some(v) => out.push_str(&format!("{:>9.0}", v)),
                    None => out.push_str(&format!("{:>9}", "-")),
                }
            }
            out.push('\n');
        }
    }
    out
}

/// One bar of Figure 7/8: session-average response time of a client group.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureBar {
    /// Configuration.
    pub config: Config,
    /// "Local" or "Remote".
    pub locality: &'static str,
    /// "Browser", "Buyer" or "Bidder".
    pub pattern: String,
    /// Session-average response time in milliseconds.
    pub mean_ms: f64,
}

/// Computes the Figure 7 (Pet Store) or Figure 8 (RUBiS) series: for each
/// configuration, session-average response times of the four client groups.
pub fn figure_series(app: AppKind, reports: &[ExperimentReport]) -> Vec<FigureBar> {
    let transactional = match app {
        AppKind::PetStore => "Buyer",
        AppKind::Rubis => "Bidder",
    };
    let mut bars = Vec::new();
    for (config, report) in Config::all().iter().zip(reports) {
        for pattern in ["Browser", transactional] {
            if let Some(m) = report.stats.session_summary("local", pattern) {
                bars.push(FigureBar {
                    config: *config,
                    locality: "Local",
                    pattern: pattern.to_string(),
                    mean_ms: m.mean(),
                });
            }
            if let Some(m) = report
                .stats
                .session_mean_over_groups(&REMOTE_GROUPS, pattern)
            {
                bars.push(FigureBar {
                    config: *config,
                    locality: "Remote",
                    pattern: pattern.to_string(),
                    mean_ms: m,
                });
            }
        }
    }
    bars
}

/// Renders Figure 7/8 as a text bar chart.
pub fn render_figure(app: AppKind, reports: &[ExperimentReport]) -> String {
    let figure = match app {
        AppKind::PetStore => 7,
        AppKind::Rubis => 8,
    };
    let bars = figure_series(app, reports);
    let max = bars.iter().map(|b| b.mean_ms).fold(1.0, f64::max);
    let mut out = format!(
        "Figure {figure}: {} session average response times (ms)\n",
        app.name()
    );
    let groups: Vec<(&str, String)> = {
        let mut seen = Vec::new();
        for b in &bars {
            let key = (b.locality, b.pattern.clone());
            if !seen.contains(&key) {
                seen.push(key);
            }
        }
        seen
    };
    for (locality, pattern) in groups {
        out.push_str(&format!("{locality} {pattern}:\n"));
        for b in bars
            .iter()
            .filter(|b| b.locality == locality && b.pattern == pattern)
        {
            let width = ((b.mean_ms / max) * 50.0).round() as usize;
            out.push_str(&format!(
                "  {:<18} {:>6.0} |{}\n",
                b.config.name(),
                b.mean_ms,
                "#".repeat(width.max(1))
            ));
        }
    }
    out
}

fn truncate(s: &str, n: usize) -> &str {
    &s[..s.len().min(n)]
}

/// Fetches a cell, panicking with context when it was not measured.
fn cell(report: &ExperimentReport, remote: bool, pattern: &str, page: &str) -> f64 {
    measured_mean(report, remote, pattern, page).unwrap_or_else(|| {
        panic!(
            "no samples for {pattern}/{page} ({})",
            if remote { "remote" } else { "local" }
        )
    })
}

/// Validates the qualitative shape criteria of `DESIGN.md` §5 against a
/// five-configuration sweep. Returns human-readable violations (empty =
/// every criterion holds).
pub fn validate_shapes(app: AppKind, reports: &[ExperimentReport]) -> Vec<String> {
    assert_eq!(reports.len(), 5, "expected one report per configuration");
    let mut violations = Vec::new();
    let mut check = |ok: bool, msg: String| {
        if !ok {
            violations.push(msg);
        }
    };
    let (centralized, facade, caching, query, asynch) = (
        &reports[0],
        &reports[1],
        &reports[2],
        &reports[3],
        &reports[4],
    );

    match app {
        AppKind::PetStore => {
            // §4.1: the WAN adds ~400 ms (two round trips) to every page.
            let gap = cell(centralized, true, "Browser", "Item")
                - cell(centralized, false, "Browser", "Item");
            check(
                (330.0..520.0).contains(&gap),
                format!("centralized WAN gap {gap:.0}ms not ~400ms"),
            );
            // Redirect pages pay an extra WAN trip.
            let commit_gap = cell(centralized, true, "Buyer", "Commit")
                - cell(centralized, false, "Buyer", "Commit");
            check(
                commit_gap > 500.0,
                format!("centralized Commit gap {commit_gap:.0}ms not ~600ms"),
            );
            // §4.2: pure-session buyer pages become local.
            for page in ["SignIn", "Checkout", "PlaceOrder", "Billing", "SignOut"] {
                let v = cell(facade, true, "Buyer", page);
                check(
                    v < 120.0,
                    format!("facade remote {page} {v:.0}ms not local"),
                );
            }
            // §4.2: one-RMI pages sit well below centralized.
            check(
                cell(facade, true, "Browser", "Category")
                    < cell(centralized, true, "Browser", "Category"),
                "facade Category not better than centralized".into(),
            );
            // §4.2: VerifySignIn pays two RMIs.
            let verify = cell(facade, true, "Buyer", "VerifySignIn");
            check(
                verify > 400.0,
                format!("facade VerifySignIn {verify:.0}ms should stay ~2 RMIs"),
            );
            // §4.3: Item and Cart become local; writers start blocking.
            check(
                cell(caching, true, "Browser", "Item") < 120.0,
                "caching remote Item not local".into(),
            );
            check(
                cell(caching, true, "Buyer", "Cart") < 160.0,
                "caching remote Cart not local".into(),
            );
            check(
                cell(caching, true, "Buyer", "Commit") > cell(facade, true, "Buyer", "Commit"),
                "caching remote Commit should exceed facade (blocking push)".into(),
            );
            check(
                cell(caching, false, "Buyer", "Commit")
                    > cell(facade, false, "Buyer", "Commit") * 1.5,
                "caching local Commit should blow up (blocking push)".into(),
            );
            // §4.4: category/product become local; keyword search stays remote.
            check(
                cell(query, true, "Browser", "Category") < 120.0,
                "query-caching remote Category not local".into(),
            );
            check(
                cell(query, true, "Browser", "Product") < 120.0,
                "query-caching remote Product not local".into(),
            );
            check(
                cell(query, true, "Browser", "Search") > 300.0,
                "query-caching remote Search should stay remote".into(),
            );
            // §4.5: async recovers the writers.
            check(
                cell(asynch, true, "Buyer", "Commit") < cell(query, true, "Buyer", "Commit") / 1.4,
                "async remote Commit should undercut sync push".into(),
            );
            check(
                cell(asynch, false, "Buyer", "Commit")
                    < cell(query, false, "Buyer", "Commit") / 1.8,
                "async local Commit should undercut sync push".into(),
            );
            // Figures 7: remote browser collapses across the sweep.
            let remote_browser_start = centralized
                .stats
                .session_mean_over_groups(&REMOTE_GROUPS, "Browser")
                .unwrap();
            let remote_browser_end = asynch
                .stats
                .session_mean_over_groups(&REMOTE_GROUPS, "Browser")
                .unwrap();
            check(
                remote_browser_start > 400.0 && remote_browser_end < 130.0,
                format!(
                    "remote browser session {remote_browser_start:.0} -> {remote_browser_end:.0}"
                ),
            );
        }
        AppKind::Rubis => {
            // §4.1: the WAN gap.
            let gap = cell(centralized, true, "Browser", "Item")
                - cell(centralized, false, "Browser", "Item");
            check(
                (330.0..520.0).contains(&gap),
                format!("centralized WAN gap {gap:.0}ms"),
            );
            // §4.2: static pages become local at the edges.
            for (pattern, page) in [
                ("Browser", "Main"),
                ("Browser", "Browse"),
                ("Bidder", "PutBidAuth"),
                ("Bidder", "PutCommentAuth"),
            ] {
                let v = cell(facade, true, pattern, page);
                check(v < 30.0, format!("facade remote {page} {v:.0}ms not local"));
            }
            // §4.3: Item local; bidder writes degrade.
            check(
                cell(caching, true, "Browser", "Item") < 40.0,
                "caching remote Item not local".into(),
            );
            check(
                cell(caching, true, "Bidder", "StoreBid")
                    > cell(facade, true, "Bidder", "StoreBid"),
                "caching remote StoreBid should exceed facade".into(),
            );
            let bidder_facade = facade
                .stats
                .session_mean_over_groups(&REMOTE_GROUPS, "Bidder")
                .unwrap();
            let bidder_caching = caching
                .stats
                .session_mean_over_groups(&REMOTE_GROUPS, "Bidder")
                .unwrap();
            check(
                bidder_caching > bidder_facade,
                format!("bidder session should degrade with blocking push ({bidder_facade:.0} -> {bidder_caching:.0})"),
            );
            // §4.4: the "triumphal" result — every remote browse page local.
            for page in [
                "AllCategories",
                "AllRegions",
                "Region",
                "Category",
                "Category&Region",
                "Item",
                "Bids",
                "UserInfo",
            ] {
                let v = cell(query, true, "Browser", page);
                check(
                    v < 40.0,
                    format!("query-caching remote {page} {v:.0}ms not local"),
                );
            }
            // Forms served locally too.
            check(
                cell(query, true, "Bidder", "PutBidForm") < 40.0,
                "query-caching remote PutBidForm not local".into(),
            );
            // Writers still blocked.
            check(
                cell(query, true, "Bidder", "StoreBid") > 400.0,
                "query-caching remote StoreBid should block".into(),
            );
            // §4.5: async recovers the writers.
            check(
                cell(asynch, true, "Bidder", "StoreBid")
                    < cell(query, true, "Bidder", "StoreBid") / 1.3,
                "async remote StoreBid should undercut sync push".into(),
            );
            check(
                cell(asynch, false, "Bidder", "StoreBid")
                    < cell(query, false, "Bidder", "StoreBid") / 2.0,
                "async local StoreBid should undercut sync push".into(),
            );
        }
    }
    violations
}
