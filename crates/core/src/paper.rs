//! Reference numbers from the paper (Tables 6 and 7), for side-by-side
//! comparison in reports and for shape validation. All values are average
//! response times in milliseconds.

use crate::configs::Config;

/// Pet Store page labels in Table 6 column order. `Main` appears twice in
/// the paper's table (once per session pattern); here each entry carries its
/// pattern explicitly.
pub const PETSTORE_COLUMNS: [(&str, &str); 14] = [
    ("Browser", "Main"),
    ("Browser", "Category"),
    ("Browser", "Product"),
    ("Browser", "Item"),
    ("Browser", "Search"),
    ("Buyer", "Main"),
    ("Buyer", "SignIn"),
    ("Buyer", "VerifySignIn"),
    ("Buyer", "Cart"),
    ("Buyer", "Checkout"),
    ("Buyer", "PlaceOrder"),
    ("Buyer", "Billing"),
    ("Buyer", "Commit"),
    ("Buyer", "SignOut"),
];

/// RUBiS page labels in Table 7 column order.
pub const RUBIS_COLUMNS: [(&str, &str); 17] = [
    ("Browser", "Main"),
    ("Browser", "Browse"),
    ("Browser", "AllCategories"),
    ("Browser", "AllRegions"),
    ("Browser", "Region"),
    ("Browser", "Category"),
    ("Browser", "Category&Region"),
    ("Browser", "Item"),
    ("Browser", "Bids"),
    ("Browser", "UserInfo"),
    ("Bidder", "Main"),
    ("Bidder", "PutBidAuth"),
    ("Bidder", "PutBidForm"),
    ("Bidder", "StoreBid"),
    ("Bidder", "PutCommentAuth"),
    ("Bidder", "PutCommentForm"),
    ("Bidder", "StoreComment"),
];

/// One configuration row of a paper table: per-column local and remote means.
#[derive(Debug, Clone, Copy)]
pub struct PaperRow {
    /// The configuration.
    pub config: Config,
    /// Local-client means, in column order.
    pub local: &'static [f64],
    /// Remote-client means, in column order.
    pub remote: &'static [f64],
}

/// Table 6: average response times (ms) for the five Pet Store configurations.
pub const TABLE6: [PaperRow; 5] = [
    PaperRow {
        config: Config::Centralized,
        local: &[
            87.0, 95.0, 94.0, 88.0, 106.0, 98.0, 78.0, 89.0, 120.0, 76.0, 70.0, 70.0, 158.0, 90.0,
        ],
        remote: &[
            488.0, 492.0, 492.0, 486.0, 496.0, 489.0, 480.0, 482.0, 658.0, 477.0, 646.0, 482.0,
            708.0, 447.0,
        ],
    },
    PaperRow {
        config: Config::RemoteFacade,
        local: &[
            64.0, 78.0, 80.0, 72.0, 82.0, 61.0, 52.0, 63.0, 85.0, 54.0, 51.0, 54.0, 134.0, 54.0,
        ],
        remote: &[
            72.0, 387.0, 389.0, 373.0, 384.0, 60.0, 54.0, 630.0, 407.0, 61.0, 57.0, 61.0, 500.0,
            63.0,
        ],
    },
    PaperRow {
        config: Config::StatefulCaching,
        local: &[
            55.0, 82.0, 84.0, 55.0, 77.0, 60.0, 51.0, 65.0, 77.0, 53.0, 50.0, 55.0, 584.0, 54.0,
        ],
        remote: &[
            55.0, 394.0, 390.0, 57.0, 393.0, 68.0, 52.0, 629.0, 80.0, 50.0, 49.0, 53.0, 950.0, 62.0,
        ],
    },
    PaperRow {
        config: Config::QueryCaching,
        local: &[
            56.0, 50.0, 51.0, 54.0, 87.0, 58.0, 51.0, 61.0, 70.0, 50.0, 50.0, 54.0, 614.0, 52.0,
        ],
        remote: &[
            55.0, 51.0, 51.0, 55.0, 481.0, 61.0, 49.0, 638.0, 69.0, 51.0, 52.0, 53.0, 966.0, 54.0,
        ],
    },
    PaperRow {
        config: Config::AsyncUpdates,
        local: &[
            61.0, 54.0, 53.0, 57.0, 92.0, 61.0, 53.0, 64.0, 75.0, 53.0, 53.0, 56.0, 195.0, 56.0,
        ],
        remote: &[
            59.0, 51.0, 53.0, 58.0, 459.0, 59.0, 48.0, 632.0, 69.0, 50.0, 50.0, 50.0, 536.0, 52.0,
        ],
    },
];

/// Table 7: average response times (ms) for the five RUBiS configurations.
pub const TABLE7: [PaperRow; 5] = [
    PaperRow {
        config: Config::Centralized,
        local: &[
            14.0, 12.0, 33.0, 26.0, 35.0, 43.0, 21.0, 27.0, 40.0, 43.0, 12.0, 13.0, 32.0, 36.0,
            13.0, 25.0, 35.0,
        ],
        remote: &[
            421.0, 414.0, 434.0, 438.0, 434.0, 649.0, 426.0, 430.0, 446.0, 452.0, 419.0, 419.0,
            439.0, 437.0, 414.0, 432.0, 432.0,
        ],
    },
    PaperRow {
        config: Config::RemoteFacade,
        local: &[
            10.0, 11.0, 27.0, 30.0, 34.0, 35.0, 19.0, 24.0, 35.0, 34.0, 10.0, 13.0, 30.0, 30.0,
            14.0, 26.0, 30.0,
        ],
        remote: &[
            4.0, 3.0, 424.0, 407.0, 399.0, 499.0, 265.0, 275.0, 300.0, 379.0, 4.0, 3.0, 408.0,
            284.0, 3.0, 284.0, 282.0,
        ],
    },
    PaperRow {
        config: Config::StatefulCaching,
        local: &[
            13.0, 16.0, 29.0, 32.0, 39.0, 38.0, 23.0, 19.0, 30.0, 31.0, 10.0, 15.0, 23.0, 372.0,
            14.0, 22.0, 377.0,
        ],
        remote: &[
            3.0, 3.0, 423.0, 463.0, 435.0, 526.0, 279.0, 7.0, 323.0, 404.0, 4.0, 4.0, 450.0, 680.0,
            4.0, 303.0, 628.0,
        ],
    },
    PaperRow {
        config: Config::QueryCaching,
        local: &[
            9.0, 12.0, 12.0, 15.0, 17.0, 16.0, 12.0, 15.0, 16.0, 16.0, 9.0, 10.0, 15.0, 377.0, 9.0,
            16.0, 374.0,
        ],
        remote: &[
            5.0, 4.0, 7.0, 7.0, 7.0, 6.0, 5.0, 8.0, 8.0, 8.0, 3.0, 3.0, 7.0, 798.0, 3.0, 6.0, 729.0,
        ],
    },
    PaperRow {
        config: Config::AsyncUpdates,
        local: &[
            12.0, 12.0, 9.0, 9.0, 11.0, 13.0, 13.0, 14.0, 15.0, 15.0, 10.0, 15.0, 15.0, 32.0, 9.0,
            10.0, 34.0,
        ],
        remote: &[
            4.0, 5.0, 9.0, 7.0, 6.0, 6.0, 4.0, 7.0, 10.0, 10.0, 5.0, 4.0, 9.0, 421.0, 4.0, 12.0,
            419.0,
        ],
    },
];

/// Looks up a paper cell by configuration, locality, pattern and page.
pub fn paper_mean(
    table: &[PaperRow; 5],
    columns: &[(&str, &str)],
    config: Config,
    remote: bool,
    pattern: &str,
    page: &str,
) -> Option<f64> {
    let row = table.iter().find(|r| r.config == config)?;
    let idx = columns
        .iter()
        .position(|&(pat, pg)| pat == pattern && pg == page)?;
    Some(if remote {
        row.remote[idx]
    } else {
        row.local[idx]
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_match_column_counts() {
        for row in &TABLE6 {
            assert_eq!(row.local.len(), PETSTORE_COLUMNS.len());
            assert_eq!(row.remote.len(), PETSTORE_COLUMNS.len());
        }
        for row in &TABLE7 {
            assert_eq!(row.local.len(), RUBIS_COLUMNS.len());
            assert_eq!(row.remote.len(), RUBIS_COLUMNS.len());
        }
    }

    #[test]
    fn lookup_returns_known_cells() {
        assert_eq!(
            paper_mean(
                &TABLE6,
                &PETSTORE_COLUMNS,
                Config::Centralized,
                true,
                "Buyer",
                "Commit"
            ),
            Some(708.0)
        );
        assert_eq!(
            paper_mean(
                &TABLE7,
                &RUBIS_COLUMNS,
                Config::QueryCaching,
                true,
                "Browser",
                "Item"
            ),
            Some(8.0)
        );
        assert_eq!(
            paper_mean(
                &TABLE6,
                &PETSTORE_COLUMNS,
                Config::AsyncUpdates,
                false,
                "Buyer",
                "Commit"
            ),
            Some(195.0)
        );
        assert!(paper_mean(
            &TABLE6,
            &PETSTORE_COLUMNS,
            Config::Centralized,
            true,
            "Buyer",
            "Nope"
        )
        .is_none());
    }

    /// The headline shapes this reproduction must reach are present in the
    /// reference data itself — guard against transcription slips.
    #[test]
    fn reference_data_encodes_the_papers_story() {
        // Remote browsing collapses with caching.
        let centralized_item = paper_mean(
            &TABLE6,
            &PETSTORE_COLUMNS,
            Config::Centralized,
            true,
            "Browser",
            "Item",
        )
        .unwrap();
        let cached_item = paper_mean(
            &TABLE6,
            &PETSTORE_COLUMNS,
            Config::StatefulCaching,
            true,
            "Browser",
            "Item",
        )
        .unwrap();
        assert!(centralized_item / cached_item > 5.0);
        // Blocking pushes hurt writers; async recovers them.
        let sync_commit = paper_mean(
            &TABLE6,
            &PETSTORE_COLUMNS,
            Config::StatefulCaching,
            true,
            "Buyer",
            "Commit",
        )
        .unwrap();
        let async_commit = paper_mean(
            &TABLE6,
            &PETSTORE_COLUMNS,
            Config::AsyncUpdates,
            true,
            "Buyer",
            "Commit",
        )
        .unwrap();
        assert!(sync_commit / async_commit > 1.5);
        // RUBiS remote browser becomes local with query caching.
        let qc_cat = paper_mean(
            &TABLE7,
            &RUBIS_COLUMNS,
            Config::QueryCaching,
            true,
            "Browser",
            "Category",
        )
        .unwrap();
        assert!(qc_cat < 10.0);
    }
}
