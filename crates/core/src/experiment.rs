//! Scenario assembly: application × configuration → a runnable experiment.

use mutsvc_apps::App;
use mutsvc_desim::time::SimDuration;
use mutsvc_middleware::ContainerCosts;
use mutsvc_netsim::ProtocolParams;
use mutsvc_workload::{
    paper_groups, run_experiment, ExperimentInput, ExperimentReport, FaultPolicy, FaultSettings,
    TraceSettings, WorkloadSpec,
};
use serde::{Deserialize, Serialize};

use crate::configs::{petstore_descriptor, rubis_descriptor, Config};
use crate::faultsuite::FaultCase;
use crate::topology::{paper_topology, PaperNodes};

/// Which application a scenario drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AppKind {
    /// Java Pet Store.
    PetStore,
    /// RUBiS.
    Rubis,
}

impl AppKind {
    /// Both applications.
    pub fn all() -> [AppKind; 2] {
        [AppKind::PetStore, AppKind::Rubis]
    }

    /// The application name.
    pub fn name(self) -> &'static str {
        match self {
            AppKind::PetStore => "petstore",
            AppKind::Rubis => "rubis",
        }
    }
}

/// One experiment: an application under one configuration at the paper's load.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scenario {
    /// The application.
    pub app: AppKind,
    /// The configuration under test.
    pub config: Config,
    /// RNG seed.
    pub seed: u64,
    /// Warm-up excluded from statistics.
    pub warmup: SimDuration,
    /// Measured duration.
    pub duration: SimDuration,
    /// One-way WAN latency override (ablation; default 100 ms).
    pub wan_one_way: Option<SimDuration>,
    /// RMI extra-round-trip probability override (ablation).
    pub rmi_extra_round_trip_prob: Option<f64>,
    /// Tracing and telemetry policy (off by default).
    #[serde(default)]
    pub trace: TraceSettings,
    /// Fault schedule, timeout and recovery policy (off by default).
    #[serde(default)]
    pub faults: FaultSettings,
    /// A standard-suite episode scripted at build time against the built
    /// topology (it needs link/node indices, which only exist then). When
    /// set, it replaces `faults.schedule`.
    #[serde(default)]
    pub fault_case: Option<FaultCase>,
}

impl Scenario {
    /// A scenario with the paper's full measurement window (§3.3: roughly
    /// one hour preceded by warm-up).
    pub fn paper(app: AppKind, config: Config) -> Self {
        Scenario {
            app,
            config,
            seed: 42,
            warmup: SimDuration::from_secs(180),
            duration: SimDuration::from_secs(3_600),
            wan_one_way: None,
            rmi_extra_round_trip_prob: None,
            trace: TraceSettings::off(),
            faults: FaultSettings::off(),
            fault_case: None,
        }
    }

    /// A shortened scenario for tests and quick reports. The page means
    /// stabilize well before the full hour: at 30 req/s even a 5-minute
    /// window collects ~9000 samples.
    pub fn quick(app: AppKind, config: Config) -> Self {
        Scenario {
            app,
            config,
            seed: 42,
            warmup: SimDuration::from_secs(90),
            duration: SimDuration::from_secs(300),
            wan_one_way: None,
            rmi_extra_round_trip_prob: None,
            trace: TraceSettings::off(),
            faults: FaultSettings::off(),
            fault_case: None,
        }
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the one-way WAN latency (ablation sweeps).
    pub fn with_wan_latency(mut self, one_way: SimDuration) -> Self {
        self.wan_one_way = Some(one_way);
        self
    }

    /// Overrides the RMI extra-round-trip probability (stack chattiness).
    pub fn with_rmi_chattiness(mut self, prob: f64) -> Self {
        self.rmi_extra_round_trip_prob = Some(prob);
        self
    }

    /// Sets the tracing/telemetry policy.
    pub fn with_trace(mut self, trace: TraceSettings) -> Self {
        self.trace = trace;
        self
    }

    /// Sets an explicit fault schedule, timeout and policy.
    pub fn with_faults(mut self, faults: FaultSettings) -> Self {
        self.faults = faults;
        self
    }

    /// Runs a standard-suite fault episode under the given recovery policy.
    pub fn with_fault_case(mut self, case: FaultCase, policy: FaultPolicy) -> Self {
        self.fault_case = Some(case);
        self.faults.policy = policy;
        self
    }

    /// Assembles the runnable input: topology, application, descriptor,
    /// protocol stack and the paper's client groups.
    pub fn build(&self) -> (ExperimentInput, PaperNodes) {
        let db_on_main = matches!(self.app, AppKind::Rubis);
        let (topology, nodes) = match self.wan_one_way {
            Some(wan) => crate::topology::topology_with_wan(db_on_main, wan),
            None => paper_topology(db_on_main),
        };

        let (app, registry, db, descriptor, mut protocols) = match self.app {
            AppKind::PetStore => {
                let (app, registry, db) = App::petstore(self.config.uses_facade_app());
                let c = match &app {
                    App::PetStore(ps) => ps.components,
                    App::Rubis(_) => unreachable!(),
                };
                let descriptor = petstore_descriptor(self.config, &registry, &c, &nodes);
                (
                    app,
                    registry,
                    db,
                    descriptor,
                    ProtocolParams::petstore_stack(),
                )
            }
            AppKind::Rubis => {
                let (app, registry, db) = App::rubis();
                let c = match &app {
                    App::Rubis(r) => r.components,
                    App::PetStore(_) => unreachable!(),
                };
                let descriptor = rubis_descriptor(self.config, &registry, &c, &nodes);
                (app, registry, db, descriptor, ProtocolParams::rubis_stack())
            }
        };

        if let Some(prob) = self.rmi_extra_round_trip_prob {
            protocols.rmi_extra_round_trip_prob = prob;
        }

        // Remote client groups enter through their edge server whenever the
        // web tier is deployed there; the centralized baseline leaves the
        // edge servers unused (§4.1).
        let (entry1, entry2) = if self.config == Config::Centralized {
            (nodes.main, nodes.main)
        } else {
            (nodes.edge1, nodes.edge2)
        };
        let groups = paper_groups(
            (nodes.client_local, nodes.main),
            (nodes.client_edge1, entry1),
            (nodes.client_edge2, entry2),
        );
        let mut faults = self.faults.clone();
        if let Some(case) = self.fault_case {
            faults.schedule = case.schedule(&topology, &nodes, self.warmup, self.duration);
        }
        let spec = WorkloadSpec::paper_load(groups)
            .with_duration(self.warmup, self.duration)
            .with_seed(self.seed)
            .with_trace(self.trace)
            .with_faults(faults);

        (
            ExperimentInput {
                app,
                registry,
                db,
                descriptor,
                topology,
                protocols,
                container_costs: ContainerCosts::default(),
                spec,
            },
            nodes,
        )
    }

    /// Builds and runs the experiment.
    pub fn run(&self) -> ExperimentReport {
        let (input, _) = self.build();
        run_experiment(input)
    }
}

/// Runs the five configurations of one application (the full Table 6 or
/// Table 7 sweep).
pub fn run_sweep(app: AppKind, quick: bool, seed: u64) -> Vec<ExperimentReport> {
    Config::all()
        .into_iter()
        .map(|config| {
            let scenario = if quick {
                Scenario::quick(app, config)
            } else {
                Scenario::paper(app, config)
            };
            scenario.with_seed(seed).run()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_assemble_for_every_cell() {
        for app in AppKind::all() {
            for config in Config::all() {
                let (input, nodes) = Scenario::quick(app, config).build();
                assert_eq!(input.descriptor.name, config.name());
                assert_eq!(input.spec.total_rate(), 30.0);
                // Entry servers: centralized keeps everyone on main.
                let remote_entry = input.spec.groups[1].entry_node;
                if config == Config::Centralized {
                    assert_eq!(remote_entry, nodes.main);
                } else {
                    assert_eq!(remote_entry, nodes.edge1);
                }
            }
        }
    }

    #[test]
    fn partition_availability_orders_centralized_below_caching() {
        let run = |config| {
            Scenario::quick(AppKind::PetStore, config)
                .with_fault_case(FaultCase::MainLinkPartition, FaultPolicy::resilient())
                .run()
        };
        let central = run(Config::Centralized);
        let caching = run(Config::StatefulCaching);
        let c = central.stats.outcome("remote1").unwrap().availability();
        let s = caching.stats.outcome("remote1").unwrap().availability();
        assert!(c < 0.7, "centralized goes dark behind the cut: {c}");
        assert!(s > c + 0.15, "caching {s} vs centralized {c}");
        // Reads served from partitioned caches are recorded as stale, not
        // silently passed off as fresh.
        assert!(caching.stats.total_outcome().stale_served > 0);
        // The edge-2 group never crosses the cut leg.
        assert_eq!(
            central.stats.outcome("remote2").unwrap().availability(),
            1.0
        );
    }

    #[test]
    fn rubis_db_is_colocated_petstore_db_is_not() {
        let (input, nodes) = Scenario::quick(AppKind::Rubis, Config::Centralized).build();
        assert_eq!(input.descriptor.db_node, nodes.main);
        let (input, nodes) = Scenario::quick(AppKind::PetStore, Config::Centralized).build();
        assert_ne!(input.descriptor.db_node, nodes.main);
        assert_eq!(input.descriptor.central_node, nodes.main);
    }
}
