//! Scenario assembly: application × configuration → a runnable experiment.

use mutsvc_apps::App;
use mutsvc_desim::time::SimDuration;
use mutsvc_middleware::ContainerCosts;
use mutsvc_netsim::ProtocolParams;
use mutsvc_workload::{
    paper_groups, run_experiment, run_experiment_parallel, AdaptiveSettings, ClientGroup,
    ExperimentInput, ExperimentReport, FaultPolicy, FaultSettings, MetricsSettings, SloSpec,
    TraceSettings, WorkloadSpec,
};
use serde::{Deserialize, Serialize};

use crate::configs::{
    petstore_adaptive_baseline, petstore_descriptor, petstore_descriptor_on,
    rubis_adaptive_baseline, rubis_descriptor, rubis_descriptor_on, Config,
};
use crate::faultsuite::{AdaptiveEpisode, EpisodeTargets, FaultCase};
use crate::topology::{
    fanout_topology, multi_tier_topology, paper_topology, MultiTierSpec, PaperNodes,
};

/// Which application a scenario drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AppKind {
    /// Java Pet Store.
    PetStore,
    /// RUBiS.
    Rubis,
}

impl AppKind {
    /// Both applications.
    pub fn all() -> [AppKind; 2] {
        [AppKind::PetStore, AppKind::Rubis]
    }

    /// The application name.
    pub fn name(self) -> &'static str {
        match self {
            AppKind::PetStore => "petstore",
            AppKind::Rubis => "rubis",
        }
    }
}

/// One experiment: an application under one configuration at the paper's load.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scenario {
    /// The application.
    pub app: AppKind,
    /// The configuration under test.
    pub config: Config,
    /// RNG seed.
    pub seed: u64,
    /// Warm-up excluded from statistics.
    pub warmup: SimDuration,
    /// Measured duration.
    pub duration: SimDuration,
    /// One-way WAN latency override (ablation; default 100 ms).
    pub wan_one_way: Option<SimDuration>,
    /// RMI extra-round-trip probability override (ablation).
    pub rmi_extra_round_trip_prob: Option<f64>,
    /// Tracing and telemetry policy (off by default).
    #[serde(default)]
    pub trace: TraceSettings,
    /// Windowed metrics recorder policy (off by default).
    #[serde(default)]
    pub metrics: MetricsSettings,
    /// Service-level objectives graded against the metrics windows by
    /// [`mutsvc_workload::evaluate`]. Carried on the scenario so report
    /// generators and the static analyzer see the same objectives.
    #[serde(default)]
    pub slo: Option<SloSpec>,
    /// Fault schedule, timeout and recovery policy (off by default).
    #[serde(default)]
    pub faults: FaultSettings,
    /// A standard-suite episode scripted at build time against the built
    /// topology (it needs link/node indices, which only exist then). When
    /// set, it replaces `faults.schedule`.
    #[serde(default)]
    pub fault_case: Option<FaultCase>,
    /// Closed-loop adaptive placement policy (off by default): with the
    /// controller armed, a run folds observed telemetry into re-priced
    /// placement problems and commits live migrations (DESIGN.md §6.8).
    /// Requires an active [`MetricsSettings`] window.
    #[serde(default)]
    pub adaptive: AdaptiveSettings,
    /// Run on the conservative-parallel engine with up to this many OS
    /// threads, sharded by client region (DESIGN.md §6.5). `None` (the
    /// default) keeps the classic sequential engine. The parallel result
    /// is byte-identical at every thread count, but draws from per-shard
    /// RNG streams, so it is not bit-comparable to a sequential run.
    #[serde(default)]
    pub parallel: Option<usize>,
}

impl Scenario {
    /// A scenario with the paper's full measurement window (§3.3: roughly
    /// one hour preceded by warm-up).
    pub fn paper(app: AppKind, config: Config) -> Self {
        Scenario {
            app,
            config,
            seed: 42,
            warmup: SimDuration::from_secs(180),
            duration: SimDuration::from_secs(3_600),
            wan_one_way: None,
            rmi_extra_round_trip_prob: None,
            trace: TraceSettings::off(),
            metrics: MetricsSettings::off(),
            slo: None,
            faults: FaultSettings::off(),
            fault_case: None,
            adaptive: AdaptiveSettings::off(),
            parallel: None,
        }
    }

    /// A shortened scenario for tests and quick reports. The page means
    /// stabilize well before the full hour: at 30 req/s even a 5-minute
    /// window collects ~9000 samples.
    pub fn quick(app: AppKind, config: Config) -> Self {
        Scenario {
            app,
            config,
            seed: 42,
            warmup: SimDuration::from_secs(90),
            duration: SimDuration::from_secs(300),
            wan_one_way: None,
            rmi_extra_round_trip_prob: None,
            trace: TraceSettings::off(),
            metrics: MetricsSettings::off(),
            slo: None,
            faults: FaultSettings::off(),
            fault_case: None,
            adaptive: AdaptiveSettings::off(),
            parallel: None,
        }
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the one-way WAN latency (ablation sweeps).
    pub fn with_wan_latency(mut self, one_way: SimDuration) -> Self {
        self.wan_one_way = Some(one_way);
        self
    }

    /// Overrides the RMI extra-round-trip probability (stack chattiness).
    pub fn with_rmi_chattiness(mut self, prob: f64) -> Self {
        self.rmi_extra_round_trip_prob = Some(prob);
        self
    }

    /// Sets the tracing/telemetry policy.
    pub fn with_trace(mut self, trace: TraceSettings) -> Self {
        self.trace = trace;
        self
    }

    /// Sets the windowed metrics recorder policy.
    pub fn with_metrics(mut self, metrics: MetricsSettings) -> Self {
        self.metrics = metrics;
        self
    }

    /// Attaches service-level objectives to grade against the metrics windows.
    pub fn with_slo(mut self, slo: SloSpec) -> Self {
        self.slo = Some(slo);
        self
    }

    /// Sets an explicit fault schedule, timeout and policy.
    pub fn with_faults(mut self, faults: FaultSettings) -> Self {
        self.faults = faults;
        self
    }

    /// Runs a standard-suite fault episode under the given recovery policy.
    pub fn with_fault_case(mut self, case: FaultCase, policy: FaultPolicy) -> Self {
        self.fault_case = Some(case);
        self.faults.policy = policy;
        self
    }

    /// Arms the closed-loop adaptive placement controller (DESIGN.md §6.8).
    pub fn with_adaptive(mut self, adaptive: AdaptiveSettings) -> Self {
        self.adaptive = adaptive;
        self
    }

    /// Runs on the conservative-parallel engine with up to `threads` OS
    /// threads (DESIGN.md §6.5).
    pub fn with_parallel(mut self, threads: usize) -> Self {
        self.parallel = Some(threads);
        self
    }

    /// Assembles the runnable input: topology, application, descriptor,
    /// protocol stack and the paper's client groups.
    pub fn build(&self) -> (ExperimentInput, PaperNodes) {
        let db_on_main = matches!(self.app, AppKind::Rubis);
        let (topology, nodes) = match self.wan_one_way {
            Some(wan) => crate::topology::topology_with_wan(db_on_main, wan),
            None => paper_topology(db_on_main),
        };

        let (app, registry, db, descriptor, mut protocols) = match self.app {
            AppKind::PetStore => {
                let (app, registry, db) = App::petstore(self.config.uses_facade_app());
                let c = match &app {
                    App::PetStore(ps) => ps.components,
                    App::Rubis(_) => unreachable!(),
                };
                let descriptor = petstore_descriptor(self.config, &registry, &c, &nodes);
                (
                    app,
                    registry,
                    db,
                    descriptor,
                    ProtocolParams::petstore_stack(),
                )
            }
            AppKind::Rubis => {
                let (app, registry, db) = App::rubis();
                let c = match &app {
                    App::Rubis(r) => r.components,
                    App::PetStore(_) => unreachable!(),
                };
                let descriptor = rubis_descriptor(self.config, &registry, &c, &nodes);
                (app, registry, db, descriptor, ProtocolParams::rubis_stack())
            }
        };

        if let Some(prob) = self.rmi_extra_round_trip_prob {
            protocols.rmi_extra_round_trip_prob = prob;
        }

        // Remote client groups enter through their edge server whenever the
        // web tier is deployed there; the centralized baseline leaves the
        // edge servers unused (§4.1).
        let (entry1, entry2) = if self.config == Config::Centralized {
            (nodes.main, nodes.main)
        } else {
            (nodes.edge1, nodes.edge2)
        };
        let groups = paper_groups(
            (nodes.client_local, nodes.main),
            (nodes.client_edge1, entry1),
            (nodes.client_edge2, entry2),
        );
        let mut faults = self.faults.clone();
        if let Some(case) = self.fault_case {
            faults.schedule = case.schedule(&topology, &nodes, self.warmup, self.duration);
        }
        let spec = WorkloadSpec::paper_load(groups)
            .with_duration(self.warmup, self.duration)
            .with_seed(self.seed)
            .with_trace(self.trace)
            .with_metrics(self.metrics)
            .with_faults(faults)
            .with_adaptive(self.adaptive);

        (
            ExperimentInput {
                app,
                registry,
                db,
                descriptor,
                topology,
                protocols,
                container_costs: ContainerCosts::default(),
                spec,
            },
            nodes,
        )
    }

    /// Builds and runs the experiment on the engine selected by
    /// [`Scenario::parallel`].
    pub fn run(&self) -> ExperimentReport {
        let (input, _) = self.build();
        match self.parallel {
            Some(threads) => run_experiment_parallel(input, threads),
            None => run_experiment(input),
        }
    }
}

/// Assembles an experiment over a widened [`fanout_topology`]: the paper's
/// local cluster plus `edges` WAN edge regions, each with its own client
/// group. The paper's 30 req/s aggregate load is split equally across the
/// `edges + 1` groups (80 % browsers / 20 % transactional, as in §3.3), so
/// the offered load stays constant while the region count — and hence the
/// shard count of the conservative-parallel engine — scales.
pub fn fanout_input(app: AppKind, config: Config, edges: usize, seed: u64) -> ExperimentInput {
    let db_on_main = matches!(app, AppKind::Rubis);
    let (topology, nodes) = fanout_topology(db_on_main, edges);

    let (app, registry, db, descriptor, protocols) = match app {
        AppKind::PetStore => {
            let (app, registry, db) = App::petstore(config.uses_facade_app());
            let c = match &app {
                App::PetStore(ps) => ps.components,
                App::Rubis(_) => unreachable!(),
            };
            let descriptor =
                petstore_descriptor_on(config, &registry, &c, nodes.main, nodes.db, &nodes.edges);
            (
                app,
                registry,
                db,
                descriptor,
                ProtocolParams::petstore_stack(),
            )
        }
        AppKind::Rubis => {
            let (app, registry, db) = App::rubis();
            let c = match &app {
                App::Rubis(r) => r.components,
                App::PetStore(_) => unreachable!(),
            };
            let descriptor =
                rubis_descriptor_on(config, &registry, &c, nodes.main, nodes.db, &nodes.edges);
            (app, registry, db, descriptor, ProtocolParams::rubis_stack())
        }
    };

    let group_rate = 30.0 / (edges + 1) as f64;
    let mk = |name: String, client, entry| ClientGroup {
        name,
        client_node: client,
        entry_node: entry,
        browser_rate: group_rate * 0.8,
        transactional_rate: group_rate * 0.2,
    };
    let mut groups = vec![mk("local".to_string(), nodes.client_local, nodes.main)];
    for (i, (&edge, &clients)) in nodes.edges.iter().zip(&nodes.edge_clients).enumerate() {
        let entry = if config == Config::Centralized {
            nodes.main
        } else {
            edge
        };
        groups.push(mk(format!("remote{}", i + 1), clients, entry));
    }
    let spec = WorkloadSpec::paper_load(groups)
        .with_duration(SimDuration::from_secs(90), SimDuration::from_secs(300))
        .with_seed(seed);

    ExperimentInput {
        app,
        registry,
        db,
        descriptor,
        topology,
        protocols,
        container_costs: ContainerCosts::default(),
        spec,
    }
}

/// Assembles an experiment over a generated [`multi_tier_topology`]: the
/// paper's core site plus `spec.hubs` regional hubs carrying
/// `spec.edges_per_hub` edge PoPs each. The application descriptor deploys
/// its edge-tier components onto every PoP server (hubs stay pure transit,
/// like the paper's router), and the 30 req/s aggregate load is split
/// equally across the core client group and one client group per PoP —
/// with WAN edge legs (`metro_edges: false`) every PoP is its own client
/// region, so this is the shard-count scaling axis for the
/// conservative-parallel engine.
pub fn multi_tier_input(
    app: AppKind,
    config: Config,
    spec: &MultiTierSpec,
    seed: u64,
) -> ExperimentInput {
    let (topology, nodes) = multi_tier_topology(spec);

    let (app, registry, db, descriptor, protocols) = match app {
        AppKind::PetStore => {
            let (app, registry, db) = App::petstore(config.uses_facade_app());
            let c = match &app {
                App::PetStore(ps) => ps.components,
                App::Rubis(_) => unreachable!(),
            };
            let descriptor =
                petstore_descriptor_on(config, &registry, &c, nodes.main, nodes.db, &nodes.edges);
            (
                app,
                registry,
                db,
                descriptor,
                ProtocolParams::petstore_stack(),
            )
        }
        AppKind::Rubis => {
            let (app, registry, db) = App::rubis();
            let c = match &app {
                App::Rubis(r) => r.components,
                App::PetStore(_) => unreachable!(),
            };
            let descriptor =
                rubis_descriptor_on(config, &registry, &c, nodes.main, nodes.db, &nodes.edges);
            (app, registry, db, descriptor, ProtocolParams::rubis_stack())
        }
    };

    let pops = nodes.edges.len();
    let group_rate = 30.0 / (pops + 1) as f64;
    let mk = |name: String, client, entry| ClientGroup {
        name,
        client_node: client,
        entry_node: entry,
        browser_rate: group_rate * 0.8,
        transactional_rate: group_rate * 0.2,
    };
    let mut groups = vec![mk("local".to_string(), nodes.client_local, nodes.main)];
    for (i, (&edge, &clients)) in nodes.edges.iter().zip(&nodes.edge_clients).enumerate() {
        let entry = if config == Config::Centralized {
            nodes.main
        } else {
            edge
        };
        groups.push(mk(format!("pop{}", i + 1), clients, entry));
    }
    let spec = WorkloadSpec::paper_load(groups)
        .with_duration(SimDuration::from_secs(90), SimDuration::from_secs(300))
        .with_seed(seed);

    ExperimentInput {
        app,
        registry,
        db,
        descriptor,
        topology,
        protocols,
        container_costs: ContainerCosts::default(),
        spec,
    }
}

/// Assembles one adaptation-suite experiment: the application on its
/// *adaptive baseline* descriptor (entries at the edges, session tier
/// centralized — see [`petstore_adaptive_baseline`]), windowed metrics, the
/// episode's scripted drift, and the given controller policy. Pass
/// [`AdaptiveSettings::off`] for the control arm of an on/off pair — both
/// arms share topology, descriptor, load and seed, so any divergence is
/// the controller's doing.
///
/// `tier` selects the network: `None` is the paper's two-edge star;
/// `Some(spec)` a generated [`multi_tier_topology`] whose edge PoPs all
/// receive an entry deployment and a client group (load split equally, as
/// in [`multi_tier_input`]). The episode stresses the first PoP; the
/// diurnal shift swings between the first and second.
pub fn adaptive_episode_input(
    app: AppKind,
    episode: AdaptiveEpisode,
    tier: Option<&MultiTierSpec>,
    controller: AdaptiveSettings,
    warmup: SimDuration,
    duration: SimDuration,
    seed: u64,
) -> ExperimentInput {
    let db_on_main = matches!(app, AppKind::Rubis);
    let (topology, main, db, client_local, edges, edge_clients) = match tier {
        Some(spec) => {
            let (t, n) = multi_tier_topology(spec);
            (t, n.main, n.db, n.client_local, n.edges, n.edge_clients)
        }
        None => {
            let (t, n) = paper_topology(db_on_main);
            (
                t,
                n.main,
                n.db,
                n.client_local,
                vec![n.edge1, n.edge2],
                vec![n.client_edge1, n.client_edge2],
            )
        }
    };
    assert!(edges.len() >= 2, "the adaptation suite needs two edge PoPs");

    let (app, registry, db, descriptor, protocols) = match app {
        AppKind::PetStore => {
            let (app, registry, dbm) = App::petstore(true);
            let c = match &app {
                App::PetStore(ps) => ps.components,
                App::Rubis(_) => unreachable!(),
            };
            let descriptor = petstore_adaptive_baseline(&registry, &c, main, db, &edges);
            (
                app,
                registry,
                dbm,
                descriptor,
                ProtocolParams::petstore_stack(),
            )
        }
        AppKind::Rubis => {
            let (app, registry, dbm) = App::rubis();
            let c = match &app {
                App::Rubis(r) => r.components,
                App::PetStore(_) => unreachable!(),
            };
            let descriptor = rubis_adaptive_baseline(&registry, &c, main, db, &edges);
            (
                app,
                registry,
                dbm,
                descriptor,
                ProtocolParams::rubis_stack(),
            )
        }
    };

    // Load split as in the scaled inputs: 30 req/s across local + one
    // group per PoP, every remote group entering at its own edge.
    let group_rate = 30.0 / (edges.len() + 1) as f64;
    let mk = |name: String, client, entry| ClientGroup {
        name,
        client_node: client,
        entry_node: entry,
        browser_rate: group_rate * 0.8,
        transactional_rate: group_rate * 0.2,
    };
    let mut groups = vec![mk("local".to_string(), client_local, main)];
    for (i, (&edge, &clients)) in edges.iter().zip(&edge_clients).enumerate() {
        groups.push(mk(format!("remote{}", i + 1), clients, edge));
    }

    let targets = EpisodeTargets {
        core: main,
        edge1: edges[0],
        edge2: edges[1],
        group1: "remote1".to_string(),
    };
    let (schedule, surges) = episode.schedule(&topology, &targets, warmup, duration);
    let mut spec = WorkloadSpec::paper_load(groups)
        .with_duration(warmup, duration)
        .with_seed(seed)
        .with_metrics(MetricsSettings::windowed(SimDuration::from_secs(5)))
        .with_faults(FaultSettings {
            schedule,
            timeout: SimDuration::from_secs(30),
            policy: FaultPolicy::none(),
        })
        .with_adaptive(controller);
    for surge in surges {
        spec = spec.with_surge(surge);
    }

    ExperimentInput {
        app,
        registry,
        db,
        descriptor,
        topology,
        protocols,
        container_costs: ContainerCosts::default(),
        spec,
    }
}

/// Runs the five configurations of one application (the full Table 6 or
/// Table 7 sweep).
pub fn run_sweep(app: AppKind, quick: bool, seed: u64) -> Vec<ExperimentReport> {
    Config::all()
        .into_iter()
        .map(|config| {
            let scenario = if quick {
                Scenario::quick(app, config)
            } else {
                Scenario::paper(app, config)
            };
            scenario.with_seed(seed).run()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_assemble_for_every_cell() {
        for app in AppKind::all() {
            for config in Config::all() {
                let (input, nodes) = Scenario::quick(app, config).build();
                assert_eq!(input.descriptor.name, config.name());
                assert_eq!(input.spec.total_rate(), 30.0);
                // Entry servers: centralized keeps everyone on main.
                let remote_entry = input.spec.groups[1].entry_node;
                if config == Config::Centralized {
                    assert_eq!(remote_entry, nodes.main);
                } else {
                    assert_eq!(remote_entry, nodes.edge1);
                }
            }
        }
    }

    #[test]
    fn partition_availability_orders_centralized_below_caching() {
        let run = |config| {
            Scenario::quick(AppKind::PetStore, config)
                .with_fault_case(FaultCase::MainLinkPartition, FaultPolicy::resilient())
                .run()
        };
        let central = run(Config::Centralized);
        let caching = run(Config::StatefulCaching);
        let c = central.stats.outcome("remote1").unwrap().availability();
        let s = caching.stats.outcome("remote1").unwrap().availability();
        assert!(c < 0.7, "centralized goes dark behind the cut: {c}");
        assert!(s > c + 0.15, "caching {s} vs centralized {c}");
        // Reads served from partitioned caches are recorded as stale, not
        // silently passed off as fresh.
        assert!(caching.stats.total_outcome().stale_served > 0);
        // The edge-2 group never crosses the cut leg.
        assert_eq!(
            central.stats.outcome("remote2").unwrap().availability(),
            1.0
        );
    }

    #[test]
    fn fanout_input_splits_the_load_across_regions() {
        let input = fanout_input(AppKind::PetStore, Config::AsyncUpdates, 7, 7);
        assert_eq!(input.spec.groups.len(), 8);
        assert!((input.spec.total_rate() - 30.0).abs() < 1e-9);
        // Remote groups enter through their own edge server.
        let entries: std::collections::BTreeSet<_> = input
            .spec
            .groups
            .iter()
            .map(|g| g.entry_node.index())
            .collect();
        assert_eq!(entries.len(), 8, "one entry per region");
        // The centralized baseline funnels everyone to main.
        let central = fanout_input(AppKind::PetStore, Config::Centralized, 7, 7);
        let entries: std::collections::BTreeSet<_> = central
            .spec
            .groups
            .iter()
            .map(|g| g.entry_node.index())
            .collect();
        assert_eq!(entries.len(), 1);
    }

    #[test]
    fn multi_tier_input_deploys_onto_every_pop() {
        let spec = MultiTierSpec {
            hubs: 3,
            edges_per_hub: 2,
            metro_edges: false,
            db_on_main: false,
        };
        let input = multi_tier_input(AppKind::PetStore, Config::AsyncUpdates, &spec, 7);
        assert_eq!(input.spec.groups.len(), 7, "local + 6 PoP groups");
        assert!((input.spec.total_rate() - 30.0).abs() < 1e-9);
        let entries: std::collections::BTreeSet<_> = input
            .spec
            .groups
            .iter()
            .map(|g| g.entry_node.index())
            .collect();
        assert_eq!(entries.len(), 7, "one entry per PoP plus main");
        // With WAN edge legs, every PoP group is its own client region —
        // the shard count of the parallel engine.
        let regions = input.topology.regions();
        let client_regions: std::collections::BTreeSet<_> = input
            .spec
            .groups
            .iter()
            .map(|g| regions[g.client_node.index()])
            .collect();
        assert_eq!(client_regions.len(), 7);
    }

    #[test]
    fn parallel_knob_selects_the_sharded_engine() {
        let base = Scenario::quick(AppKind::PetStore, Config::StatefulCaching);
        let seq = base.clone().run();
        assert!(seq.shard_events.is_empty(), "classic engine has no shards");
        let par = base.with_parallel(2).run();
        assert_eq!(par.shard_events.len(), 3, "one shard per client region");
        assert!(par.completed > 1000);
        // The parallel engine draws per-shard RNG streams, so distributions
        // agree with the sequential run without being bit-identical.
        let s = seq.stats.mean_ms("remote1", "Browser", "Item").unwrap();
        let p = par.stats.mean_ms("remote1", "Browser", "Item").unwrap();
        assert!((s - p).abs() / s < 0.1, "seq {s} vs par {p}");
    }

    #[test]
    fn adaptive_episode_inputs_assemble_on_both_topologies() {
        let controller = mutsvc_workload::AdaptiveSettings::every(SimDuration::from_secs(10));
        let (w, d) = (SimDuration::from_secs(90), SimDuration::from_secs(300));
        let paper = adaptive_episode_input(
            AppKind::PetStore,
            AdaptiveEpisode::LinkDegradation,
            None,
            controller,
            w,
            d,
            5,
        );
        assert_eq!(paper.descriptor.name, "adaptive-baseline");
        assert_eq!(paper.spec.groups.len(), 3);
        assert!(paper.spec.adaptive.active());
        assert!(paper.spec.faults.active());
        assert!(paper.spec.metrics.active());
        // Remote groups enter at their own edge, not at main.
        let entries: std::collections::BTreeSet<_> = paper
            .spec
            .groups
            .iter()
            .map(|g| g.entry_node.index())
            .collect();
        assert_eq!(entries.len(), 3);

        let tier = MultiTierSpec {
            hubs: 2,
            edges_per_hub: 2,
            metro_edges: false,
            db_on_main: false,
        };
        let multi = adaptive_episode_input(
            AppKind::PetStore,
            AdaptiveEpisode::FlashCrowd,
            Some(&tier),
            mutsvc_workload::AdaptiveSettings::off(),
            w,
            d,
            5,
        );
        assert_eq!(multi.spec.groups.len(), 5, "local + 4 PoPs");
        assert!(!multi.spec.adaptive.active(), "control arm stays off");
        assert!(!multi.spec.faults.active(), "flash crowd injects no faults");
        assert_eq!(multi.spec.surges.len(), 1);
        assert_eq!(multi.spec.surges[0].group, "remote1");
    }

    #[test]
    fn controller_beats_frozen_deployment_under_multi_tier_degradation() {
        let tier = MultiTierSpec {
            hubs: 2,
            edges_per_hub: 1,
            metro_edges: false,
            db_on_main: false,
        };
        let (w, d) = (SimDuration::from_secs(30), SimDuration::from_secs(160));
        let run = |controller| {
            run_experiment(adaptive_episode_input(
                AppKind::PetStore,
                AdaptiveEpisode::LinkDegradation,
                Some(&tier),
                controller,
                w,
                d,
                11,
            ))
        };
        let on = run(mutsvc_workload::AdaptiveSettings::every(
            SimDuration::from_secs(10),
        ));
        let off = run(mutsvc_workload::AdaptiveSettings::off());
        let data = on.adaptive.as_ref().expect("controller log attached");
        assert!(
            !data.migrations.is_empty(),
            "degrading the stressed PoP's leg must trigger a migration"
        );
        assert!(off.adaptive.is_none());
        // Acceptance: controller-on strictly improves the stressed group's
        // mean session time or its availability.
        let on_rt = on
            .stats
            .session_mean_over_groups(&["remote1"], "Browser")
            .unwrap();
        let off_rt = off
            .stats
            .session_mean_over_groups(&["remote1"], "Browser")
            .unwrap();
        let on_avail = on.stats.outcome("remote1").unwrap().availability();
        let off_avail = off.stats.outcome("remote1").unwrap().availability();
        assert!(
            on_rt < off_rt || on_avail > off_avail,
            "adaptation must pay: rt {on_rt:.0} vs {off_rt:.0} ms, \
             availability {on_avail:.3} vs {off_avail:.3}"
        );
    }

    #[test]
    fn rubis_db_is_colocated_petstore_db_is_not() {
        let (input, nodes) = Scenario::quick(AppKind::Rubis, Config::Centralized).build();
        assert_eq!(input.descriptor.db_node, nodes.main);
        let (input, nodes) = Scenario::quick(AppKind::PetStore, Config::Centralized).build();
        assert_ne!(input.descriptor.db_node, nodes.main);
        assert_eq!(input.descriptor.central_node, nodes.main);
    }
}
