//! Per-page structural fidelity: the binder's resolution of every Pet Store
//! page under every configuration matches the paper's wide-area call counts
//! (§4.2: "no more than one RMI call to shared components… the only
//! exception is the Verify Signin page, which makes two").

use mutsvc_apps::petstore::{PsPage, PsParams};
use mutsvc_apps::App;
use mutsvc_core::{AppKind, Config, Scenario};
use mutsvc_desim::SimRng;
use mutsvc_middleware::{Binder, ContainerCosts, ContainerState};

struct Bench {
    input: mutsvc_workload::ExperimentInput,
    nodes: mutsvc_core::PaperNodes,
    state: ContainerState,
    rng: SimRng,
    tag: u64,
    costs: ContainerCosts,
}

fn bench(config: Config) -> (Bench, PsParams) {
    let (input, nodes) = Scenario::quick(AppKind::PetStore, config).build();
    let params = {
        let App::PetStore(ps) = &input.app else {
            unreachable!()
        };
        let product = ps.shape.products(0)[0];
        PsParams {
            category: ps.shape.categories[0],
            product,
            item: ps.shape.items(product)[0],
            keyword: 0,
            account: ps.shape.accounts[0],
        }
    };
    (
        Bench {
            input,
            nodes,
            state: ContainerState::new(),
            rng: SimRng::seed_from_u64(1),
            tag: 0,
            costs: ContainerCosts::default(),
        },
        params,
    )
}

/// Binds `page` from the edge-1 client twice and returns the **warm**
/// (second) bind's stats — steady-state behaviour, caches populated.
fn warm_bind(b: &mut Bench, params: &PsParams, page: PsPage) -> mutsvc_middleware::BindStats {
    let App::PetStore(ps) = &b.input.app else {
        unreachable!()
    };
    let request = ps.page(page, params);
    let entry = if b
        .input
        .descriptor
        .placement(request.root.component)
        .hosts(b.nodes.edge1)
    {
        b.nodes.edge1
    } else {
        b.nodes.main
    };
    let mut last = None;
    for _ in 0..2 {
        let bound = Binder::new(
            &b.input.registry,
            &b.input.descriptor,
            &b.input.protocols,
            &b.costs,
            &mut b.input.db,
            &mut b.state,
            &mut b.rng,
            &mut b.tag,
        )
        .bind_page(b.nodes.client_edge1, entry, &request);
        last = Some(bound.stats);
    }
    last.expect("two binds")
}

#[test]
fn centralized_pages_make_no_rmi_calls() {
    let (mut b, params) = bench(Config::Centralized);
    for page in PsPage::all() {
        let stats = warm_bind(&mut b, &params, page);
        assert_eq!(stats.remote_invocations, 0, "{}", page.name());
    }
}

#[test]
fn facade_config_matches_the_papers_rmi_counts() {
    let (mut b, params) = bench(Config::RemoteFacade);
    for page in PsPage::all() {
        let stats = warm_bind(&mut b, &params, page);
        let expected = match page {
            // Pure-session pages: fully local at the edge.
            PsPage::Main
            | PsPage::SignIn
            | PsPage::Checkout
            | PsPage::PlaceOrder
            | PsPage::Billing
            | PsPage::SignOut => 0,
            // The documented exception.
            PsPage::VerifySignIn => 2,
            // Everything else: exactly one wide-area call.
            _ => 1,
        };
        assert_eq!(stats.remote_invocations, expected, "{}", page.name());
    }
}

#[test]
fn caching_config_localizes_entity_pages() {
    let (mut b, params) = bench(Config::StatefulCaching);
    for (page, expected) in [
        (PsPage::Item, 0),     // read-only Item + Inventory replicas
        (PsPage::Cart, 0),     // cart add served by the edge catalog
        (PsPage::Category, 0), // edge catalog… but the query delegates (below)
        (PsPage::VerifySignIn, 2),
    ] {
        let stats = warm_bind(&mut b, &params, page);
        assert_eq!(stats.remote_invocations, expected, "{}", page.name());
        if page == PsPage::Category {
            // The aggregate query still travels: one central fetch inside
            // the (locally invoked) edge catalog.
            assert!(stats.db_statements >= 1);
        }
    }
    // Warm Item pages read exclusively from replica caches.
    let stats = warm_bind(&mut b, &params, PsPage::Item);
    assert_eq!(stats.entity_cache_hits, 2, "item + inventory rows");
    assert_eq!(stats.entity_cache_misses, 0);
}

#[test]
fn query_caching_serves_aggregates_from_the_edge() {
    let (mut b, params) = bench(Config::QueryCaching);
    let _ = warm_bind(&mut b, &params, PsPage::Category);
    let stats = warm_bind(&mut b, &params, PsPage::Category);
    assert_eq!(stats.query_cache_hits, 1);
    assert_eq!(stats.db_statements, 0, "no database work on a warm hit");
    // Keyword search is never cached: the central fetch always happens.
    let stats = warm_bind(&mut b, &params, PsPage::Search);
    assert_eq!(stats.query_cache_hits, 0);
    assert_eq!(stats.db_statements, 1);
}

#[test]
fn async_config_defers_commit_propagation() {
    let (mut b, params) = bench(Config::AsyncUpdates);
    // Load the inventory row into the edge replicas first (Item page).
    let _ = warm_bind(&mut b, &params, PsPage::Item);
    let stats = warm_bind(&mut b, &params, PsPage::Commit);
    assert_eq!(stats.sync_push_nodes, 0, "no blocking pushes");
    assert!(stats.async_push_nodes >= 1, "JMS fan-out to warmed edges");
}
