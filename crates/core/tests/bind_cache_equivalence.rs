//! Driver-level equivalence: the bound-program cache must be a pure
//! optimization. For both applications under all five paper configurations,
//! a run with the cache enabled must produce a **bit-identical**
//! `ExperimentReport` — response-time statistics, binder totals, staleness
//! histograms, CPU utilization, completion and event counts — to a run with
//! every request going through the full binder.
//!
//! Debug builds use a shortened window; CI re-runs this in release with the
//! full quick window (see .github/workflows/ci.yml).

use mutsvc_core::{AppKind, Config, Scenario};
use mutsvc_desim::time::SimDuration;
use mutsvc_workload::run_experiment;

#[test]
fn cache_on_and_off_reports_are_bit_identical() {
    let (warmup, duration) = if cfg!(debug_assertions) {
        (SimDuration::from_secs(30), SimDuration::from_secs(90))
    } else {
        (SimDuration::from_secs(90), SimDuration::from_secs(300))
    };

    for app in AppKind::all() {
        for config in Config::all() {
            let mut scenario = Scenario::quick(app, config);
            scenario.warmup = warmup;
            scenario.duration = duration;

            let (mut input_on, _) = scenario.build();
            input_on.spec.bind_cache = true;
            let on = run_experiment(input_on);

            let (mut input_off, _) = scenario.build();
            input_off.spec.bind_cache = false;
            let off = run_experiment(input_off);

            let cell = format!("{} / {}", app.name(), config.name());
            assert!(on.bind_cache.enabled && !off.bind_cache.enabled);
            assert!(
                on.bind_cache.hits > 0,
                "{cell}: cache never hit ({:?})",
                on.bind_cache
            );
            assert_eq!(off.bind_cache.hits, 0, "{cell}");

            assert_eq!(on.config, off.config, "{cell}");
            assert_eq!(on.stats, off.stats, "{cell}: stats diverged");
            assert_eq!(
                on.bind_totals, off.bind_totals,
                "{cell}: bind totals diverged"
            );
            assert_eq!(
                on.staleness_ms, off.staleness_ms,
                "{cell}: staleness diverged"
            );
            assert_eq!(
                on.cpu_utilization, off.cpu_utilization,
                "{cell}: cpu utilization diverged"
            );
            assert_eq!(on.completed, off.completed, "{cell}");
            assert_eq!(on.events_fired, off.events_fired, "{cell}");
            assert_eq!(on.boxed_events, off.boxed_events, "{cell}");
        }
    }
}
