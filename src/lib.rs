//! # mutable-services
//!
//! A full reproduction of *"Efficiently Distributing Component-based
//! Applications Across Wide-Area Environments"* (Llambiri, Totok,
//! Karamcheti; ICDCS 2003) as a Rust workspace, named after the paper's
//! umbrella project (*Mutable Services*).
//!
//! The paper deploys two J2EE applications — Java Pet Store and RUBiS — on
//! an emulated wide-area testbed and applies five incremental configurations
//! (centralized → remote façade → read-only entity caching → query caching →
//! asynchronous updates), measuring per-page response times for local and
//! remote clients. This workspace rebuilds the entire study as a
//! deterministic discrete-event simulation plus an automatic-placement layer
//! that derives the paper's deployments from first principles.
//!
//! ## Layer map
//!
//! | Crate | Contents |
//! |---|---|
//! | [`desim`] | simulation kernel: time, events, queueing resources, metrics |
//! | [`netsim`] | topology, latency/bandwidth, TCP/HTTP/RMI/JDBC/JMS costs, step executor |
//! | [`relstore`] | relational store substrate with query cost model and invalidation |
//! | [`middleware`] | component model, deployment descriptors, container state, the binder |
//! | [`apps`] | Pet Store and RUBiS models: schemas, pages, session patterns |
//! | [`workload`] | soft-delay client simulation and the experiment driver |
//! | [`core`] | the five configurations, scenario runner, paper data, reports |
//! | [`placement`] | interaction graphs and placement algorithms (greedy, KL, multilevel) |
//!
//! ## Quick start
//!
//! ```no_run
//! use mutable_services::core::{AppKind, Config, Scenario};
//!
//! // One cell of the paper's Table 6: the remote-facade configuration.
//! let report = Scenario::quick(AppKind::PetStore, Config::RemoteFacade).run();
//! println!(
//!     "remote browser Item page: {:.0} ms",
//!     report.stats.mean_ms("remote1", "Browser", "Item").unwrap()
//! );
//! ```
//!
//! Run `cargo run --release -p mutsvc-bench --bin repro-report` to regenerate
//! every table and figure; see `EXPERIMENTS.md` for paper-vs-measured.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mutsvc_apps as apps;
pub use mutsvc_core as core;
pub use mutsvc_desim as desim;
pub use mutsvc_middleware as middleware;
pub use mutsvc_netsim as netsim;
pub use mutsvc_placement as placement;
pub use mutsvc_relstore as relstore;
pub use mutsvc_workload as workload;
